//! # dp-mcs — privacy-preserving incentives for mobile crowd sensing
//!
//! A complete Rust implementation of Jin, Su, Ding, Nahrstedt & Borisov,
//! *Enabling Privacy-Preserving Incentives for Mobile Crowd Sensing
//! Systems* (ICDCS 2016): the **DP-hSRC** differentially private
//! single-minded reverse combinatorial auction, every substrate it depends
//! on, and a full reproduction harness for the paper's evaluation.
//!
//! ## What's inside
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`types`] | Domain model: [`types::Price`] (exact fixed-point money), bids, bundles, skill matrices, instances |
//! | [`auction`] | The paper's contribution: [`auction::DpHsrcAuction`] (Algorithm 1), [`auction::BaselineAuction`], [`auction::OptimalMechanism`], privacy & utility accounting |
//! | [`agg`] | Label aggregation: Lemma 1's weighted rule, majority vote, Dawid–Skene EM, gold-task skill estimation |
//! | [`lp`] / [`ilp`] | The exact-solver substrate replacing GUROBI: two-phase simplex and branch-and-bound covering ILP |
//! | [`num`] | Numerics: log-sum-exp, KL divergence, running statistics, seeded RNG streams |
//! | [`sim`] | The evaluation: Table I generators and one runner per figure/table |
//!
//! The most common entry points are re-exported at the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use dp_mcs::{
//!     Bid, Bundle, DpHsrcAuction, Instance, Mechanism, Price, SkillMatrix, TaskId,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three workers bid on one pothole-tagging task.
//! let instance = Instance::builder(1)
//!     .bids(vec![
//!         Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(10.0)),
//!         Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(11.0)),
//!         Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(12.0)),
//!     ])
//!     .skills(SkillMatrix::from_rows(vec![vec![0.9]; 3])?)
//!     .uniform_error_bound(0.4)
//!     .price_grid_f64(12.0, 15.0, 0.5)
//!     .cost_range(Price::from_f64(10.0), Price::from_f64(15.0))
//!     .build()?;
//!
//! let auction = DpHsrcAuction::new(0.1)?; // ε = 0.1
//! let mut rng = dp_mcs::num::rng::seeded(42);
//! let outcome = auction.run(&instance, &mut rng)?;
//! println!("clearing price {}, {} winners", outcome.price(), outcome.winners().len());
//! # Ok(())
//! # }
//! ```
//!
//! ## Reproducing the paper
//!
//! Every figure and table has a dedicated binary in the `mcs-bench` crate
//! (`cargo run -p mcs-bench --release --bin fig1`, … `table2`, `fig5`);
//! see `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mcs_agg as agg;
pub use mcs_auction as auction;
pub use mcs_ilp as ilp;
pub use mcs_lp as lp;
pub use mcs_num as num;
pub use mcs_sim as sim;
pub use mcs_types as types;

pub use mcs_auction::{
    AuctionOutcome, BaselineAuction, Coarsening, DpHsrcAuction, Mechanism, OptimalMechanism,
    PricePmf, PriceSchedule, ScheduleEngine, ScheduledMechanism, SelectionRule, Strategy,
};
pub use mcs_sim::Setting;
pub use mcs_types::{
    Bid, BidProfile, Bundle, CompletionModel, Instance, McsError, Price, PriceGrid, SkillMatrix,
    TaskId, TrueType, WorkerId,
};
