//! Offline vendored stand-in for `criterion`.
//!
//! Measures wall-clock time with adaptive per-sample iteration counts and
//! prints `name  time: [min median max]` lines — no plots, no statistical
//! regression machinery. Bench binaries keep the exact upstream authoring
//! surface this workspace uses (`benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros) and honour a substring
//! filter argument like `cargo bench -- schedule`.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard optimizer barrier under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The measurement driver handed to bench closures.
pub struct Bencher {
    sample_size: usize,
    /// Per-iteration durations of collected samples.
    samples: Vec<Duration>,
}

/// Target wall-clock spent inside one sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(5);

impl Bencher {
    /// Times `routine`, adapting the iteration count so each sample spans
    /// roughly [`SAMPLE_BUDGET`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate on a single warm-up call.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
        self.samples.sort();
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        let min = self.samples[0];
        let max = *self.samples.last().expect("non-empty");
        let median = self.samples[self.samples.len() / 2];
        println!(
            "{id:<48} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max),
        );
    }

    /// Median per-iteration time of the last [`Bencher::iter`] run.
    pub fn median(&self) -> Duration {
        self.samples
            .get(self.samples.len() / 2)
            .copied()
            .unwrap_or_default()
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Cargo invokes bench binaries as `binary --bench [filter]`; any
        // non-flag argument is a substring filter on benchmark ids.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.default_sample_size;
        self.run_one(&id.id, sample_size, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, sample_size: usize, mut f: F) {
        if !self.matches(id) {
            return;
        }
        let mut bencher = Bencher {
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, n, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Bundles bench functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Criterion {
        Criterion {
            filter: None,
            default_sample_size: 5,
        }
    }

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = fresh();
        let mut runs = 0u64;
        c.bench_function("counter", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(runs)
            });
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_respects_sample_size_and_filter() {
        let mut c = Criterion {
            filter: Some("wanted".into()),
            default_sample_size: 5,
        };
        let mut wanted = false;
        let mut unwanted = false;
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("wanted", |b| b.iter(|| wanted = true));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &_x| {
            b.iter(|| unwanted = true)
        });
        g.finish();
        assert!(wanted && !unwanted);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter(128).id, "128");
        assert_eq!(BenchmarkId::new("build", 64).id, "build/64");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
