//! Offline vendored stand-in for `serde_json`.
//!
//! Serializes the vendored [`serde::Value`] tree to JSON text (compact and
//! pretty) and parses it back with a recursive-descent parser. Numbers are
//! split into `PosInt` / `NegInt` / `Float` at parse time so 64-bit seeds
//! and fixed-point prices round-trip exactly; floats use Rust's shortest
//! round-trip `Display` formatting, so the `float_roundtrip` feature of the
//! real crate is implicitly always on here (the feature flag is accepted
//! and ignored).

use std::fmt;
use std::io::{Read, Write};

use serde::{DeError, Deserialize, Number, Serialize, Value};

/// A JSON (de)serialization failure.
#[derive(Debug)]
pub enum Error {
    /// The input is not syntactically valid JSON.
    Syntax {
        /// Byte offset where parsing failed.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The JSON was valid but did not match the target type's shape.
    Data(DeError),
    /// An underlying reader/writer failed.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax { offset, message } => {
                write!(f, "invalid JSON at byte {offset}: {message}")
            }
            Error::Data(e) => write!(f, "JSON shape mismatch: {e}"),
            Error::Io(e) => write!(f, "JSON i/o failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Data(e) => Some(e),
            Error::Syntax { .. } => None,
        }
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::Data(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible in this stand-in; the `Result` mirrors the upstream API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to human-readable JSON with two-space indentation.
///
/// # Errors
///
/// Infallible in this stand-in; the `Result` mirrors the upstream API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    out.push('\n');
    Ok(out)
}

/// Writes a value as pretty JSON into `writer`.
///
/// # Errors
///
/// Propagates writer failures.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string_pretty(value)?;
    writer.write_all(text.as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Syntax errors and shape mismatches.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON document"));
    }
    Ok(T::from_value(&value)?)
}

/// Reads a value from a JSON reader.
///
/// # Errors
///
/// I/O failures, syntax errors, and shape mismatches.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: Number, out: &mut String) {
    use fmt::Write as _;
    match n {
        Number::PosInt(u) => {
            let _ = write!(out, "{u}");
        }
        Number::NegInt(i) => {
            let _ = write!(out, "{i}");
        }
        // JSON has no NaN/Infinity literals; degrade to null like lenient
        // printers do rather than emit an unparseable document.
        Number::Float(f) if !f.is_finite() => out.push_str("null"),
        Number::Float(f) => {
            let start = out.len();
            let _ = write!(out, "{f}");
            // Keep an explicit float marker so 1.0 does not print as "1".
            if !out[start..].contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(v: &Value, depth: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(depth, out);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                indent(depth + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(depth, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Maximum container nesting the parser accepts. The parser is recursive
/// descent, so unbounded nesting (`[[[[…`) would overflow the stack — an
/// abort, not a catchable error. 128 levels is far beyond any document the
/// workspace produces.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Syntax {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(format!("unexpected byte `{}`", other as char))),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_PARSE_DEPTH} levels")));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a low surrogate.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)));
                        }
                    }
                }
                Some(_) => {
                    // Copy the whole run up to the next quote or escape in
                    // one go (the input came from `&str`, so any such run
                    // is valid UTF-8). Decoding char-by-char from the full
                    // remaining input here made parsing quadratic.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            // Try exact integer representations first; numbers too large for
            // 64 bits degrade to floats, matching upstream's lossy fallback.
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::NegInt(i)));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v: Vec<u64> = vec![1, 2, u64::MAX];
        let json = to_string(&v).unwrap();
        assert_eq!(json, format!("[1,2,{}]", u64::MAX));
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_display_keeps_marker() {
        let json = to_string(&1.0f64).unwrap();
        assert_eq!(json, "1.0");
        let back: f64 = from_str(&json).unwrap();
        assert!((back - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn float_shortest_roundtrip_is_exact() {
        let x = 0.1f64 + 0.2f64;
        let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Option<i64>> = vec![Some(-3), None, Some(7)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Option<i64>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nbreak \"quote\" \\slash\\ tab\t unicode \u{1F600}".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escape_and_surrogates_parse() {
        // é is e-acute; 😀 is the surrogate pair for U+1F600.
        let json = "\"A\\u00e9\\ud83d\\ude00\"";
        let back: String = from_str(json).unwrap();
        assert_eq!(back, "A\u{e9}\u{1F600}");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<bool>("{not json").is_err());
        assert!(from_str::<bool>("true false").is_err());
        assert!(from_str::<bool>("").is_err());
    }

    #[test]
    fn nesting_at_limit_parses_and_beyond_errors() {
        // Right at the limit: fine. The parser is recursive descent, so
        // without the guard the over-limit case would overflow the stack
        // (an abort), not return an error.
        let ok = format!("{}{}", "[".repeat(128), "]".repeat(128));
        assert!(from_str::<Value>(&ok).is_ok());
        let too_deep = format!("{}{}", "[".repeat(129), "]".repeat(129));
        assert!(from_str::<Value>(&too_deep).is_err());
        // Way past the limit must error, not crash.
        let way_deep = "[".repeat(100_000);
        assert!(from_str::<Value>(&way_deep).is_err());
        // Siblings do not accumulate depth.
        let wide = format!("[{}]", vec!["[[]]"; 200].join(","));
        assert!(from_str::<Value>(&wide).is_ok());
    }

    #[test]
    fn value_identity_roundtrip() {
        let v: Value = from_str(r#"{"a": [1, 2.5, null], "b": "x"}"#).unwrap();
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }
}
