//! Offline stand-in for `rand_core`, vendored so the workspace builds
//! without a crates.io mirror. Only the API subset this workspace uses is
//! provided; the trait contracts match the upstream crate.

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64
    /// so that nearby seeds yield unrelated states.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut c = Counter(0);
        let mut buf = [0u8; 11];
        c.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &1u64.to_le_bytes());
        assert_eq!(&buf[8..], &2u64.to_le_bytes()[..3]);
    }
}
