//! Offline vendored stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! `proptest!` test-block macro with `#![proptest_config(...)]`, `arg in
//! strategy` bindings over numeric ranges and `collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros. Unlike upstream
//! there is no shrinking: cases are generated from a deterministic
//! per-test seed (a hash of the test name mixed with the case index), so
//! failures reproduce exactly across runs and report the offending inputs.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Everything the `proptest!` macro and its callers need in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Marks the current case as failed.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator handed to strategies.
///
/// SplitMix64: tiny, full-period, and statistically fine for test-input
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        // Multiply-shift keeps the bias negligible for test-scale ranges.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = u128::from(rng.next_u64()) % span;
                ((self.start as i128) + draw as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                let draw = u128::from(rng.next_u64()) % (span as u128);
                ((lo as i128) + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn pick(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn pick(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = rng.next_u64() as f64 / u64::MAX as f64; // [0, 1]
        (lo + unit * (hi - lo)).clamp(lo, hi)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn pick(&self, rng: &mut TestRng) -> f32 {
        let wide = Range {
            start: f64::from(self.start),
            end: f64::from(self.end),
        };
        wide.pick(rng) as f32
    }
}

impl<S: Strategy> Strategy for &S {
    type Value = S::Value;

    fn pick(&self, rng: &mut TestRng) -> S::Value {
        (**self).pick(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with element strategy `element` and a length
    /// drawn uniformly from `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty vec size range");
        VecStrategy { element, sizes }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start) as u64;
            let len = self.sizes.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one proptest-style test: `cases` deterministic cases, panicking
/// with the offending inputs on the first failure.
///
/// Called by the `proptest!` macro; not part of the public proptest API.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    let base = hash_name(name);
    for i in 0..config.cases {
        let mut rng = TestRng::new(base ^ (u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let (outcome, inputs) = case(&mut rng);
        if let Err(e) = outcome {
            panic!(
                "proptest case {i}/{} failed: {e}\n  inputs: {inputs}",
                config.cases
            );
        }
    }
}

/// Declares a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn holds(x in 0u64..100, ys in proptest::collection::vec(0u32..9, 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal muncher behind [`proptest!`]; expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::pick(&($strategy), __proptest_rng);)+
                let __proptest_inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        if !s.is_empty() { s.push_str(", "); }
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&::std::format!("{:?}", $arg));
                    )+
                    s
                };
                let __proptest_outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                (__proptest_outcome, __proptest_inputs)
            });
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..2_000 {
            let x = (3u64..17).pick(&mut rng);
            assert!((3..17).contains(&x));
            let y = (-5i32..5).pick(&mut rng);
            assert!((-5..5).contains(&y));
            let f = (0.25f64..0.75).pick(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let g = (0.0f64..=1.0).pick(&mut rng);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::TestRng::new(11);
        let strat = crate::collection::vec(0u32..64, 2..9);
        for _ in 0..500 {
            let v = strat.pick(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 64));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_args(x in 1u64..100, ys in crate::collection::vec(0u32..4, 0..6)) {
            prop_assert!(x >= 1);
            prop_assert!(ys.len() < 6);
            if x == 1 {
                return Ok(()); // early accept must type-check
            }
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, 0);
        }
    }

    #[test]
    fn failing_case_panics_with_inputs() {
        let config = ProptestConfig::with_cases(4);
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(&config, "always_fails", |_rng| {
                (Err(TestCaseError::fail("boom")), "x = 3".to_string())
            });
        });
        let err = result.expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("boom") && msg.contains("x = 3"), "{msg}");
    }
}
