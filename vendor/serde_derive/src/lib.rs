//! Offline vendored stand-in for `serde_derive`.
//!
//! Parses the derive input by walking `proc_macro::TokenTree`s directly
//! (no `syn`/`quote` — they are unavailable offline) and emits impls of
//! the vendored `serde::Serialize` / `serde::Deserialize` value-tree
//! traits. Supported shapes: named structs, tuple structs, unit structs,
//! and the `#[serde(transparent)]` / `#[serde(default)]` attributes this
//! workspace uses. Field types are never inspected — generated code leans
//! on type inference at the use site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Input {
    name: String,
    transparent: bool,
    fields: Fields,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal parses")
}

/// Scans one `#[...]` attribute body for `serde(...)` flags.
fn scan_attr(body: TokenStream, transparent: &mut bool, default: &mut bool) {
    let mut iter = body.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    if let Some(TokenTree::Group(g)) = iter.next() {
        for tok in g.stream() {
            if let TokenTree::Ident(id) = tok {
                match id.to_string().as_str() {
                    "transparent" => *transparent = true,
                    "default" => *default = true,
                    _ => {}
                }
            }
        }
    }
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut iter = input.into_iter().peekable();
    let mut transparent = false;

    // Attributes and visibility before the `struct` keyword.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let mut ignored = false;
                    scan_attr(g.stream(), &mut transparent, &mut ignored);
                }
                _ => return Err("malformed attribute".into()),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if matches!(
                    iter.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    iter.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return Err("the vendored serde_derive does not support enums".into());
            }
            Some(other) => return Err(format!("unexpected token `{other}` before `struct`")),
            None => return Err("ran out of tokens before `struct`".into()),
        }
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    let fields = match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err("the vendored serde_derive does not support generic structs".into());
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named(g.stream())?)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => return Err(format!("unexpected struct body: {other:?}")),
    };

    Ok(Input {
        name,
        transparent,
        fields,
    })
}

/// Parses `name: Type, ...` named fields, honouring per-field attributes.
fn parse_named(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    'fields: loop {
        let mut default = false;
        let mut ignored = false;
        // Field attributes and visibility.
        let name = loop {
            match iter.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        scan_attr(g.stream(), &mut ignored, &mut default);
                    }
                    _ => return Err("malformed field attribute".into()),
                },
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if matches!(
                        iter.peek(),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        iter.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token `{other}` in fields")),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match iter.next() {
                None => {
                    fields.push(Field { name, default });
                    break 'fields;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    fields.push(Field { name, default });
                    continue 'fields;
                }
                Some(_) => {}
            }
        }
    }
    Ok(fields)
}

/// Counts tuple-struct fields: top-level commas at angle depth 0, plus one
/// for a trailing non-empty segment.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut segment_nonempty = false;
    for tok in body {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                segment_nonempty = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                segment_nonempty = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if segment_nonempty {
                    count += 1;
                }
                segment_nonempty = false;
            }
            _ => segment_nonempty = true,
        }
    }
    if segment_nonempty {
        count += 1;
    }
    count
}

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match (&item.fields, item.transparent) {
        (Fields::Named(fields), true) if fields.len() == 1 => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
        }
        (Fields::Tuple(1), true) => "::serde::Serialize::to_value(&self.0)".to_string(),
        (Fields::Named(fields), false) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        (Fields::Tuple(n), false) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        (Fields::Unit, _) => "::serde::Value::Null".to_string(),
        (_, true) => {
            return format!(
                "compile_error!(\"#[serde(transparent)] on `{name}` requires exactly one field\");"
            );
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match (&item.fields, item.transparent) {
        (Fields::Named(fields), true) if fields.len() == 1 => format!(
            "Ok({name} {{ {}: ::serde::Deserialize::from_value(v)? }})",
            fields[0].name
        ),
        (Fields::Tuple(1), true) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        (Fields::Named(fields), false) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let fallback = if f.default {
                        "::core::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return Err(::serde::DeError::missing_field(\"{}\"))",
                            f.name
                        )
                    };
                    format!(
                        "{n}: match v.get(\"{n}\") {{ \
                         Some(x) => ::serde::Deserialize::from_value(x)?, \
                         None => {fallback} }}",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "if !matches!(v, ::serde::Value::Object(_)) {{ \
                 return Err(::serde::DeError::expected(\"object\", v)); }} \
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        (Fields::Tuple(n), false) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{ \
                 ::serde::Value::Array(items) if items.len() == {n} => \
                 Ok({name}({})), \
                 _ => Err(::serde::DeError::expected(\"{n}-element array\", v)) }}",
                inits.join(", ")
            )
        }
        (Fields::Unit, _) => format!("Ok({name})"),
        (_, true) => {
            return format!(
                "compile_error!(\"#[serde(transparent)] on `{name}` requires exactly one field\");"
            );
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         \tfn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
