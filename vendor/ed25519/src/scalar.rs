//! Arithmetic modulo the Ed25519 group order
//! ℓ = 2^252 + 27742317777372353535851937790883648493.
//!
//! Reduction uses bit-serial long division — a few thousand word
//! operations, which is irrelevant next to the curve arithmetic and
//! trivially correct.

/// ℓ, little-endian limbs.
pub const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
];

fn geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn sub_raw(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let mut out = [0u64; 4];
    let mut borrow = 0u64;
    for i in 0..4 {
        let t = i128::from(a[i]) - i128::from(b[i]) - i128::from(borrow);
        out[i] = t as u64;
        borrow = u64::from(t < 0);
    }
    debug_assert_eq!(borrow, 0);
    out
}

/// Reduces an arbitrary little-endian limb string modulo ℓ.
fn reduce_limbs(limbs: &[u64]) -> [u64; 4] {
    let mut r = [0u64; 4];
    for bit in (0..limbs.len() * 64).rev() {
        // r = 2r + bit; r < ℓ < 2^253 so the shift cannot overflow.
        let mut carry = (limbs[bit / 64] >> (bit % 64)) & 1;
        for limb in r.iter_mut() {
            let t = (u128::from(*limb) << 1) | u128::from(carry);
            *limb = t as u64;
            carry = (t >> 64) as u64;
        }
        debug_assert_eq!(carry, 0);
        if geq(&r, &L) {
            r = sub_raw(&r, &L);
        }
    }
    r
}

fn limbs_from_bytes(bytes: &[u8]) -> Vec<u64> {
    debug_assert_eq!(bytes.len() % 8, 0);
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

fn bytes_from_limbs(limbs: &[u64; 4]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for i in 0..4 {
        out[i * 8..i * 8 + 8].copy_from_slice(&limbs[i].to_le_bytes());
    }
    out
}

/// Reduces a 64-byte little-endian value modulo ℓ (the hash-to-scalar
/// step of RFC 8032).
pub fn reduce_wide(bytes: &[u8; 64]) -> [u8; 32] {
    bytes_from_limbs(&reduce_limbs(&limbs_from_bytes(bytes)))
}

/// `(a·b + c) mod ℓ` over 32-byte little-endian scalars.
pub fn mul_add(a: &[u8; 32], b: &[u8; 32], c: &[u8; 32]) -> [u8; 32] {
    let (a, b, c) = (
        limbs_from_bytes(a),
        limbs_from_bytes(b),
        limbs_from_bytes(c),
    );
    let mut t = [0u64; 9];
    for i in 0..4 {
        let mut carry: u128 = 0;
        for j in 0..4 {
            let v = u128::from(t[i + j]) + u128::from(a[i]) * u128::from(b[j]) + carry;
            t[i + j] = v as u64;
            carry = v >> 64;
        }
        t[i + 4] = carry as u64;
    }
    let mut carry: u128 = 0;
    for (i, limb) in t.iter_mut().enumerate() {
        let v = u128::from(*limb) + u128::from(c.get(i).copied().unwrap_or(0)) + carry;
        *limb = v as u64;
        carry = v >> 64;
    }
    debug_assert_eq!(carry, 0);
    bytes_from_limbs(&reduce_limbs(&t))
}

/// Whether a 32-byte scalar is canonical (`< ℓ`) — the standard
/// malleability check on the `S` half of a signature.
pub fn is_canonical(bytes: &[u8; 32]) -> bool {
    let limbs = limbs_from_bytes(bytes);
    !geq(&[limbs[0], limbs[1], limbs[2], limbs[3]], &L)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_of_l_is_zero() {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&bytes_from_limbs(&L));
        assert_eq!(reduce_wide(&wide), [0u8; 32]);
        assert!(!is_canonical(&bytes_from_limbs(&L)));
    }

    #[test]
    fn small_values_pass_through() {
        let mut wide = [0u8; 64];
        wide[0] = 42;
        let r = reduce_wide(&wide);
        assert_eq!(r[0], 42);
        assert!(r[1..].iter().all(|&b| b == 0));
        assert!(is_canonical(&r));
    }

    #[test]
    fn mul_add_matches_a_hand_example() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        let mut c = [0u8; 32];
        a[0] = 7;
        b[0] = 9;
        c[0] = 5;
        let r = mul_add(&a, &b, &c);
        assert_eq!(r[0], 68);
        assert!(r[1..].iter().all(|&x| x == 0));
    }
}
