//! Offline vendored stand-in for the `ed25519-dalek` API surface this
//! workspace needs: RFC 8032 Ed25519 signing and verification, pure
//! Rust, no dependencies.
//!
//! The service layer signs bid envelopes with this crate; see
//! `vendor/README.md` for why external crates are vendored.
//!
//! # Scope and caveats
//!
//! * Arithmetic is straightforward bignum code, **not constant time**
//!   and roughly two orders of magnitude slower than an optimised
//!   implementation (~1 ms per verification in release builds). For the
//!   auction service — tens of bids per round — that is ample; nothing
//!   here should be lifted into a system handling adversarially timed
//!   traffic against long-lived secret keys without replacing it with a
//!   hardened implementation.
//! * Verification is *cofactorless* (`[S]B == R + [k]A`, the historical
//!   convention) and strict about malleability: non-canonical `S`
//!   (`S ≥ ℓ`) and non-canonical point encodings are rejected.
//!
//! # Example
//!
//! ```
//! use ed25519::{Signature, SigningKey, VerifyingKey};
//!
//! let key = SigningKey::from_seed([7u8; 32]);
//! let sig = key.sign(b"pay worker 3 exactly 41.5");
//! let public = VerifyingKey::from_bytes(&key.verifying_key().to_bytes()).unwrap();
//! assert!(public.verify(b"pay worker 3 exactly 41.5", &sig).is_ok());
//! assert!(public.verify(b"pay worker 3 exactly 99.9", &sig).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod edwards;
mod field;
mod scalar;
mod sha512;

use std::fmt;

use edwards::Point;
pub use sha512::{sha512_parts, Sha512};

/// Why a signature or key failed to parse or verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureError {
    /// The 32-byte public key is not a canonical curve point.
    InvalidPublicKey,
    /// The `R` half of the signature is not a canonical curve point.
    InvalidPointEncoding,
    /// The `S` half of the signature is ≥ the group order ℓ.
    NonCanonicalScalar,
    /// The verification equation `[S]B == R + [k]A` does not hold.
    VerificationFailed,
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::InvalidPublicKey => write!(f, "public key is not a valid curve point"),
            SignatureError::InvalidPointEncoding => {
                write!(f, "signature R is not a valid curve point")
            }
            SignatureError::NonCanonicalScalar => {
                write!(f, "signature S is not canonical (≥ group order)")
            }
            SignatureError::VerificationFailed => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for SignatureError {}

/// A detached Ed25519 signature: `R ‖ S`, 64 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature([u8; 64]);

impl Signature {
    /// Wraps raw signature bytes (validity is checked at verify time).
    pub fn from_bytes(bytes: &[u8; 64]) -> Signature {
        Signature(*bytes)
    }

    /// The raw 64 bytes.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.0
    }
}

/// An Ed25519 public key.
#[derive(Debug, Clone, Copy)]
pub struct VerifyingKey {
    compressed: [u8; 32],
    point: Point,
}

// Equality of the canonical compressed encodings; the cached
// decompressed point is derived and carries no extra information.
impl PartialEq for VerifyingKey {
    fn eq(&self, other: &Self) -> bool {
        self.compressed == other.compressed
    }
}

impl Eq for VerifyingKey {}

impl VerifyingKey {
    /// Parses a compressed public key, rejecting non-canonical encodings.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<VerifyingKey, SignatureError> {
        let point = Point::decompress(bytes).ok_or(SignatureError::InvalidPublicKey)?;
        Ok(VerifyingKey {
            compressed: *bytes,
            point,
        })
    }

    /// The compressed 32-byte encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.compressed
    }

    /// Verifies a detached signature over `message`.
    ///
    /// # Errors
    ///
    /// Returns the [`SignatureError`] variant naming the first check that
    /// failed (point decoding, scalar canonicity, or the curve equation).
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        let sig = signature.0;
        let r_bytes: [u8; 32] = sig[..32].try_into().expect("32-byte half");
        let s_bytes: [u8; 32] = sig[32..].try_into().expect("32-byte half");
        let r = Point::decompress(&r_bytes).ok_or(SignatureError::InvalidPointEncoding)?;
        if !scalar::is_canonical(&s_bytes) {
            return Err(SignatureError::NonCanonicalScalar);
        }
        let k = scalar::reduce_wide(&sha512_parts(&[&r_bytes, &self.compressed, message]));
        let lhs = Point::base().mul_scalar(&s_bytes);
        let rhs = r.add(&self.point.mul_scalar(&k));
        if lhs.compress() == rhs.compress() {
            Ok(())
        } else {
            Err(SignatureError::VerificationFailed)
        }
    }
}

/// An Ed25519 private key, held as the 32-byte RFC 8032 seed.
#[derive(Clone)]
pub struct SigningKey {
    scalar: [u8; 32],
    prefix: [u8; 32],
    public: VerifyingKey,
}

impl SigningKey {
    /// Derives the key pair from a 32-byte seed (RFC 8032 §5.1.5).
    pub fn from_seed(seed: [u8; 32]) -> SigningKey {
        let h = sha512_parts(&[&seed]);
        let mut scalar: [u8; 32] = h[..32].try_into().expect("32-byte half");
        scalar[0] &= 248;
        scalar[31] &= 127;
        scalar[31] |= 64;
        let prefix: [u8; 32] = h[32..].try_into().expect("32-byte half");
        let compressed = Point::base().mul_scalar(&scalar).compress();
        let public = VerifyingKey::from_bytes(&compressed)
            .expect("a generated public key always decompresses");
        SigningKey {
            scalar,
            prefix,
            public,
        }
    }

    /// The matching public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Signs `message` (RFC 8032 §5.1.6).
    pub fn sign(&self, message: &[u8]) -> Signature {
        let r = scalar::reduce_wide(&sha512_parts(&[&self.prefix, message]));
        let r_point = Point::base().mul_scalar(&r).compress();
        let k = scalar::reduce_wide(&sha512_parts(&[&r_point, &self.public.compressed, message]));
        let s = scalar::mul_add(&k, &self.scalar, &r);
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&r_point);
        out[32..].copy_from_slice(&s);
        Signature(out)
    }
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print secret material.
        write!(f, "SigningKey({:02x?}…)", &self.public.compressed[..4])
    }
}

/// Lowercase hex encoding (used for keys and signatures on the wire).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Strict lowercase/uppercase hex decoding; `None` on odd length or
/// non-hex characters.
pub fn hex_decode(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    let digits: Option<Vec<u8>> = text
        .bytes()
        .map(|b| match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        })
        .collect();
    let digits = digits?;
    Some(digits.chunks_exact(2).map(|p| (p[0] << 4) | p[1]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode32(hex: &str) -> [u8; 32] {
        hex_decode(hex).unwrap().try_into().unwrap()
    }

    struct Vector {
        seed: &'static str,
        public: &'static str,
        message: &'static str,
        signature: &'static str,
    }

    /// RFC 8032 §7.1, TEST 1–3.
    const VECTORS: [Vector; 3] = [
        Vector {
            seed: "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
            public: "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
            message: "",
            signature: "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e065224901555fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
        },
        Vector {
            seed: "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
            public: "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
            message: "72",
            signature: "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
        },
        Vector {
            seed: "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
            public: "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
            message: "af82",
            signature: "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
        },
    ];

    #[test]
    fn rfc8032_vectors_sign_and_verify() {
        for (i, v) in VECTORS.iter().enumerate() {
            let key = SigningKey::from_seed(decode32(v.seed));
            assert_eq!(
                hex_encode(&key.verifying_key().to_bytes()),
                v.public,
                "public key mismatch in vector {i}"
            );
            let message = hex_decode(v.message).unwrap();
            let sig = key.sign(&message);
            assert_eq!(
                hex_encode(&sig.to_bytes()),
                v.signature,
                "signature mismatch in vector {i}"
            );
            key.verifying_key()
                .verify(&message, &sig)
                .unwrap_or_else(|e| panic!("vector {i} failed to verify: {e}"));
        }
    }

    #[test]
    fn tampering_is_detected() {
        let key = SigningKey::from_seed([3u8; 32]);
        let sig = key.sign(b"round 9, bid 41.5");
        let public = key.verifying_key();
        assert!(public.verify(b"round 9, bid 41.6", &sig).is_err());
        let mut bad = sig.to_bytes();
        bad[5] ^= 1;
        assert!(public
            .verify(b"round 9, bid 41.5", &Signature::from_bytes(&bad))
            .is_err());
        let other = SigningKey::from_seed([4u8; 32]);
        assert!(other
            .verifying_key()
            .verify(b"round 9, bid 41.5", &sig)
            .is_err());
    }

    #[test]
    fn non_canonical_s_is_rejected() {
        let key = SigningKey::from_seed([5u8; 32]);
        let sig = key.sign(b"msg");
        let mut forged = sig.to_bytes();
        // Set S to ℓ (canonical bound): must be rejected before the
        // verification equation is even consulted.
        for (i, limb) in crate::scalar::L.iter().enumerate() {
            forged[32 + i * 8..32 + i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        assert_eq!(
            key.verifying_key()
                .verify(b"msg", &Signature::from_bytes(&forged)),
            Err(SignatureError::NonCanonicalScalar)
        );
    }

    #[test]
    fn hex_round_trips() {
        assert_eq!(hex_encode(&[0x00, 0xab, 0x5f]), "00ab5f");
        assert_eq!(hex_decode("00AB5f"), Some(vec![0x00, 0xab, 0x5f]));
        assert_eq!(hex_decode("0g"), None);
        assert_eq!(hex_decode("abc"), None);
    }
}
