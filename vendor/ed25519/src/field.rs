//! Arithmetic in GF(2^255 − 19).
//!
//! Elements are four little-endian 64-bit limbs kept fully reduced
//! (`< p`) between operations. Multiplication reduces a 512-bit
//! schoolbook product with the identity `2^256 ≡ 38 (mod p)`.
//!
//! This code favours obviousness over speed and is **not constant
//! time**; see the crate-level caveat.

/// A field element, little-endian limbs, always `< p`.
pub type Fe = [u64; 4];

/// p = 2^255 − 19.
pub const P: Fe = [
    0xffff_ffff_ffff_ffed,
    0xffff_ffff_ffff_ffff,
    0xffff_ffff_ffff_ffff,
    0x7fff_ffff_ffff_ffff,
];

/// p − 2, little-endian bytes (inversion exponent, Fermat).
pub const P_MINUS_2: [u8; 32] = exponent_bytes(0xeb, 0x7f);
/// (p + 3) / 8 = 2^252 − 2, little-endian bytes (square-root candidate).
pub const P_PLUS_3_OVER_8: [u8; 32] = exponent_bytes(0xfe, 0x0f);
/// (p − 1) / 4 = 2^253 − 5, little-endian bytes (yields √−1 from 2).
pub const P_MINUS_1_OVER_4: [u8; 32] = exponent_bytes(0xfb, 0x1f);

/// Bytes `[first, 0xff × 30, last]` — the shape all three exponents share.
const fn exponent_bytes(first: u8, last: u8) -> [u8; 32] {
    let mut b = [0xffu8; 32];
    b[0] = first;
    b[31] = last;
    b
}

pub const ZERO: Fe = [0; 4];
pub const ONE: Fe = [1, 0, 0, 0];

fn geq(a: &Fe, b: &Fe) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a - b` assuming `a >= b` (raw limb subtraction).
fn sub_raw(a: &Fe, b: &Fe) -> Fe {
    let mut out = ZERO;
    let mut borrow = 0u64;
    for i in 0..4 {
        let t = i128::from(a[i]) - i128::from(b[i]) - i128::from(borrow);
        out[i] = t as u64;
        borrow = u64::from(t < 0);
    }
    debug_assert_eq!(borrow, 0);
    out
}

fn reduce_once(a: &mut Fe) {
    if geq(a, &P) {
        *a = sub_raw(a, &P);
    }
}

/// `a + b (mod p)`. Inputs reduced, so the raw sum fits 256 bits.
pub fn add(a: &Fe, b: &Fe) -> Fe {
    let mut out = ZERO;
    let mut carry = 0u64;
    for i in 0..4 {
        let t = u128::from(a[i]) + u128::from(b[i]) + u128::from(carry);
        out[i] = t as u64;
        carry = (t >> 64) as u64;
    }
    debug_assert_eq!(carry, 0);
    reduce_once(&mut out);
    out
}

/// `a − b (mod p)` via `a + (p − b)`.
pub fn sub(a: &Fe, b: &Fe) -> Fe {
    add(a, &sub_raw(&P, b))
}

/// `−a (mod p)`.
pub fn neg(a: &Fe) -> Fe {
    sub(&ZERO, a)
}

/// Adds a small value in place; returns the carry out of limb 3.
fn add_small(a: &mut Fe, v: u64) -> u64 {
    let mut carry = u128::from(v);
    for limb in a.iter_mut() {
        if carry == 0 {
            break;
        }
        let t = u128::from(*limb) + carry;
        *limb = t as u64;
        carry = t >> 64;
    }
    carry as u64
}

/// Reduces a 512-bit schoolbook product modulo p.
fn reduce_wide(t: &[u64; 8]) -> Fe {
    // Fold the high 256 bits down: 2^256 ≡ 38.
    let mut out = ZERO;
    let mut carry: u128 = 0;
    for i in 0..4 {
        let v = u128::from(t[i]) + u128::from(t[4 + i]) * 38 + carry;
        out[i] = v as u64;
        carry = v >> 64;
    }
    // carry < 38·2^64 / 2^64 + 1, i.e. tiny; fold again (twice at most —
    // a second wrap leaves the value far below p).
    let mut extra = (carry as u64).wrapping_mul(38);
    loop {
        let wrapped = add_small(&mut out, extra);
        if wrapped == 0 {
            break;
        }
        extra = 38;
    }
    reduce_once(&mut out);
    reduce_once(&mut out);
    out
}

/// `a · b (mod p)`.
pub fn mul(a: &Fe, b: &Fe) -> Fe {
    let mut t = [0u64; 8];
    for i in 0..4 {
        let mut carry: u128 = 0;
        for j in 0..4 {
            let v = u128::from(t[i + j]) + u128::from(a[i]) * u128::from(b[j]) + carry;
            t[i + j] = v as u64;
            carry = v >> 64;
        }
        t[i + 4] = carry as u64;
    }
    reduce_wide(&t)
}

/// `a² (mod p)`.
pub fn square(a: &Fe) -> Fe {
    mul(a, a)
}

/// `a^e (mod p)` for a little-endian byte exponent.
pub fn pow(a: &Fe, exponent_le: &[u8; 32]) -> Fe {
    let mut acc = ONE;
    for bit in (0..256).rev() {
        acc = square(&acc);
        if (exponent_le[bit / 8] >> (bit % 8)) & 1 == 1 {
            acc = mul(&acc, a);
        }
    }
    acc
}

/// `a⁻¹ (mod p)`; returns zero for zero.
pub fn invert(a: &Fe) -> Fe {
    pow(a, &P_MINUS_2)
}

pub fn is_zero(a: &Fe) -> bool {
    *a == ZERO
}

/// The low bit of the canonical representative (the RFC 8032 "sign").
pub fn is_negative(a: &Fe) -> bool {
    a[0] & 1 == 1
}

pub fn from_u64(v: u64) -> Fe {
    [v, 0, 0, 0]
}

/// Canonical little-endian encoding.
pub fn to_bytes(a: &Fe) -> [u8; 32] {
    let mut out = [0u8; 32];
    for i in 0..4 {
        out[i * 8..i * 8 + 8].copy_from_slice(&a[i].to_le_bytes());
    }
    out
}

/// Strict decoding: rejects non-canonical encodings (`>= p`).
pub fn from_bytes(bytes: &[u8; 32]) -> Option<Fe> {
    let mut out = ZERO;
    for i in 0..4 {
        out[i] = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8-byte chunk"));
    }
    if geq(&out, &P) {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inversion_round_trips() {
        let a = from_u64(1234567);
        assert_eq!(mul(&a, &invert(&a)), ONE);
    }

    #[test]
    fn sub_then_add_round_trips() {
        let a = from_u64(3);
        let b = from_u64(u64::MAX);
        assert_eq!(add(&sub(&a, &b), &b), a);
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let sqrt_m1 = pow(&from_u64(2), &P_MINUS_1_OVER_4);
        assert_eq!(square(&sqrt_m1), neg(&ONE));
    }

    #[test]
    fn encoding_round_trips_and_rejects_p() {
        let a = sub(&ZERO, &from_u64(19)); // p − 19
        assert_eq!(from_bytes(&to_bytes(&a)), Some(a));
        assert_eq!(from_bytes(&to_bytes(&P)), None);
    }
}
