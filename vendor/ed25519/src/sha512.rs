//! SHA-512 (FIPS 180-4).
//!
//! The round constants and initial hash values are *derived at first
//! use* — fractional parts of the cube and square roots of the first
//! primes, computed with exact integer root-finding — rather than
//! transcribed, so a typo cannot silently weaken the hash. The
//! known-answer tests pin the empty-string and `"abc"` digests.

use std::sync::OnceLock;

/// Multiplies two little-endian limb vectors (schoolbook, exact).
fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        let mut carry: u128 = 0;
        for (j, &bj) in b.iter().enumerate() {
            let v = u128::from(out[i + j]) + u128::from(ai) * u128::from(bj) + carry;
            out[i + j] = v as u64;
            carry = v >> 64;
        }
        out[i + b.len()] = carry as u64;
    }
    out
}

/// Compares two little-endian limb vectors of any lengths.
fn cmp_limbs(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    let n = a.len().max(b.len());
    for i in (0..n).rev() {
        let ai = a.get(i).copied().unwrap_or(0);
        let bi = b.get(i).copied().unwrap_or(0);
        if ai != bi {
            return ai.cmp(&bi);
        }
    }
    std::cmp::Ordering::Equal
}

/// `x` as limbs (`x < 2^128`).
fn u128_limbs(x: u128) -> Vec<u64> {
    vec![x as u64, (x >> 64) as u64]
}

/// Low 64 bits of `floor(p^(1/k) · 2^64)` — the fractional part of the
/// k-th root of `p`, as used for the SHA-2 constants.
fn frac_root(p: u64, k: u32) -> u64 {
    // target = p << (64·k); find the largest x with x^k <= target.
    let mut target = vec![0u64; k as usize];
    target.push(p);
    let (mut lo, mut hi) = (0u128, 1u128 << 68);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        let mut pow = u128_limbs(mid);
        for _ in 1..k {
            pow = mul_limbs(&pow, &u128_limbs(mid));
        }
        if cmp_limbs(&pow, &target) == std::cmp::Ordering::Greater {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo as u64
}

/// The first `n` primes by trial division.
fn primes(n: usize) -> Vec<u64> {
    let mut found: Vec<u64> = Vec::with_capacity(n);
    let mut c = 2u64;
    while found.len() < n {
        if found.iter().all(|p| !c.is_multiple_of(*p)) {
            found.push(c);
        }
        c += 1;
    }
    found
}

struct Consts {
    k: [u64; 80],
    h: [u64; 8],
}

fn consts() -> &'static Consts {
    static CONSTS: OnceLock<Consts> = OnceLock::new();
    CONSTS.get_or_init(|| {
        let ps = primes(80);
        let mut k = [0u64; 80];
        for (i, &p) in ps.iter().enumerate() {
            k[i] = frac_root(p, 3);
        }
        let mut h = [0u64; 8];
        for (i, &p) in ps.iter().take(8).enumerate() {
            h[i] = frac_root(p, 2);
        }
        Consts { k, h }
    })
}

/// Streaming SHA-512 hasher.
pub struct Sha512 {
    state: [u64; 8],
    buffer: [u8; 128],
    buffered: usize,
    length_bytes: u128,
}

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha512 {
            state: consts().h,
            buffer: [0u8; 128],
            buffered: 0,
            length_bytes: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bytes += data.len() as u128;
        while !data.is_empty() {
            let take = (128 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 128 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    /// Finishes and returns the 64-byte digest.
    pub fn finalize(mut self) -> [u8; 64] {
        let bit_length = self.length_bytes * 8;
        self.update_padding(bit_length);
        let mut out = [0u8; 64];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self, bit_length: u128) {
        // 0x80, zeros to 112 mod 128, then the 128-bit bit length BE.
        // Written via the normal buffering path, but without growing the
        // recorded message length.
        let mut pad = vec![0x80u8];
        let after_one = (self.buffered + 1) % 128;
        let zeros = (112usize.wrapping_sub(after_one)) % 128;
        pad.extend(std::iter::repeat_n(0u8, zeros));
        pad.extend_from_slice(&bit_length.to_be_bytes());
        let saved = self.length_bytes;
        self.update(&pad);
        self.length_bytes = saved;
        debug_assert_eq!(self.buffered, 0);
    }

    fn compress(&mut self, block: &[u8; 128]) {
        let k = &consts().k;
        let mut w = [0u64; 80];
        for (i, chunk) in block.chunks_exact(8).enumerate() {
            w[i] = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        for i in 16..80 {
            let s0 = w[i - 15].rotate_right(1) ^ w[i - 15].rotate_right(8) ^ (w[i - 15] >> 7);
            let s1 = w[i - 2].rotate_right(19) ^ w[i - 2].rotate_right(61) ^ (w[i - 2] >> 6);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..80 {
            let big_s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let big_s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-512 over the concatenation of the given parts.
pub fn sha512_parts(parts: &[&[u8]]) -> [u8; 64] {
    let mut h = Sha512::new();
    for part in parts {
        h.update(part);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex_encode;

    #[test]
    fn derived_constants_match_the_standard() {
        // Spot-check the published FIPS 180-4 values.
        assert_eq!(consts().h[0], 0x6a09e667f3bcc908);
        assert_eq!(consts().h[7], 0x5be0cd19137e2179);
        assert_eq!(consts().k[0], 0x428a2f98d728ae22);
        assert_eq!(consts().k[79], 0x6c44198c4a475817);
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex_encode(&sha512_parts(&[])),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex_encode(&sha512_parts(&[b"abc"])),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
        );
    }

    #[test]
    fn multi_block_and_split_updates_agree() {
        let long = vec![0xabu8; 333];
        let whole = sha512_parts(&[&long]);
        let mut h = Sha512::new();
        for chunk in long.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), whole);
    }
}
