//! The twisted Edwards curve −x² + y² = 1 + d·x²y² over GF(2^255 − 19),
//! in extended homogeneous coordinates (X : Y : Z : T), XY = TZ.
//!
//! Only the unified addition law is implemented (doubling is `add(p, p)`)
//! — one formula, no sign-convention pitfalls, and completeness on this
//! curve means no exceptional cases to special-case.

use std::sync::OnceLock;

use crate::field::{self, Fe};

/// A curve point in extended coordinates.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

struct Consts {
    d: Fe,
    d2: Fe,
    sqrt_m1: Fe,
    base: Point,
}

fn consts() -> &'static Consts {
    static CONSTS: OnceLock<Consts> = OnceLock::new();
    CONSTS.get_or_init(|| {
        // d = −121665 / 121666.
        let d = field::mul(
            &field::neg(&field::from_u64(121665)),
            &field::invert(&field::from_u64(121666)),
        );
        let d2 = field::add(&d, &d);
        let sqrt_m1 = field::pow(&field::from_u64(2), &field::P_MINUS_1_OVER_4);
        // The standard base point: y = 4/5, x positive — its canonical
        // compressed encoding is 0x58 followed by 31 × 0x66.
        let mut encoded = [0x66u8; 32];
        encoded[0] = 0x58;
        let base =
            decompress_with(&encoded, &d, &sqrt_m1).expect("the ed25519 base point decompresses");
        Consts {
            d,
            d2,
            sqrt_m1,
            base,
        }
    })
}

impl Point {
    /// The neutral element (0, 1).
    pub fn identity() -> Point {
        Point {
            x: field::ZERO,
            y: field::ONE,
            z: field::ONE,
            t: field::ZERO,
        }
    }

    /// The standard base point B.
    pub fn base() -> Point {
        consts().base
    }

    /// Unified point addition (RFC 8032 §5.1.4; complete on this curve).
    pub fn add(&self, other: &Point) -> Point {
        let a = field::mul(
            &field::sub(&self.y, &self.x),
            &field::sub(&other.y, &other.x),
        );
        let b = field::mul(
            &field::add(&self.y, &self.x),
            &field::add(&other.y, &other.x),
        );
        let c = field::mul(&field::mul(&self.t, &consts().d2), &other.t);
        let zz = field::mul(&self.z, &other.z);
        let d = field::add(&zz, &zz);
        let e = field::sub(&b, &a);
        let f = field::sub(&d, &c);
        let g = field::add(&d, &c);
        let h = field::add(&b, &a);
        Point {
            x: field::mul(&e, &f),
            y: field::mul(&g, &h),
            z: field::mul(&f, &g),
            t: field::mul(&e, &h),
        }
    }

    /// Scalar multiplication by a little-endian 32-byte scalar
    /// (double-and-add, not constant time — see the crate caveat).
    pub fn mul_scalar(&self, scalar_le: &[u8; 32]) -> Point {
        let mut acc = Point::identity();
        for bit in (0..256).rev() {
            acc = acc.add(&acc);
            if (scalar_le[bit / 8] >> (bit % 8)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Canonical compressed encoding: y with the sign of x in bit 255.
    pub fn compress(&self) -> [u8; 32] {
        let zinv = field::invert(&self.z);
        let x = field::mul(&self.x, &zinv);
        let y = field::mul(&self.y, &zinv);
        let mut out = field::to_bytes(&y);
        if field::is_negative(&x) {
            out[31] |= 0x80;
        }
        out
    }

    /// Strict decompression per RFC 8032 §5.1.3. Rejects non-canonical
    /// y, non-residues, and the x = 0 / sign = 1 encoding.
    pub fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let c = consts();
        decompress_with(bytes, &c.d, &c.sqrt_m1)
    }
}

fn decompress_with(bytes: &[u8; 32], d: &Fe, sqrt_m1: &Fe) -> Option<Point> {
    let sign = bytes[31] >> 7;
    let mut y_bytes = *bytes;
    y_bytes[31] &= 0x7f;
    let y = field::from_bytes(&y_bytes)?;
    let yy = field::square(&y);
    // x² = (y² − 1) / (d·y² + 1). The denominator is never zero because
    // −1/d is a non-residue.
    let u = field::sub(&yy, &field::ONE);
    let v = field::add(&field::mul(d, &yy), &field::ONE);
    let candidate = field::mul(&u, &field::invert(&v));
    let mut x = field::pow(&candidate, &field::P_PLUS_3_OVER_8);
    let xx = field::square(&x);
    if xx != candidate {
        if xx == field::neg(&candidate) {
            x = field::mul(&x, sqrt_m1);
        } else {
            return None;
        }
    }
    if field::is_zero(&x) && sign == 1 {
        return None;
    }
    if u8::from(field::is_negative(&x)) != sign {
        x = field::neg(&x);
    }
    Some(Point {
        t: field::mul(&x, &y),
        x,
        y,
        z: field::ONE,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_point_round_trips_through_compression() {
        let b = Point::base();
        let enc = b.compress();
        assert_eq!(enc[0], 0x58);
        assert!(enc[1..].iter().all(|&x| x == 0x66));
        let back = Point::decompress(&enc).expect("decompress");
        assert_eq!(back.compress(), enc);
    }

    #[test]
    fn identity_is_neutral() {
        let b = Point::base();
        assert_eq!(b.add(&Point::identity()).compress(), b.compress());
    }

    #[test]
    fn scalar_arithmetic_is_consistent() {
        // 2B + 3B == 5B.
        let mut two = [0u8; 32];
        let mut three = [0u8; 32];
        let mut five = [0u8; 32];
        two[0] = 2;
        three[0] = 3;
        five[0] = 5;
        let b = Point::base();
        let lhs = b.mul_scalar(&two).add(&b.mul_scalar(&three));
        assert_eq!(lhs.compress(), b.mul_scalar(&five).compress());
    }

    #[test]
    fn order_annihilates_the_base_point() {
        let mut l_bytes = [0u8; 32];
        for (i, limb) in crate::scalar::L.iter().enumerate() {
            l_bytes[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        let p = Point::base().mul_scalar(&l_bytes);
        assert_eq!(p.compress(), Point::identity().compress());
    }
}
