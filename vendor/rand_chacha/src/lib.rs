//! Offline vendored stand-in for `rand_chacha` carrying a genuine ChaCha8
//! implementation (RFC 7539 block function with 8 rounds), so the
//! workspace's seeded experiment streams are high-quality and stable
//! across releases of this repository.

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha generator with 8 rounds — the variant the workspace's
/// `mcs_num::rng` module standardizes on.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    cursor: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words 14–15 stay zero: one seed = one stream.
        let mut working = state;
        for _ in 0..4 {
            // Column round.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(&state)) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn output_looks_uniform() {
        // Crude monobit test over 64k bits.
        let mut r = ChaCha8Rng::seed_from_u64(42);
        let ones: u32 = (0..1024).map(|_| r.next_u64().count_ones()).sum();
        let total = 1024 * 64;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.01, "ones fraction {frac}");
    }

    #[test]
    fn blocks_advance() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }
}
