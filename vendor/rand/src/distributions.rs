//! The `Standard` distribution and uniform range sampling.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand_core::RngCore;

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

    /// Converts the distribution plus a generator into a sample iterator.
    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        Self: Sized,
        R: Rng,
    {
        DistIter {
            distr: self,
            rng,
            _marker: PhantomData,
        }
    }
}

/// An infinite iterator of samples.
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<T>,
}

impl<D: Distribution<T>, R: Rng, T> Iterator for DistIter<D, R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// The uniform distribution over a type's natural full range (`[0, 1)` for
/// floats).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that supports uniform single-value sampling.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded uniform integers (Lemire); the tiny modulo bias
/// of the plain widening multiply is irrelevant at the sample counts this
/// workspace draws.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: f64 = Standard.sample(rng);
                self.start + (u as $t) * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: f64 = Standard.sample(rng);
                lo + (u as $t) * (hi - lo)
            }
        }
    )*};
}

sample_range_float!(f32, f64);
