//! Offline stand-in for `rand`, vendored so the workspace builds without a
//! crates.io mirror. Implements the `Rng` extension trait, the `Standard`
//! distribution, uniform ranges, and slice sampling — the subset this
//! workspace uses. Semantics match the upstream crate; bit-exact output
//! streams are not guaranteed (nothing in this repo depends on them).

pub use rand_core::{RngCore, SeedableRng};

pub mod distributions;
pub mod seq;

use distributions::{DistIter, Distribution, SampleRange, Standard};

/// Extension methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Converts the generator into an iterator of samples.
    fn sample_iter<T, D: Distribution<T>>(self, distr: D) -> DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distr.sample_iter(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut r = SplitMix(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SplitMix(2);
        for _ in 0..1000 {
            let x = r.gen_range(3..7);
            assert!((3..7).contains(&x));
            let y = r.gen_range(-2.5..=2.5f64);
            assert!((-2.5..=2.5).contains(&y));
            let z = r.gen_range(5u64..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SplitMix(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
