//! Sequence-related sampling: shuffling and choosing from slices.

use crate::Rng;

/// Extension methods on slices for random sampling.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns `amount` distinct elements in random order (all of them if
    /// the slice is shorter).
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

/// Iterator over elements chosen by [`SliceRandom::choose_multiple`].
#[derive(Debug)]
pub struct SliceChooseIter<'a, T> {
    items: std::vec::IntoIter<&'a T>,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        self.items.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.items.size_hint()
    }
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index table.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        let picked: Vec<&T> = indices[..amount].iter().map(|&i| &self[i]).collect();
        SliceChooseIter {
            items: picked.into_iter(),
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_core::RngCore;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn choose_multiple_returns_distinct_elements() {
        let mut r = SplitMix(1);
        let xs: Vec<u32> = (0..20).collect();
        let mut picked: Vec<u32> = xs.choose_multiple(&mut r, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 8);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix(2);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut r);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SplitMix(3);
        let xs: [u8; 0] = [];
        assert!(xs.choose(&mut r).is_none());
    }
}
