//! Coarse statistical sanity checks over the ChaCha8-backed stream:
//! catastrophic generator or distribution bugs (stuck bits, heavy bias)
//! trip these long before they would corrupt experiment statistics.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn gen_bool_frequency_tracks_p() {
    let mut r = ChaCha8Rng::seed_from_u64(7);
    for &p in &[0.1, 0.3, 0.5, 0.7, 0.9] {
        let n = 40_000;
        let hits = (0..n).filter(|_| r.gen_bool(p)).count();
        let freq = hits as f64 / n as f64;
        assert!(
            (freq - p).abs() < 0.02,
            "gen_bool({p}) frequency {freq} off by more than 2%"
        );
    }
}

#[test]
fn gen_range_f64_moments_are_uniform() {
    let mut r = ChaCha8Rng::seed_from_u64(11);
    let n = 50_000;
    let draws: Vec<f64> = (0..n).map(|_| r.gen_range(2.0..6.0)).collect();
    let mean = draws.iter().sum::<f64>() / n as f64;
    let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
    // Uniform(2, 6) variance is (6-2)^2 / 12 = 4/3.
    assert!((var - 4.0 / 3.0).abs() < 0.1, "variance {var}");
    assert!(draws.iter().all(|&x| (2.0..6.0).contains(&x)));
}

#[test]
fn gen_range_int_buckets_are_flat() {
    let mut r = ChaCha8Rng::seed_from_u64(13);
    let n = 90_000;
    let mut buckets = [0u32; 9];
    for _ in 0..n {
        buckets[r.gen_range(0usize..9)] += 1;
    }
    let expected = n as f64 / 9.0;
    for (i, &b) in buckets.iter().enumerate() {
        assert!(
            (f64::from(b) - expected).abs() < expected * 0.05,
            "bucket {i}: {b} vs expected {expected}"
        );
    }
}

#[test]
fn chacha_streams_differ_across_seeds_but_repeat_within() {
    let a: Vec<u64> = {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        (0..64).map(|_| r.gen::<u64>()).collect()
    };
    let a2: Vec<u64> = {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        (0..64).map(|_| r.gen::<u64>()).collect()
    };
    let b: Vec<u64> = {
        let mut r = ChaCha8Rng::seed_from_u64(2);
        (0..64).map(|_| r.gen::<u64>()).collect()
    };
    assert_eq!(a, a2, "same seed must replay the same stream");
    assert_ne!(a, b, "different seeds must diverge");
    // Bits should be roughly balanced.
    let ones: u32 = a.iter().map(|x| x.count_ones()).sum();
    let total = 64 * 64;
    assert!(
        (f64::from(ones) / f64::from(total) - 0.5).abs() < 0.03,
        "bit balance {ones}/{total}"
    );
}
