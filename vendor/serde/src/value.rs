//! The owned data-model tree shared by the vendored serde / serde_json.

use std::fmt;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any numeric value.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A number, split by representation so 64-bit integers stay exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// Converts to `f64`, possibly losing integer precision beyond 2^53.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short human-readable description of the value's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A structural mismatch met while rebuilding a type from a [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// A free-form deserialization error.
    pub fn custom(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
        }
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError {
            message: format!("expected {what}, found {}", found.kind()),
        }
    }

    /// Numeric out-of-range error.
    pub fn range(what: &str, found: &Value) -> DeError {
        DeError {
            message: format!("number {found:?} out of range for {what}"),
        }
    }

    /// A missing object field.
    pub fn missing_field(name: &str) -> DeError {
        DeError {
            message: format!("missing field `{name}`"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}
