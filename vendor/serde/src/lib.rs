//! Offline vendored stand-in for `serde`.
//!
//! Instead of upstream serde's visitor-based zero-copy data model, this
//! stand-in serializes through an owned [`Value`] tree — dramatically
//! simpler, and fully sufficient for the workload snapshots and experiment
//! rows this workspace persists. The `#[derive(Serialize, Deserialize)]`
//! macros (from the sibling vendored `serde_derive`) understand named
//! structs, tuple structs, unit-variant enums, and the `transparent` /
//! `default` attributes used in this repository.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{DeError, Number, Value};

/// Types that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the data-model tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting structural mismatches as [`DeError`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::Number(Number::NegInt(*self as i64))
                } else {
                    Value::Number(Number::PosInt(*self as u64))
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Number(Number::PosInt(u)) => {
                        <$t>::try_from(*u).map_err(|_| DeError::range(stringify!($t), v))
                    }
                    Value::Number(Number::NegInt(i)) => {
                        <$t>::try_from(*i).map_err(|_| DeError::range(stringify!($t), v))
                    }
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Number(Number::PosInt(u)) => {
                        <$t>::try_from(*u).map_err(|_| DeError::range(stringify!($t), v))
                    }
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            _ => Err(DeError::expected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// Identity impls so callers can parse or emit a raw data-model tree —
// e.g. to validate a document (duplicate keys, non-finite numbers) before
// committing to a typed decode.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for &T
where
    T: ?Sized,
{
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($len:literal => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::expected(concat!($len, "-element array"), v)),
                }
            }
        }
    };
}

impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some: Option<u64> = Some(7);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u64>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn signed_negatives_roundtrip() {
        let x: i64 = -123_456_789;
        assert_eq!(i64::from_value(&x.to_value()).unwrap(), x);
    }

    #[test]
    fn mismatched_shape_errors() {
        assert!(u32::from_value(&Value::Bool(true)).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(Vec::<u8>::from_value(&Value::String("x".into())).is_err());
    }
}
