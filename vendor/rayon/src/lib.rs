//! Offline vendored stand-in for `rayon`. It implements the small slice of
//! the parallel-iterator API this workspace uses (`par_iter().map(..)` with
//! ordered `collect` and `for_each`) with *real* data parallelism: items
//! are chunked across `std::thread::scope` threads, one per available core.
//!
//! Unlike upstream rayon there is no work-stealing pool — each parallel
//! call spawns its own scoped threads. That costs microseconds per call,
//! which is fine for the per-interval schedule builds and per-point
//! experiment sweeps this workspace parallelizes.

/// The `use rayon::prelude::*` surface.
pub mod prelude {
    pub use crate::{
        FromParallelVec, IntoParallelIterator, IntoParallelRefIterator, ParMap, ParSlice,
    };
}

use std::num::NonZeroUsize;

/// Number of worker threads for a job of `len` items.
fn threads_for(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Runs `f` over `0..len` split into contiguous chunks, one chunk per
/// thread, and returns the per-index outputs in order.
fn parallel_map_indices<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads_for(len);
    if threads <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut out: Vec<Option<T>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    let mut slots: Vec<&mut [Option<T>]> = Vec::with_capacity(threads);
    let mut rest = out.as_mut_slice();
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        slots.push(head);
        rest = tail;
    }
    std::thread::scope(|scope| {
        for (t, slot) in slots.into_iter().enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = t * chunk;
                for (i, cell) in slot.iter_mut().enumerate() {
                    *cell = Some(f(base + i));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("every index was produced"))
        .collect()
}

/// A parallel iterator over `&[T]`.
#[derive(Debug)]
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

/// A mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// Conversion of `&Collection` into a parallel iterator
/// (`rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: 'a;
    /// The parallel iterator type.
    type Iter;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

/// Conversion of an owned collection into a parallel iterator. Provided
/// for API parity; only borrowed iteration is accelerated here.
pub trait IntoParallelIterator {
    /// The item type.
    type Item;
    /// The parallel iterator type.
    type Iter;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn into_par_iter(self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

impl<'a, T> ParSlice<'a, T>
where
    T: Sync,
{
    /// Maps every item through `f` in parallel.
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        parallel_map_indices(self.items.len(), |i| f(&self.items[i]));
    }
}

impl<'a, T, F, U> ParMap<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> U + Sync,
    U: Send,
{
    /// Collects the mapped outputs, preserving input order. Supports the
    /// same short-circuit containers as rayon via [`FromParallelVec`]
    /// (plain `Vec<T>` and `Result<Vec<T>, E>`).
    pub fn collect<C>(self) -> C
    where
        C: FromParallelVec<U>,
    {
        let produced = parallel_map_indices(self.items.len(), |i| (self.f)(&self.items[i]));
        C::from_parallel_vec(produced)
    }
}

/// Containers buildable from an ordered `Vec` of parallel outputs.
pub trait FromParallelVec<T>: Sized {
    /// Builds the container.
    fn from_parallel_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelVec<T> for Vec<T> {
    fn from_parallel_vec(items: Vec<T>) -> Vec<T> {
        items
    }
}

impl<T, E> FromParallelVec<Result<T, E>> for Result<Vec<T>, E> {
    fn from_parallel_vec(items: Vec<Result<T, E>>) -> Result<Vec<T>, E> {
        items.into_iter().collect()
    }
}

impl<T> FromParallelVec<Option<T>> for Option<Vec<T>> {
    fn from_parallel_vec(items: Vec<Option<T>>) -> Option<Vec<T>> {
        items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn result_collect_short_circuits_to_err() {
        let xs: Vec<u64> = (0..100).collect();
        let r: Result<Vec<u64>, String> = xs
            .par_iter()
            .map(|&x| {
                if x == 57 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(r, Err("boom".to_string()));
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let xs: Vec<u64> = (1..=100).collect();
        let sum = AtomicU64::new(0);
        xs.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn empty_input_is_fine() {
        let xs: Vec<u64> = vec![];
        let out: Vec<u64> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn parallelism_actually_engages() {
        // With >1 core, distinct thread ids must appear for a large job.
        let xs: Vec<u64> = (0..10_000).collect();
        let ids: Vec<std::thread::ThreadId> =
            xs.par_iter().map(|_| std::thread::current().id()).collect();
        let uniq: std::collections::HashSet<_> = ids.into_iter().collect();
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        if cores > 1 {
            assert!(uniq.len() > 1, "expected multiple worker threads");
        }
    }
}
