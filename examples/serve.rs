//! Serve: run the auction daemon and talk to it over loopback TCP.
//!
//! ```text
//! cargo run --example serve
//! ```
//!
//! Starts an `mcs-service` daemon with a TCP front-end on an ephemeral
//! loopback port, then plays both sides: a requester submits the same
//! campaign twice (the second answer comes from the schedule cache and
//! is byte-identical), queries the exact price PMF, and finally reads
//! the service's own metrics before a draining shutdown.

use mcs_service::{Request, Response, Service, ServiceConfig, TcpClient, TcpServer};
use mcs_sim::Setting;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Setting-I-proportioned campaign (scaled down so the demo is quick).
    let instance = Setting::one(80).scaled_down(4).generate(42).instance;
    let epsilon = 0.1;

    // Start the daemon: 2 workers over a bounded queue, LRU schedule
    // cache, and a TCP listener on an ephemeral loopback port. The same
    // `Client` handle also works in-process, without the socket.
    let service = Service::start(ServiceConfig::default());
    let tcp = TcpServer::bind(service.client(), "127.0.0.1:0")?;
    println!("serving on {}", tcp.local_addr());

    let mut conn = TcpClient::connect(tcp.local_addr())?;

    // Run the auction twice with the same sampling seed: the first call
    // builds the price schedule, the second hits the cache — and returns
    // the byte-identical outcome, because sampling depends only on the
    // (deterministic) PMF and the caller's seed.
    for attempt in ["cold ", "cached"] {
        let response = conn.call(&Request::RunAuction {
            instance: instance.clone(),
            epsilon,
            seed: 7,
        })?;
        let Response::Outcome(outcome) = response else {
            return Err(format!("unexpected response: {response:?}").into());
        };
        println!(
            "{attempt} auction: price {} with {} winners, total payment {}",
            outcome.price(),
            outcome.winners().len(),
            outcome.total_payment()
        );
    }

    // The exact output distribution, from the same cache entry.
    let Response::Pmf(pmf) = conn.call(&Request::QueryPmf {
        instance: instance.clone(),
        epsilon,
    })?
    else {
        return Err("expected a PMF summary".into());
    };
    let (i, p) = pmf
        .probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty PMF");
    println!(
        "price PMF: {} candidate prices, mode {} (prob {:.3})",
        pmf.prices.len(),
        pmf.prices[i],
        p
    );

    // What the service saw, from its own counters.
    let Response::Metrics(metrics) = conn.call(&Request::Metrics)? else {
        return Err("expected a metrics report".into());
    };
    println!(
        "metrics: {} cache hits / {} misses, {} busy rejections",
        metrics.cache_hits, metrics.cache_misses, metrics.rejected_busy
    );
    for endpoint in &metrics.endpoints {
        if let Some(latency) = &endpoint.latency {
            println!(
                "  {:<18} {} requests, p50 {} µs",
                endpoint.endpoint, endpoint.count, latency.p50_us
            );
        }
    }

    // Draining shutdown: everything accepted is answered first.
    tcp.shutdown();
    service.shutdown();
    Ok(())
}
