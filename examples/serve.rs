//! Serve: run the auction daemon and talk to it over loopback TCP.
//!
//! ```text
//! cargo run --example serve
//! ```
//!
//! Starts an `mcs-service` daemon with a TCP front-end on an ephemeral
//! loopback port, then plays both sides: a requester submits the same
//! campaign twice (the second answer comes from the schedule cache and
//! is byte-identical), queries the exact price PMF, and reads the
//! service's own metrics before a draining shutdown. A second act
//! demonstrates the durable round log: signed bid envelopes, a committed
//! round, a deliberately orphaned one, and the restart that recovers
//! both from the write-ahead log.

use ed25519::{hex_encode, SigningKey};
use mcs_service::{
    BidEnvelope, DurabilityConfig, Request, Response, RosterEntry, RoundSpec, Service,
    ServiceConfig, TcpClient, TcpServer,
};
use mcs_sim::Setting;
use mcs_types::{Bid, Bundle, Price, TaskId, WorkerId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Setting-I-proportioned campaign (scaled down so the demo is quick).
    let instance = Setting::one(80).scaled_down(4).generate(42).instance;
    let epsilon = 0.1;

    // Start the daemon: 2 workers over a bounded queue, LRU schedule
    // cache, and a TCP listener on an ephemeral loopback port. The same
    // `Client` handle also works in-process, without the socket.
    let service = Service::start(ServiceConfig::default());
    let tcp = TcpServer::bind(service.client(), "127.0.0.1:0")?;
    println!("serving on {}", tcp.local_addr());

    let mut conn = TcpClient::connect(tcp.local_addr())?;

    // Run the auction twice with the same sampling seed: the first call
    // builds the price schedule, the second hits the cache — and returns
    // the byte-identical outcome, because sampling depends only on the
    // (deterministic) PMF and the caller's seed.
    for attempt in ["cold ", "cached"] {
        let response = conn.call(&Request::RunAuction {
            instance: instance.clone(),
            epsilon,
            seed: 7,
        })?;
        let Response::Outcome(outcome) = response else {
            return Err(format!("unexpected response: {response:?}").into());
        };
        println!(
            "{attempt} auction: price {} with {} winners, total payment {}",
            outcome.price(),
            outcome.winners().len(),
            outcome.total_payment()
        );
    }

    // The exact output distribution, from the same cache entry.
    let Response::Pmf(pmf) = conn.call(&Request::QueryPmf {
        instance: instance.clone(),
        epsilon,
    })?
    else {
        return Err("expected a PMF summary".into());
    };
    let (i, p) = pmf
        .probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty PMF");
    println!(
        "price PMF: {} candidate prices, mode {} (prob {:.3})",
        pmf.prices.len(),
        pmf.prices[i],
        p
    );

    // What the service saw, from its own counters.
    let Response::Metrics(metrics) = conn.call(&Request::Metrics)? else {
        return Err("expected a metrics report".into());
    };
    println!(
        "metrics: {} cache hits / {} misses, {} busy rejections",
        metrics.cache_hits, metrics.cache_misses, metrics.rejected_busy
    );
    for endpoint in &metrics.endpoints {
        if let Some(latency) = &endpoint.latency {
            println!(
                "  {:<18} {} requests, p50 {} µs",
                endpoint.endpoint, endpoint.count, latency.p50_us
            );
        }
    }

    // Draining shutdown: everything accepted is answered first.
    tcp.shutdown();
    service.shutdown();

    durable_rounds()
}

/// Act two: the durable round lifecycle, crash included.
fn durable_rounds() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("mcs-serve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key_for = |worker: u32| {
        let mut seed = [0u8; 32];
        seed[..4].copy_from_slice(&worker.to_le_bytes());
        seed[31] = 0xD0;
        SigningKey::from_seed(seed)
    };
    let spec = |round_id: u64| RoundSpec {
        round_id,
        num_tasks: 3,
        error_bounds: vec![0.8, 0.8, 0.8],
        price_min: Price::from_f64(1.0),
        price_max: Price::from_f64(30.0),
        price_step: Price::from_f64(1.0),
        cost_min: Price::from_f64(1.0),
        cost_max: Price::from_f64(30.0),
        epsilon: 0.5,
        roster: (0..3)
            .map(|w| RosterEntry {
                worker: WorkerId(w),
                public_key: hex_encode(&key_for(w).verifying_key().to_bytes()),
                skills: vec![0.9, 0.9, 0.9],
            })
            .collect(),
    };
    let config = || ServiceConfig {
        durability: Some(DurabilityConfig::new(dir.clone())),
        ..ServiceConfig::default()
    };

    println!(
        "\n--- durable rounds (write-ahead log in {}) ---",
        dir.display()
    );
    let service = Service::start(config());
    let tcp = TcpServer::bind(service.client(), "127.0.0.1:0")?;
    let mut conn = TcpClient::connect(tcp.local_addr())?;

    // Round 1: open, collect signed bid envelopes, commit.
    conn.call(&Request::OpenRound { spec: spec(1) })?;
    // A forged envelope (fields mutated after signing) is refused and
    // counted, never logged.
    let mut forged = BidEnvelope::sign(
        1,
        WorkerId(0),
        Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(2.0)),
        99,
        u64::MAX,
        &key_for(0),
    );
    forged.nonce = 100;
    if let Response::Rejected { code, .. } = conn.call(&Request::SubmitBid { envelope: forged })? {
        println!("forged envelope rejected: {code}");
    }
    for worker in 0..3u32 {
        let bid = Bid::new(
            Bundle::new(vec![TaskId(worker % 3), TaskId((worker + 1) % 3)]),
            Price::from_f64(2.0 + f64::from(worker)),
        );
        let envelope = BidEnvelope::sign(
            1,
            WorkerId(worker),
            bid,
            u64::from(worker) + 1,
            u64::MAX,
            &key_for(worker),
        );
        let response = conn.call(&Request::SubmitBid { envelope })?;
        let Response::BidAccepted { lsn, .. } = response else {
            return Err(format!("bid refused: {response:?}").into());
        };
        println!("worker {worker} bid admitted (fsync'd as lsn {lsn})");
    }
    let Response::Committed(receipt) = conn.call(&Request::CommitRound {
        round_id: 1,
        seed: 7,
    })?
    else {
        return Err("commit failed".into());
    };
    println!(
        "round 1 committed: price {}, {} winners paid (commit point lsn {})",
        receipt.price,
        receipt.winners.len(),
        receipt.lsn
    );

    // Round 2 is opened and then abandoned: the "crash".
    conn.call(&Request::OpenRound { spec: spec(2) })?;
    tcp.shutdown();
    service.shutdown();

    // Restart: recovery replays the log, settles what was committed,
    // and aborts what was in flight.
    let service = Service::start(config());
    let tcp = TcpServer::bind(service.client(), "127.0.0.1:0")?;
    let mut conn = TcpClient::connect(tcp.local_addr())?;
    let Response::Health(health) = conn.call(&Request::Health)? else {
        return Err("health failed".into());
    };
    println!(
        "recovered: {} live round(s) found, last synced lsn {}, wal {} bytes",
        health.recovered_rounds, health.last_synced_lsn, health.wal_size_bytes
    );
    for round_id in [1u64, 2] {
        let Response::RoundStatus(status) = conn.call(&Request::RoundStatus { round_id })? else {
            return Err("status failed".into());
        };
        println!(
            "round {round_id}: {} (total paid {})",
            status.phase, status.total_paid
        );
    }

    tcp.shutdown();
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
