//! Traffic congestion monitoring: comparing the three mechanisms.
//!
//! A transportation platform labels road links as congested / free-flowing
//! (the VTrack-style workload the paper cites). This example generates a
//! Setting-II-proportioned instance, then prices it with all three
//! mechanisms — exact Optimal, DP-hSRC, and the Baseline — reproducing the
//! Figure 1/2 ordering on a single instance.
//!
//! ```text
//! cargo run --release --example traffic_congestion
//! ```

use dp_mcs::auction::{BaselineAuction, OptimalMechanism};
use dp_mcs::{DpHsrcAuction, ScheduledMechanism, Setting};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 30-worker, 8-link instance keeps the exact solver instant.
    let setting = Setting::two(32).scaled_down(4);
    let generated = setting.generate(7);
    let instance = &generated.instance;
    println!(
        "instance: {} workers, {} road links, eps = {}",
        instance.num_workers(),
        instance.num_tasks(),
        setting.epsilon
    );

    // Exact optimum (branch-and-bound over every candidate price).
    let optimal = OptimalMechanism::new().solve(instance)?;
    println!(
        "\noptimal   : price {}, {} winners, payment {} (exact = {})",
        optimal.price,
        optimal.winners.len(),
        optimal.total_payment(),
        optimal.exact
    );

    // DP-hSRC: the paper's mechanism.
    let dp = DpHsrcAuction::new(setting.epsilon)?.pmf(instance)?;
    println!(
        "dp-hsrc   : E[payment] {:.1} (std {:.1}) over {} feasible prices",
        dp.expected_total_payment(),
        dp.total_payment_std(),
        dp.schedule().len()
    );

    // Baseline: static-score winner selection.
    let base = BaselineAuction::new(setting.epsilon)?.pmf(instance)?;
    println!(
        "baseline  : E[payment] {:.1} (std {:.1})",
        base.expected_total_payment(),
        base.total_payment_std()
    );

    let opt = optimal.total_payment().as_f64();
    println!(
        "\nordering  : optimal {} <= dp-hsrc {:.1} <= baseline {:.1}",
        opt,
        dp.expected_total_payment(),
        base.expected_total_payment()
    );
    println!(
        "gap       : dp-hsrc / optimal = {:.3}, baseline / optimal = {:.3}",
        dp.expected_total_payment() / opt,
        base.expected_total_payment() / opt
    );

    // Winner-set sizes at the cheapest feasible price show where the
    // baseline wastes budget.
    let idx = 0;
    println!(
        "at price {}: dp-hsrc selects {}, baseline selects {}",
        dp.schedule().price(idx),
        dp.schedule().winners(idx).len(),
        base.schedule().winners(idx).len()
    );
    Ok(())
}
