//! Pothole patrol: a geotagging MCS scenario end to end.
//!
//! The paper's motivating application (Eriksson et al.'s Pothole Patrol):
//! the city platform wants to know, for each of 12 segments of a ring
//! road, whether the surface has potholes. Drivers bid on the contiguous
//! stretch of segments along their commute — the bundle itself is
//! location-sensitive, which is exactly why bids deserve differential
//! privacy. This example runs the full platform loop: auction → winners
//! drive and label → weighted aggregation → payment, then shows the
//! privacy bound on a neighbouring bid profile.
//!
//! ```text
//! cargo run --example pothole_patrol
//! ```

use dp_mcs::agg::{generate_labels, weighted_aggregate, Label};
use dp_mcs::auction::privacy;
use dp_mcs::{
    Bid, Bundle, DpHsrcAuction, Instance, Mechanism, Price, ScheduledMechanism, SkillMatrix,
    TaskId, WorkerId,
};
use rand::Rng;

const SEGMENTS: usize = 12;
const DRIVERS: usize = 45;
const EPSILON: f64 = 0.25;

/// A driver's commute covers a contiguous stretch of the ring road
/// (wrapping past the last segment), so coverage is uniform around the
/// loop.
fn commute_bundle<R: Rng>(r: &mut R) -> Bundle {
    let len = r.gen_range(3..=6);
    let start = r.gen_range(0..SEGMENTS);
    Bundle::new(
        (0..len)
            .map(|k| TaskId(((start + k) % SEGMENTS) as u32))
            .collect(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = dp_mcs::num::rng::seeded(18);

    // Drivers: commute bundle, cost proportional to detour length, and a
    // per-segment labelling accuracy depending on their phone mounts.
    let mut bids = Vec::new();
    let mut skills = Vec::new();
    for _ in 0..DRIVERS {
        let bundle = commute_bundle(&mut rng);
        let cost = Price::from_f64(8.0 + 1.5 * bundle.len() as f64 + rng.gen_range(0.0..4.0));
        bids.push(Bid::new(bundle, Price::from_tenths(cost.tenths())));
        let quality: f64 = rng.gen_range(0.7..0.95);
        skills.push(vec![quality; SEGMENTS]);
    }
    let instance = Instance::builder(SEGMENTS)
        .bids(bids)
        .skills(SkillMatrix::from_rows(skills)?)
        .uniform_error_bound(0.25)
        .price_grid_f64(12.0, 25.0, 0.1)
        .cost_range(Price::from_f64(8.0), Price::from_f64(25.0))
        .build()?;

    // 1. Auction.
    let auction = DpHsrcAuction::new(EPSILON)?;
    let outcome = auction.run(&instance, &mut rng)?;
    println!(
        "auction: price {}, {} of {DRIVERS} drivers win, total payment {}",
        outcome.price(),
        outcome.winners().len(),
        outcome.total_payment()
    );

    // 2. Ground truth (unknown to the platform): which segments really
    //    have potholes.
    let truth: Vec<Label> = (0..SEGMENTS)
        .map(|_| {
            if rng.gen_bool(0.3) {
                Label::Pos
            } else {
                Label::Neg
            }
        })
        .collect();

    // 3. Winners drive their commutes and report labels.
    let assignment: Vec<(WorkerId, Bundle)> = outcome
        .winners()
        .iter()
        .map(|&w| (w, instance.bids().bid(w).bundle().clone()))
        .collect();
    let labels = generate_labels(instance.skills(), &truth, &assignment, &mut rng);

    // 4. Weighted aggregation (Lemma 1) recovers the segment states.
    let estimates = weighted_aggregate(&labels, instance.skills(), SEGMENTS);
    let mut correct = 0;
    println!("\nsegment  truth  estimate  reports");
    for j in 0..SEGMENTS {
        let est = estimates[j].expect("feasibility guarantees coverage");
        if est == truth[j] {
            correct += 1;
        }
        println!(
            "  {:>4}    {:>3}      {:>3}      {:>3}",
            j,
            truth[j].to_string(),
            est.to_string(),
            labels.for_task(TaskId(j as u32)).len()
        );
    }
    println!("aggregation accuracy: {correct}/{SEGMENTS}");

    // 5. Privacy: driver 0 reroutes her commute (a location change!) —
    //    the payment distribution barely moves.
    let rerouted = instance.with_bid(
        WorkerId(0),
        Bid::new(commute_bundle(&mut rng), Price::from_f64(15.0)),
    )?;
    let p = auction.pmf(&instance)?;
    let q = auction.pmf(&rerouted)?;
    match privacy::dp_log_ratio(&p, &q) {
        Some(ratio) => println!(
            "\nprivacy: max |ln(P/P')| after rerouting driver 0 = {ratio:.4} (epsilon = {EPSILON})"
        ),
        None => println!("\nprivacy: reroute shifted the feasible price set (counted separately)"),
    }
    Ok(())
}
