//! Graceful degradation under worker dropout.
//!
//! Sweeps the no-show rate from 0% to 60% and, at each level, runs
//! fault-tolerant rounds (`run_round_resilient`) over many seeds. The
//! table shows how the platform's accuracy, spend, backfill activity and
//! *achieved* error bounds `δ̂_j = exp(−C_j/2)` degrade as more auction
//! winners silently vanish — and how much of the loss the bounded backfill
//! re-auctions claw back.
//!
//! ```text
//! cargo run --release --example dropout_sweep
//! ```

use dp_mcs::auction::DpHsrcAuction;
use dp_mcs::num::rng;
use dp_mcs::sim::faults::FaultPlan;
use dp_mcs::sim::platform::{run_round_resilient, ResilienceConfig};
use dp_mcs::Setting;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generated = Setting::one(80).scaled_down(2).generate(42);
    let instance = &generated.instance;
    let auction = DpHsrcAuction::new(0.1)?;
    let config = ResilienceConfig::default();
    let rounds = 40u64;

    println!(
        "{:>8} {:>9} {:>9} {:>10} {:>10} {:>11} {:>10}",
        "no-show", "accuracy", "paid", "backfills", "recovered", "mean δ̂", "shortfalls"
    );
    for percent in (0..=60).step_by(10) {
        let rate = percent as f64 / 100.0;
        let mut accuracy = 0.0;
        let mut paid = 0.0;
        let mut attempts = 0usize;
        let mut recovered = 0usize;
        let mut mean_delta_hat = 0.0;
        let mut shortfalls = 0usize;
        for seed in 0..rounds {
            let plan = FaultPlan::no_show(rate, 1000 + seed);
            let mut r = rng::seeded(seed);
            let report =
                run_round_resilient(instance, &generated.types, &auction, &plan, &config, &mut r)?;
            accuracy += report.round.accuracy();
            paid += report.round.total_paid.as_f64();
            attempts += report.backfill_attempts;
            // A round "recovered" if faults struck but no shortfall
            // survived to the report.
            if report.backfill_attempts > 0 && !report.degraded() {
                recovered += 1;
            }
            mean_delta_hat +=
                report.achieved_deltas.iter().sum::<f64>() / report.achieved_deltas.len() as f64;
            shortfalls += report.shortfalls.len();
        }
        let n = rounds as f64;
        println!(
            "{:>7}% {:>9.3} {:>9.1} {:>10.2} {:>10} {:>11.4} {:>10.2}",
            percent,
            accuracy / n,
            paid / n,
            attempts as f64 / n,
            recovered,
            mean_delta_hat / n,
            shortfalls as f64 / n
        );
    }
    Ok(())
}
