//! Competitive ratio of the streaming stage-threshold mechanism.
//!
//! Sweeps the online auction over the paper's three evaluation shapes,
//! three arrival densities (workers per tick — lower horizons pack the
//! same pool into denser bursts) and three observation-prefix fractions,
//! averaging the competitive ratio `payment_online / payment_offline`
//! over seeded rounds. Rounds where the admitted set fails to cover (the
//! sample ate too much of the pool, or the posted price was unlucky) are
//! reported in the `cover` column instead of being silently dropped.
//!
//! The table this prints is the source of the EXPERIMENTS.md
//! "Streaming auctions" section.
//!
//! ```text
//! cargo run --release --example streaming_auction
//! ```

use dp_mcs::sim::online::{ArrivalTimeline, OnlineMechanism, StageThreshold, TimelineConfig};
use dp_mcs::Setting;

fn main() {
    let rounds = 20u64;
    let shapes: [(&str, Setting); 3] = [
        ("one(80)", Setting::one(80).scaled_down(2)),
        ("two(40)", Setting::two(40).scaled_down(2)),
        ("three(80)", Setting::three(80).scaled_down(2)),
    ];
    let horizons = [2_000u64, 500, 100];
    let fractions = [0.15f64, 0.25, 0.40];

    println!(
        "{:<10} {:>8} {:>8} {:>7} {:>7} {:>7} {:>7}",
        "shape", "horizon", "density", "prefix", "ratio", "cover", "greedy"
    );
    for (name, setting) in &shapes {
        for &horizon in &horizons {
            for &fraction in &fractions {
                let config = TimelineConfig {
                    horizon,
                    mean_stay: horizon as f64 / 4.0,
                };
                let mut ratio_sum = 0.0;
                let mut ratio_n = 0u64;
                let mut covered = 0u64;
                let mut greedy_sum = 0.0;
                let mut greedy_n = 0u64;
                let mut density = 0.0;
                for seed in 0..rounds {
                    let instance = setting.generate(1_000 + seed).instance;
                    let timeline = ArrivalTimeline::generate(&instance, &config, seed);
                    density = config.density(instance.num_workers());
                    let report = StageThreshold::new()
                        .sample_fraction(fraction)
                        .epsilon(0.5)
                        .run(&instance, &timeline, seed)
                        .expect("online round failed");
                    if report.covered {
                        covered += 1;
                    }
                    if let Some(r) = report.competitive_ratio {
                        ratio_sum += r;
                        ratio_n += 1;
                    }
                    let greedy = dp_mcs::sim::online::GreedyBaseline::new()
                        .run(&instance, &timeline, seed)
                        .expect("greedy round failed");
                    if let Some(r) = greedy.competitive_ratio {
                        greedy_sum += r;
                        greedy_n += 1;
                    }
                }
                let mean = |sum: f64, n: u64| {
                    if n == 0 {
                        f64::NAN
                    } else {
                        sum / n as f64
                    }
                };
                println!(
                    "{:<10} {:>8} {:>8.2} {:>6.0}% {:>7.2} {:>6.0}% {:>7.2}",
                    name,
                    horizon,
                    density,
                    fraction * 100.0,
                    mean(ratio_sum, ratio_n),
                    100.0 * covered as f64 / rounds as f64,
                    mean(greedy_sum, greedy_n),
                );
            }
        }
    }
}
