//! The honest-but-curious attack, made concrete.
//!
//! A curious worker watches the clearing price of repeated auctions and
//! tries to decide between two hypotheses about a colleague's bid (did she
//! bid cheap or expensive?). The optimal attack is the likelihood-ratio
//! test over the mechanism's exact output distributions — and differential
//! privacy caps the evidence it can gather at `ε` per round.
//!
//! ```text
//! cargo run --release --example adversary_inference
//! ```

use dp_mcs::sim::adversary::{expected_evidence_per_round, likelihood_ratio_attack};
use dp_mcs::sim::neighbour::{price_push_neighbour, PricePush};
use dp_mcs::{DpHsrcAuction, Instance, ScheduledMechanism, Setting, WorkerId};

/// Finds a target worker whose price push to c_max changes the payment
/// distribution without shifting the feasible price set (pushing a
/// load-bearing cheap worker would alter the support, which the paper's
/// fixed-`P` analysis excludes).
fn pick_target(instance: &Instance) -> Option<WorkerId> {
    let probe = DpHsrcAuction::new(1.0).ok()?;
    let base = probe.pmf(instance).ok()?;
    for i in 0..instance.num_workers() {
        let w = WorkerId(i as u32);
        let Ok(alt) = price_push_neighbour(instance, w, PricePush::ToMax) else {
            continue;
        };
        let Ok(pmf_b) = probe.pmf(&alt) else { continue };
        if base.schedule().prices() == pmf_b.schedule().prices() && base.probs() != pmf_b.probs() {
            return Some(w);
        }
    }
    None
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setting = Setting::one(80).scaled_down(2);
    let generated = setting.generate(5);
    let instance = &generated.instance;
    let target = pick_target(instance).expect("some worker is informative");

    println!(
        "target worker {target}: true bid price {}",
        instance.bids().bid(target).price()
    );

    for eps in [0.1, 1.0, 10.0] {
        let auction = DpHsrcAuction::new(eps)?;
        // Hypothesis A: the profile as-is. Hypothesis B: the target bid at
        // the cost ceiling instead.
        let pmf_a = auction.pmf(instance)?;
        let alt = price_push_neighbour(instance, target, PricePush::ToMax)?;
        let pmf_b = auction.pmf(&alt)?;
        if pmf_a.schedule().prices() != pmf_b.schedule().prices() {
            println!("eps {eps}: hypotheses have different supports — skipped");
            continue;
        }

        let per_round =
            expected_evidence_per_round(&pmf_a, &pmf_b).expect("supports checked above");
        let mut rng = dp_mcs::num::rng::seeded(99);
        let rounds = 200;
        let outcome = likelihood_ratio_attack(&pmf_a, &pmf_b, eps, rounds, &mut rng);
        println!(
            "eps {:>5}: E[evidence]/round = {:.6} (= KL leakage), after {} rounds \
             LLR = {:+.4} (cap {:.1}), posterior from 50/50 prior = {:.3}",
            eps,
            per_round,
            outcome.rounds_used,
            outcome.log_likelihood_ratio,
            outcome.bound,
            outcome.posterior_a(0.5),
        );
        assert!(outcome.within_bound());
    }

    println!(
        "\nAt eps = 0.1 the adversary stays at her 50/50 prior even after 200\n\
         rounds; at eps = 10 the same observations visibly shift her posterior —\n\
         the Figure 5 trade-off, experienced from the attacker's side."
    );
    Ok(())
}
