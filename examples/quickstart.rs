//! Quickstart: run one DP-hSRC auction on a hand-built instance.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dp_mcs::{
    Bid, Bundle, DpHsrcAuction, Instance, Mechanism, Price, ScheduledMechanism, SkillMatrix,
    TaskId, WorkerId,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two binary sensing tasks; four workers bid bundles and prices.
    let bids = vec![
        Bid::new(
            Bundle::new(vec![TaskId(0), TaskId(1)]),
            Price::from_f64(12.0),
        ),
        Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(11.0)),
        Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(14.0)),
        Bid::new(
            Bundle::new(vec![TaskId(0), TaskId(1)]),
            Price::from_f64(18.0),
        ),
    ];
    // The platform's record of each worker's per-task accuracy.
    let skills = SkillMatrix::from_rows(vec![
        vec![0.90, 0.90],
        vec![0.90, 0.50],
        vec![0.50, 0.95],
        vec![0.90, 0.90],
    ])?;
    let instance = Instance::builder(2)
        .bids(bids)
        .skills(skills)
        .uniform_error_bound(0.4) // Pr[aggregate wrong] ≤ 0.4 per task
        .price_grid_f64(10.0, 20.0, 0.5)
        .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
        .build()?;

    // ε = 0.1: strong bid privacy; the price is drawn from the exponential
    // mechanism over per-price greedy winner sets.
    let auction = DpHsrcAuction::new(0.1)?;
    let mut rng = dp_mcs::num::rng::seeded(42);
    let outcome = auction.run(&instance, &mut rng)?;

    println!("clearing price : {}", outcome.price());
    println!(
        "winners        : {:?}",
        outcome.winners().iter().map(|w| w.0).collect::<Vec<_>>()
    );
    println!("total payment  : {}", outcome.total_payment());

    // The exact output distribution is available for analysis.
    let pmf = auction.pmf(&instance)?;
    println!(
        "expected total payment over the price lottery: {:.2}",
        pmf.expected_total_payment()
    );
    for (i, p) in pmf.schedule().prices().iter().enumerate() {
        println!(
            "  price {:>5}  prob {:.3}  winners {}",
            p.to_string(),
            pmf.probs()[i],
            pmf.schedule().winners(i).len()
        );
    }

    // Winners are paid the clearing price; losers get nothing.
    for i in 0..instance.num_workers() {
        let w = WorkerId(i as u32);
        println!("payment to w{i}: {}", outcome.payment_to(w));
    }
    Ok(())
}
