//! A multi-round sensing campaign with learned skills.
//!
//! Round 1 runs with the platform's prior skill record; after every round
//! the platform refits worker accuracies by EM from all labels collected
//! so far and runs the next auction on the *estimated* skills — the full
//! lifecycle the paper's §III-A sketches but does not simulate.
//!
//! ```text
//! cargo run --release --example campaign
//! ```

use dp_mcs::sim::platform::Campaign;
use dp_mcs::Setting;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Per-worker skills (θ_i uniform across tasks, drawn from
    // [0.55, 0.95]) so that learning a scalar accuracy per worker is a
    // well-specified problem — with the canonical Table I per-(i,j) skills
    // centred at 0.5, a scalar estimate carries almost no coverage
    // information and the learned campaign would silently fall back to
    // the prior every round.
    let mut setting = Setting::one(80).scaled_down(2);
    setting.worker_uniform_skills = true;
    setting.theta_range = (0.55, 0.95);
    let generated = setting.generate(33);

    for (label, reestimate) in [("oracle θ", false), ("learned θ", true)] {
        let campaign = Campaign {
            epsilon: 0.1,
            rounds: 6,
            reestimate_skills: reestimate,
        };
        let mut r = dp_mcs::num::rng::seeded(7);
        let report = campaign.run(&generated.instance, &generated.types, &mut r)?;
        println!("--- campaign with {label} ---");
        for (i, round) in report.rounds.iter().enumerate() {
            println!(
                "round {i}: price {}, {} winners, paid {}, accuracy {:.2}",
                round.outcome.price(),
                round.outcome.winners().len(),
                round.total_paid,
                round.accuracy()
            );
        }
        println!(
            "total spend {}, mean accuracy {:.3}{}{}",
            report.total_spend,
            report.mean_accuracy,
            report
                .final_skill_error
                .map(|e| format!(", final skill-estimate error {e:.3}"))
                .unwrap_or_default(),
            if report.fallback_rounds > 0 {
                format!(" ({} fallback rounds)", report.fallback_rounds)
            } else {
                String::new()
            }
        );
        println!();
    }
    Ok(())
}
