//! Privacy–payment trade-off: a miniature Figure 5.
//!
//! Sweeps the privacy budget ε and prints the platform's exact expected
//! payment next to the KL privacy leakage against resampled neighbouring
//! bid profiles — small ε buys privacy at the cost of payment.
//!
//! ```text
//! cargo run --release --example privacy_tradeoff
//! ```

use dp_mcs::sim::experiments::tradeoff_sweep;
use dp_mcs::Setting;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setting = Setting::one(80).scaled_down(2);
    let epsilons = [0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 45.0, 100.0];
    let rows = tradeoff_sweep(&setting, &epsilons, 8, 2016)?;

    println!("epsilon   E[payment]   avg KL leakage   max |ln P/P'|");
    for row in &rows {
        println!(
            "{:>7}   {:>10.1}   {:>14.6}   {:>13.6}",
            row.epsilon, row.avg_payment, row.avg_leakage, row.max_log_ratio
        );
    }

    let first = rows.first().expect("nonempty sweep");
    let last = rows.last().expect("nonempty sweep");
    println!(
        "\nraising eps {}x cut the payment by {:.1} but multiplied leakage by {:.0}x",
        last.epsilon / first.epsilon,
        first.avg_payment - last.avg_payment,
        if first.avg_leakage > 0.0 {
            last.avg_leakage / first.avg_leakage
        } else {
            f64::INFINITY
        }
    );
    println!("(Theorem 2 bound honoured at every eps: max |ln P/P'| <= eps)");
    Ok(())
}
