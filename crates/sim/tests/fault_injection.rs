//! Property-based tests of the fault-tolerant round engine.
//!
//! For arbitrary fault plans, seeds and generated instances:
//! `run_round_resilient` must never panic, must never pay more than the
//! clearing price times the number of workers who delivered in each phase,
//! and must report achieved error bounds `δ̂_j` consistent with the
//! coverage its surviving labels actually provide. Under an empty plan it
//! must reproduce `run_round` byte for byte.

use proptest::prelude::*;
use rand::Rng;

use mcs_agg::achieved_coverage;
use mcs_num::rng;
use mcs_sim::faults::{achieved_delta, FaultPlan};
use mcs_sim::platform::{run_round, run_round_resilient, DegradedRoundReport, ResilienceConfig};
use mcs_sim::Setting;
use mcs_types::{Instance, Price, TaskId, TrueType, WorkerId};

use mcs_auction::DpHsrcAuction;

fn generated(instance_seed: u64) -> (Instance, Vec<TrueType>) {
    let g = Setting::one(80).scaled_down(4).generate(instance_seed);
    (g.instance, g.types)
}

/// Every invariant the engine promises, checked against one report.
fn check_report(instance: &Instance, types: &[TrueType], report: &DegradedRoundReport) {
    let deadline = ResilienceConfig::default().deadline;

    // -- Payments: exactly the full-bundle deliverers of each phase, at
    //    that phase's clearing price; never more.
    let mut expected_paid: Vec<(WorkerId, Price)> = report
        .fates
        .iter()
        .filter(|(_, f)| f.delivered_in_full(deadline))
        .map(|(w, _)| (*w, report.round.outcome.price()))
        .collect();
    for bf in &report.backfill {
        expected_paid.extend(
            bf.fates
                .iter()
                .filter(|(_, f)| f.delivered_in_full(deadline))
                .map(|(w, _)| (*w, bf.outcome.price())),
        );
    }
    assert_eq!(report.paid, expected_paid);
    let ceiling: Price = report.round.outcome.price() * report.fates.len()
        + report
            .backfill
            .iter()
            .map(|bf| bf.outcome.price() * bf.fates.len())
            .sum::<Price>();
    let total: Price = report.paid.iter().map(|&(_, p)| p).sum();
    assert_eq!(report.round.total_paid, total);
    assert!(report.round.total_paid <= ceiling);

    // -- Utilities: payment minus true cost for the paid, zero otherwise.
    for (i, (utility, true_type)) in report.round.utilities.iter().zip(types).enumerate() {
        let w = WorkerId(i as u32);
        match report.paid.iter().find(|(pw, _)| *pw == w) {
            Some(&(_, amount)) => assert_eq!(*utility, amount - true_type.cost()),
            None => assert_eq!(*utility, Price::ZERO),
        }
    }

    // -- Achieved bounds: δ̂_j = exp(−C_j/2) with C_j recomputed from the
    //    labels the report says survived.
    let cover = instance.coverage_problem();
    for j in 0..instance.num_tasks() {
        let t = TaskId(j as u32);
        let c = achieved_coverage(&report.round.labels, instance.skills(), t);
        assert!((report.achieved_coverage[j] - c).abs() < 1e-12);
        assert!((report.achieved_deltas[j] - achieved_delta(c)).abs() < 1e-12);
        let short = report.shortfalls.iter().find(|s| s.task == t);
        if c < cover.requirement(t) - 1e-9 {
            let s = short.expect("under-covered task must be reported");
            assert!((s.achieved - c).abs() < 1e-12);
            assert!((s.required - cover.requirement(t)).abs() < 1e-12);
        } else {
            assert!(short.is_none(), "covered task {t} reported as shortfall");
        }
    }
    assert_eq!(report.degraded(), !report.shortfalls.is_empty());
    assert!(report.backfill.len() <= report.backfill_attempts);
    assert!(report.backfill_attempts <= ResilienceConfig::default().max_backfill_rounds);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary plans over arbitrary instances: no panic, and every
    /// reported quantity is internally consistent.
    #[test]
    fn prop_resilient_round_is_sound(
        instance_seed in 0u64..12,
        round_seed in 0u64..1000,
        fault_seed in 0u64..1000,
        no_show in 0.0f64..0.4,
        partial in 0.0f64..0.25,
        straggle in 0.0f64..0.2,
        flip in 0.0f64..0.15,
        dropout_fraction in 0.05f64..0.95,
        delay_hi in 1u32..200,
    ) {
        let (instance, types) = generated(instance_seed);
        let plan = FaultPlan {
            no_show_rate: no_show,
            partial_dropout_rate: partial,
            straggler_rate: straggle,
            flip_rate: flip,
            dropout_fraction,
            flip_fraction: dropout_fraction,
            straggler_delay: (1, delay_hi),
            seed: fault_seed,
        };
        let auction = DpHsrcAuction::new(0.1).expect("valid epsilon");
        let mut r = rng::seeded(round_seed);
        let report = run_round_resilient(
            &instance,
            &types,
            &auction,
            &plan,
            &ResilienceConfig::default(),
            &mut r,
        )
        .expect("generated instances are feasible");
        check_report(&instance, &types, &report);
    }

    /// The empty plan is the identity: same report as `run_round` and the
    /// same amount of randomness consumed.
    #[test]
    fn prop_empty_plan_matches_run_round(
        instance_seed in 0u64..12,
        round_seed in 0u64..1000,
    ) {
        let (instance, types) = generated(instance_seed);
        let auction = DpHsrcAuction::new(0.1).expect("valid epsilon");
        let mut r_plain = rng::seeded(round_seed);
        let mut r_resilient = rng::seeded(round_seed);
        let plain = run_round(&instance, &types, &auction, &mut r_plain)
            .expect("generated instances are feasible");
        let report = run_round_resilient(
            &instance,
            &types,
            &auction,
            &FaultPlan::none(),
            &ResilienceConfig::default(),
            &mut r_resilient,
        )
        .expect("generated instances are feasible");
        prop_assert_eq!(&report.round, &plain);
        prop_assert!(report.backfill.is_empty());
        prop_assert_eq!(report.backfill_attempts, 0);
        prop_assert!(!report.degraded());
        prop_assert_eq!(r_plain.gen::<u64>(), r_resilient.gen::<u64>());
    }

    /// Extreme dropout still terminates and degrades with typed
    /// shortfalls rather than panicking — even with zero backfill budget.
    #[test]
    fn prop_heavy_dropout_degrades_gracefully(
        instance_seed in 0u64..8,
        round_seed in 0u64..500,
        no_show in 0.7f64..1.0,
        budget in 0usize..4,
    ) {
        let (instance, types) = generated(instance_seed);
        let auction = DpHsrcAuction::new(0.1).expect("valid epsilon");
        let config = ResilienceConfig { deadline: 60, max_backfill_rounds: budget };
        let mut r = rng::seeded(round_seed);
        let report = run_round_resilient(
            &instance,
            &types,
            &auction,
            &FaultPlan::no_show(no_show, round_seed ^ 0xdead),
            &config,
            &mut r,
        )
        .expect("generated instances are feasible");
        prop_assert!(report.backfill_attempts <= budget);
        for s in &report.shortfalls {
            prop_assert!(s.achieved < s.required);
        }
        // Accuracy stays a well-defined fraction even with missing
        // estimates.
        let acc = report.round.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
    }
}
