//! Property-based tests of the fault-tolerant round engine.
//!
//! For arbitrary fault plans, seeds and generated instances:
//! `run_round_resilient` must never panic, must never pay more than the
//! clearing price times the number of workers who delivered in each phase,
//! and must report achieved error bounds `δ̂_j` consistent with the
//! coverage its surviving labels actually provide. Under an empty plan it
//! must reproduce `run_round` byte for byte.

use proptest::prelude::*;
use rand::Rng;

use mcs_agg::achieved_coverage;
use mcs_num::rng;
use mcs_sim::faults::{achieved_delta, FaultPlan};
use mcs_sim::platform::{run_round, run_round_resilient, DegradedRoundReport, ResilienceConfig};
use mcs_sim::Setting;
use mcs_types::{Instance, Price, TaskId, TrueType, WorkerId};

use mcs_auction::DpHsrcAuction;

fn generated(instance_seed: u64) -> (Instance, Vec<TrueType>) {
    let g = Setting::one(80).scaled_down(4).generate(instance_seed);
    (g.instance, g.types)
}

/// Every invariant the engine promises, checked against one report.
fn check_report(instance: &Instance, types: &[TrueType], report: &DegradedRoundReport) {
    let deadline = ResilienceConfig::default().deadline;

    // -- Payments: exactly the full-bundle deliverers of each phase, at
    //    that phase's clearing price; never more.
    let mut expected_paid: Vec<(WorkerId, Price)> = report
        .fates
        .iter()
        .filter(|(_, f)| f.delivered_in_full(deadline))
        .map(|(w, _)| (*w, report.round.outcome.price()))
        .collect();
    for bf in &report.backfill {
        expected_paid.extend(
            bf.fates
                .iter()
                .filter(|(_, f)| f.delivered_in_full(deadline))
                .map(|(w, _)| (*w, bf.outcome.price())),
        );
    }
    assert_eq!(report.paid, expected_paid);
    let ceiling: Price = report.round.outcome.price() * report.fates.len()
        + report
            .backfill
            .iter()
            .map(|bf| bf.outcome.price() * bf.fates.len())
            .sum::<Price>();
    let total: Price = report.paid.iter().map(|&(_, p)| p).sum();
    assert_eq!(report.round.total_paid, total);
    assert!(report.round.total_paid <= ceiling);

    // -- Utilities: payment minus true cost for the paid, zero otherwise.
    for (i, (utility, true_type)) in report.round.utilities.iter().zip(types).enumerate() {
        let w = WorkerId(i as u32);
        match report.paid.iter().find(|(pw, _)| *pw == w) {
            Some(&(_, amount)) => assert_eq!(*utility, amount - true_type.cost()),
            None => assert_eq!(*utility, Price::ZERO),
        }
    }

    // -- Achieved bounds: δ̂_j = exp(−C_j/2) with C_j recomputed from the
    //    labels the report says survived.
    let cover = instance.coverage_problem();
    for j in 0..instance.num_tasks() {
        let t = TaskId(j as u32);
        let c = achieved_coverage(&report.round.labels, instance.skills(), t);
        assert!((report.achieved_coverage[j] - c).abs() < 1e-12);
        assert!((report.achieved_deltas[j] - achieved_delta(c)).abs() < 1e-12);
        let short = report.shortfalls.iter().find(|s| s.task == t);
        if c < cover.requirement(t) - 1e-9 {
            let s = short.expect("under-covered task must be reported");
            assert!((s.achieved - c).abs() < 1e-12);
            assert!((s.required - cover.requirement(t)).abs() < 1e-12);
        } else {
            assert!(short.is_none(), "covered task {t} reported as shortfall");
        }
    }
    assert_eq!(report.degraded(), !report.shortfalls.is_empty());
    assert!(report.backfill.len() <= report.backfill_attempts);
    assert!(report.backfill_attempts <= ResilienceConfig::default().max_backfill_rounds);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary plans over arbitrary instances: no panic, and every
    /// reported quantity is internally consistent.
    #[test]
    fn prop_resilient_round_is_sound(
        instance_seed in 0u64..12,
        round_seed in 0u64..1000,
        fault_seed in 0u64..1000,
        no_show in 0.0f64..0.4,
        partial in 0.0f64..0.25,
        straggle in 0.0f64..0.2,
        flip in 0.0f64..0.15,
        dropout_fraction in 0.05f64..0.95,
        delay_hi in 1u32..200,
    ) {
        let (instance, types) = generated(instance_seed);
        let plan = FaultPlan {
            no_show_rate: no_show,
            partial_dropout_rate: partial,
            straggler_rate: straggle,
            flip_rate: flip,
            dropout_fraction,
            flip_fraction: dropout_fraction,
            straggler_delay: (1, delay_hi),
            seed: fault_seed,
        };
        let auction = DpHsrcAuction::new(0.1).expect("valid epsilon");
        let mut r = rng::seeded(round_seed);
        let report = run_round_resilient(
            &instance,
            &types,
            &auction,
            &plan,
            &ResilienceConfig::default(),
            &mut r,
        )
        .expect("generated instances are feasible");
        check_report(&instance, &types, &report);
    }

    /// The empty plan is the identity: same report as `run_round` and the
    /// same amount of randomness consumed.
    #[test]
    fn prop_empty_plan_matches_run_round(
        instance_seed in 0u64..12,
        round_seed in 0u64..1000,
    ) {
        let (instance, types) = generated(instance_seed);
        let auction = DpHsrcAuction::new(0.1).expect("valid epsilon");
        let mut r_plain = rng::seeded(round_seed);
        let mut r_resilient = rng::seeded(round_seed);
        let plain = run_round(&instance, &types, &auction, &mut r_plain)
            .expect("generated instances are feasible");
        let report = run_round_resilient(
            &instance,
            &types,
            &auction,
            &FaultPlan::none(),
            &ResilienceConfig::default(),
            &mut r_resilient,
        )
        .expect("generated instances are feasible");
        prop_assert_eq!(&report.round, &plain);
        prop_assert!(report.backfill.is_empty());
        prop_assert_eq!(report.backfill_attempts, 0);
        prop_assert!(!report.degraded());
        prop_assert_eq!(r_plain.gen::<u64>(), r_resilient.gen::<u64>());
    }

    /// Extreme dropout still terminates and degrades with typed
    /// shortfalls rather than panicking — even with zero backfill budget.
    #[test]
    fn prop_heavy_dropout_degrades_gracefully(
        instance_seed in 0u64..8,
        round_seed in 0u64..500,
        no_show in 0.7f64..1.0,
        budget in 0usize..4,
    ) {
        let (instance, types) = generated(instance_seed);
        let auction = DpHsrcAuction::new(0.1).expect("valid epsilon");
        let config = ResilienceConfig { deadline: 60, max_backfill_rounds: budget };
        let mut r = rng::seeded(round_seed);
        let report = run_round_resilient(
            &instance,
            &types,
            &auction,
            &FaultPlan::no_show(no_show, round_seed ^ 0xdead),
            &config,
            &mut r,
        )
        .expect("generated instances are feasible");
        prop_assert!(report.backfill_attempts <= budget);
        for s in &report.shortfalls {
            prop_assert!(s.achieved < s.required);
        }
        // Accuracy stays a well-defined fraction even with missing
        // estimates.
        let acc = report.round.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
    }
}

// ---------------------------------------------------------------------------
// Uncertain tasks: sampled non-completions must flow through the same
// fate/payment/coverage accounting as injected dropouts.
// ---------------------------------------------------------------------------

use mcs_sim::faults::WorkerFate;
use mcs_types::{BernoulliCompletion, CompletionModel};

/// Attach a Bernoulli completion model (uniform probability `p`) to a
/// generated instance, deriving each task's shortfall budget `gamma_j` from
/// its pool headroom so the inflated quota `R_j` stays attainable:
/// with `M_j = 0.97 * p * A_j - Q_j` the Chernoff quota at
/// `L = M^2 / (2 (M + Q))` exactly exhausts the discounted pool, so
/// `L_j = 0.9 * L_max` leaves a safety margin.
fn uncertain_twin(instance: &Instance, p: f64) -> Instance {
    let sparse = instance.sparse_coverage();
    let mut pool = vec![0.0f64; instance.num_tasks()];
    for w in 0..instance.num_workers() {
        for (t, q) in sparse.row(w) {
            pool[t] += q;
        }
    }
    let cover = instance.coverage_problem();
    let gammas: Vec<f64> = (0..instance.num_tasks())
        .map(|j| {
            let q = cover.requirement(TaskId(j as u32));
            let m = 0.97 * p * pool[j] - q;
            assert!(m > 0.0, "task {j} has no headroom for quota inflation");
            let l = 0.9 * m * m / (2.0 * (m + q));
            (-l).exp().clamp(1e-6, 1.0 - 1e-6)
        })
        .collect();
    let rows = (0..instance.num_workers())
        .map(|_| {
            (0..instance.num_tasks())
                .map(|j| (TaskId(j as u32), p))
                .collect()
        })
        .collect();
    let model = CompletionModel::Bernoulli(BernoulliCompletion::new(rows, gammas));
    instance
        .with_completion(model)
        .expect("uniform completion model is valid")
}

/// Seeded end-to-end check: with no injected faults at all, uncertain tasks
/// alone demote fates, withhold payment, and appear in the shortfall report
/// exactly like no-shows would.
#[test]
fn sampled_non_completions_count_like_no_shows() {
    let g = Setting::one(80).generate(0);
    let (instance, types) = (g.instance, g.types);
    let uncertain = uncertain_twin(&instance, 0.93);
    let auction = DpHsrcAuction::new(0.1).expect("valid epsilon");
    let plan = FaultPlan {
        seed: 11,
        ..FaultPlan::none()
    };
    let config = ResilienceConfig::default();

    let mut r = rng::seeded(5);
    let report = run_round_resilient(&uncertain, &types, &auction, &plan, &config, &mut r)
        .expect("headroom-derived gammas keep the instance feasible");

    // Every generic invariant holds against the *inflated* requirements.
    check_report(&uncertain, &types, &report);

    // The pinned seed samples real failures, and none of those workers is
    // paid for phase 0.
    let failed: Vec<WorkerId> = report
        .fates
        .iter()
        .filter(|(_, f)| !f.delivered_in_full(config.deadline))
        .map(|(w, _)| *w)
        .collect();
    assert!(
        !failed.is_empty(),
        "pinned seed must sample at least one non-completion"
    );
    // Completion-sampled failures are workers who *showed up* and failed:
    // with no injected absences in the plan, no fate may read as NoShow.
    assert!(
        report.fates.iter().all(|(_, f)| f.showed_up()),
        "completion sampling must not masquerade as absence: {:?}",
        report.fates
    );
    let phase0_paid: Vec<WorkerId> = report
        .paid
        .iter()
        .filter(|(_, price)| *price == report.round.outcome.price())
        .map(|(w, _)| *w)
        .collect();
    for w in &failed {
        assert!(
            !phase0_paid.contains(w),
            "worker {w} failed a task but was paid for phase 0"
        );
    }

    // Labels from failed tasks never reach aggregation: a NoShow worker
    // contributes nothing, a Partial worker nothing for its dropped tasks.
    for (w, fate) in &report.fates {
        match fate {
            WorkerFate::NoShow | WorkerFate::ShowedButFailed => {
                assert!(
                    report.round.labels.iter().all(|obs| obs.worker != *w),
                    "worker {w} delivered nothing but left labels behind"
                );
            }
            WorkerFate::Partial { dropped } => {
                for t in dropped {
                    assert!(
                        report
                            .round
                            .labels
                            .for_task(*t)
                            .iter()
                            .all(|(lw, _)| lw != w),
                        "worker {w} labelled dropped task {t}"
                    );
                }
            }
            _ => {}
        }
    }

    // Strict aggregation over the surviving labels: every task that kept at
    // least one label gets the same verdict the report shows; a task
    // stripped bare is a typed EmptyLabelSet fault, not a panic.
    match mcs_agg::weighted_aggregate_strict(
        &report.round.labels,
        uncertain.skills(),
        uncertain.num_tasks(),
    ) {
        Ok(verdicts) => {
            for (v, estimate) in verdicts.iter().zip(&report.round.estimates) {
                assert_eq!(Some(*v), *estimate);
            }
        }
        Err(mcs_types::McsError::EmptyLabelSet { task }) => {
            assert!(report.round.labels.for_task(task).is_empty());
        }
        Err(e) => panic!("unexpected aggregation error: {e}"),
    }

    // The deterministic twin under the same seeds sees no failures at all —
    // the demotions above are entirely the completion sampler's doing.
    let mut r = rng::seeded(5);
    let det = run_round_resilient(&instance, &types, &auction, &plan, &config, &mut r)
        .expect("generated instances are feasible");
    assert!(det
        .fates
        .iter()
        .all(|(_, f)| f.delivered_in_full(config.deadline)));
    assert!(!det.degraded());
    assert_eq!(det.backfill_attempts, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Uncertain instances through the resilient engine: the whole report
    /// invariant suite (payments, utilities, achieved coverage against the
    /// inflated quotas, shortfall typing) holds for arbitrary completion
    /// draws, with and without injected faults on top.
    #[test]
    fn prop_uncertain_rounds_are_sound(
        instance_seed in 0u64..4,
        round_seed in 0u64..1000,
        fault_seed in 0u64..1000,
        no_show in 0.0f64..0.2,
    ) {
        let g = Setting::one(80).generate(instance_seed);
        let uncertain = uncertain_twin(&g.instance, 0.93);
        let auction = DpHsrcAuction::new(0.1).expect("valid epsilon");
        let plan = FaultPlan {
            no_show_rate: no_show,
            seed: fault_seed,
            ..FaultPlan::none()
        };
        let mut r = rng::seeded(round_seed);
        let report = run_round_resilient(
            &uncertain,
            &g.types,
            &auction,
            &plan,
            &ResilienceConfig::default(),
            &mut r,
        )
        .expect("headroom-derived gammas keep the instance feasible");
        check_report(&uncertain, &g.types, &report);
    }
}
