//! Serde round-trip coverage for the platform report types.
//!
//! These are the payloads the service layer ships over the wire, so every
//! report produced by a real round must survive `to_string` → `from_str`
//! bit-for-bit (modulo the usual f64-as-JSON caveat: the vendored encoder
//! prints floats with full round-trip precision, so equality is exact).

use mcs_auction::{AuctionOutcome, DpHsrcAuction, Mechanism};
use mcs_num::rng;
use mcs_sim::faults::{CoverageShortfall, FaultPlan, WorkerFate};
use mcs_sim::platform::{
    run_round, run_round_resilient, DegradedRoundReport, ResilienceConfig, RoundReport,
};
use mcs_sim::Setting;
use mcs_types::{Instance, Price, TaskId, TrueType, WorkerId};

fn small(seed: u64) -> (Instance, Vec<TrueType>) {
    let g = Setting::one(80).scaled_down(4).generate(seed);
    (g.instance, g.types)
}

#[test]
fn auction_outcome_round_trips() {
    let (inst, _) = small(7);
    let auction = DpHsrcAuction::new(0.1).unwrap();
    let mut r = rng::seeded(7);
    let outcome = auction.run(&inst, &mut r).unwrap();
    let json = serde_json::to_string(&outcome).unwrap();
    let back: AuctionOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(back, outcome);
}

#[test]
fn auction_outcome_wire_input_is_normalized() {
    // Unsorted, duplicated winner ids on the wire must still come back as
    // a canonical outcome: deserialization funnels through the constructor.
    // Prices travel as integer tenths (`Price` is `#[serde(transparent)]`).
    let json = r#"{"price": 400, "winners": [3, 1, 3]}"#;
    let o: AuctionOutcome = serde_json::from_str(json).unwrap();
    assert_eq!(o.winners(), &[WorkerId(1), WorkerId(3)]);
    assert_eq!(o.price(), Price::from_f64(40.0));
}

#[test]
fn round_report_round_trips() {
    let (inst, types) = small(21);
    let auction = DpHsrcAuction::new(0.1).unwrap();
    let mut r = rng::seeded(11);
    let report = run_round(&inst, &types, &auction, &mut r).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: RoundReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
    assert_eq!(back.accuracy(), report.accuracy());
}

#[test]
fn degraded_round_report_round_trips() {
    // A faulty round exercises every report field: fates, backfill rounds,
    // per-phase payments, achieved coverage/deltas, and any shortfalls.
    let (inst, types) = small(42);
    let auction = DpHsrcAuction::new(0.1).unwrap();
    let mut r = rng::seeded(42);
    let report = run_round_resilient(
        &inst,
        &types,
        &auction,
        &FaultPlan::no_show(0.3, 42),
        &ResilienceConfig::default(),
        &mut r,
    )
    .unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: DegradedRoundReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}

#[test]
fn worker_fate_variants_round_trip() {
    let fates = vec![
        WorkerFate::Delivered,
        WorkerFate::NoShow,
        WorkerFate::ShowedButFailed,
        WorkerFate::Partial {
            dropped: vec![TaskId(2), TaskId(5)],
        },
        WorkerFate::Straggler { delay: 17 },
        WorkerFate::Corrupted {
            flipped: vec![TaskId(0)],
        },
    ];
    let json = serde_json::to_string(&fates).unwrap();
    let back: Vec<WorkerFate> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, fates);
}

#[test]
fn worker_fate_rejects_unknown_tag() {
    let err = serde_json::from_str::<WorkerFate>(r#"{"fate": "vanished"}"#);
    assert!(err.is_err());
}

#[test]
fn fault_plan_and_config_round_trip() {
    let plan = FaultPlan {
        no_show_rate: 0.1,
        partial_dropout_rate: 0.2,
        dropout_fraction: 0.5,
        straggler_rate: 0.3,
        straggler_delay: (10, 90),
        flip_rate: 0.05,
        flip_fraction: 0.25,
        seed: 77,
    };
    let json = serde_json::to_string(&plan).unwrap();
    let back: FaultPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back, plan);

    let config = ResilienceConfig {
        deadline: 30,
        max_backfill_rounds: 4,
    };
    let json = serde_json::to_string(&config).unwrap();
    let back: ResilienceConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, config);
}

#[test]
fn coverage_shortfall_round_trips() {
    let s = CoverageShortfall {
        task: TaskId(3),
        required: 4.2,
        achieved: 1.5,
    };
    let json = serde_json::to_string(&s).unwrap();
    let back: CoverageShortfall = serde_json::from_str(&json).unwrap();
    assert_eq!(back, s);
}
