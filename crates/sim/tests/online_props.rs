//! Property coverage for the streaming online auction: arrival-order
//! truthfulness of the stage-sampling mechanism and the byte-identical
//! degenerate-timeline reduction to the offline round.

use mcs_auction::{AuctionOutcome, ScheduleEngine, SelectionRule};
use mcs_num::rng;
use mcs_sim::online::{
    ArrivalTimeline, Decision, GreedyBaseline, OnlineMechanism, StageThreshold, TimelineConfig,
};
use mcs_sim::Setting;
use mcs_types::{Bid, Instance, WorkerId};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::Rng;

fn generated(seed: u64) -> Instance {
    Setting::one(80).scaled_down(4).generate(seed).instance
}

/// Payment minus true cost when admitted, zero otherwise, in price tenths.
fn utility_tenths(
    report: &mcs_sim::online::OnlineRoundReport,
    worker: WorkerId,
    true_cost_tenths: i64,
) -> i64 {
    report
        .decisions
        .iter()
        .find(|d| d.worker == worker)
        .and_then(|d| d.decision.payment())
        .map(|p| p.tenths() - true_cost_tenths)
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No single worker can raise their utility — in particular, the
    /// payment they receive — by misreporting cost, under any seeded
    /// arrival permutation. The posted price and density threshold are
    /// learned from the sample alone (whose members are never paid), so a
    /// worker's report only gates them through `bid ≤ p̂`.
    #[test]
    fn prop_stage_sampling_is_arrival_order_truthful(
        instance_seed in 0u64..8,
        timeline_seed in 0u64..50,
        worker_pick in 0usize..1000,
        misreport_pick in 0usize..1000,
        dp in 0u64..2,
    ) {
        let dp = dp == 1;
        let instance = generated(instance_seed);
        let n = instance.num_workers();
        let worker = WorkerId((worker_pick % n) as u32);
        let grid = instance.price_grid().clone();
        let misreport = grid.get(misreport_pick % grid.len()).expect("grid price");
        let true_cost = instance.bids().bid(worker).price();
        if misreport == true_cost {
            return Ok(()); // not a deviation
        }

        let bundle = instance.bids().bid(worker).bundle().clone();
        let deviated = instance
            .with_bid(worker, Bid::new(bundle, misreport))
            .expect("neighbouring instance");

        // The timeline depends only on (num_workers, seed), so both runs
        // stream the same arrival order.
        let timeline =
            ArrivalTimeline::generate(&instance, &TimelineConfig::default(), timeline_seed);
        let mech = if dp {
            StageThreshold::new().epsilon(0.5)
        } else {
            StageThreshold::new()
        };
        let truthful = mech.run(&instance, &timeline, timeline_seed).expect("truthful run");
        let misreported = mech.run(&deviated, &timeline, timeline_seed).expect("deviated run");

        let u_truth = utility_tenths(&truthful, worker, true_cost.tenths());
        let u_mis = utility_tenths(&misreported, worker, true_cost.tenths());
        prop_assert!(
            u_mis <= u_truth,
            "worker {worker:?} gained {u_mis} > {u_truth} tenths by bidding \
             {misreport:?} instead of {true_cost:?}"
        );
    }

    /// The degenerate timeline (everyone at t = 0, no departures,
    /// threshold learned from the whole pool) reproduces the offline
    /// round byte-identically, for any arrival permutation.
    #[test]
    fn prop_degenerate_timeline_reduction_is_byte_identical(
        instance_seed in 0u64..10,
        shuffle_seed in 0u64..100,
    ) {
        let instance = generated(instance_seed);
        let offline = ScheduleEngine::new(SelectionRule::MarginalCoverage)
            .build(&instance)
            .expect("offline build");

        let mut order: Vec<WorkerId> =
            (0..instance.num_workers() as u32).map(WorkerId).collect();
        order.shuffle(&mut rng::seeded(shuffle_seed));
        let timeline = ArrivalTimeline::from_order(&order);

        let report = StageThreshold::new()
            .lookahead(true)
            .run(&instance, &timeline, shuffle_seed)
            .expect("lookahead run");

        let online_outcome =
            AuctionOutcome::new(report.threshold.expect("threshold").price, report.accepted.clone());
        let offline_outcome =
            AuctionOutcome::new(offline.price(0), offline.winners(0).to_vec());
        let online_bytes = serde_json::to_string(&online_outcome).expect("encode online");
        let offline_bytes = serde_json::to_string(&offline_outcome).expect("encode offline");
        prop_assert_eq!(online_bytes, offline_bytes);
        prop_assert_eq!(report.total_payment, offline.total_payment(0));
        prop_assert!(report.covered);
    }

    /// Sanity over random timelines: the greedy baseline and the threshold
    /// mechanism both produce internally consistent reports (payments sum,
    /// accepted sets deduplicated and sorted, decisions 1:1 with arrivals).
    #[test]
    fn prop_online_reports_are_internally_consistent(
        instance_seed in 0u64..6,
        timeline_seed in 0u64..40,
        horizon in 1u64..2000,
    ) {
        let instance = generated(instance_seed);
        let config = TimelineConfig { horizon, ..TimelineConfig::default() };
        let timeline = ArrivalTimeline::generate(&instance, &config, timeline_seed);
        let mechs: [&dyn OnlineMechanism; 2] = [&StageThreshold::new(), &GreedyBaseline::new()];
        for mech in mechs {
            let report = mech.run(&instance, &timeline, timeline_seed).expect("run");
            prop_assert_eq!(report.decisions.len(), timeline.len());
            let paid: i64 = report
                .decisions
                .iter()
                .filter_map(|d| d.decision.payment())
                .map(|p| p.tenths())
                .sum();
            prop_assert_eq!(paid, report.total_payment.tenths());
            let accepted_count =
                report.decisions.iter().filter(|d| d.decision.accepted()).count();
            prop_assert_eq!(accepted_count, report.accepted.len());
            prop_assert!(report.accepted.windows(2).all(|w| w[0] < w[1]));
            prop_assert!((0.0..=1.0).contains(&report.achieved_coverage));
            if report.covered {
                prop_assert!((report.achieved_coverage - 1.0).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn misreporting_below_the_posted_price_cannot_beat_truthful_bidding() {
    // A focused deterministic spot check of the key deviation: undercut the
    // posted price to force admission. The worker gets admitted but is paid
    // the same posted price — which their true cost exceeds, so utility
    // goes negative while the truthful run sat at zero.
    let instance = generated(3);
    let timeline = ArrivalTimeline::generate(&instance, &TimelineConfig::default(), 3);
    let report = StageThreshold::new()
        .run(&instance, &timeline, 3)
        .expect("run");
    let info = report.threshold.expect("threshold");
    // Find a post-sample worker priced out by the threshold.
    let Some(target) = report.decisions.iter().position(|d| {
        matches!(
            d.decision,
            Decision::Rejected(mcs_sim::online::RejectReason::QuoteExceeded)
        )
    }) else {
        return; // This seed admitted everyone cheap; nothing to check.
    };
    let worker = report.decisions[target].worker;
    let true_cost = instance.bids().bid(worker).price();
    assert!(true_cost > info.price);

    let bundle = instance.bids().bid(worker).bundle().clone();
    let undercut = instance
        .with_bid(worker, Bid::new(bundle, info.price))
        .expect("undercut instance");
    let deviated = StageThreshold::new()
        .run(&undercut, &timeline, 3)
        .expect("deviated run");
    let u = utility_tenths(&deviated, worker, true_cost.tenths());
    assert!(u <= 0, "undercutting yielded positive utility {u}");
}

#[test]
fn generated_timelines_permute_with_the_seed() {
    let instance = generated(1);
    let mut r = rng::seeded(99);
    let a = ArrivalTimeline::generate(&instance, &TimelineConfig::default(), r.gen());
    let b = ArrivalTimeline::generate(&instance, &TimelineConfig::default(), r.gen());
    assert_ne!(
        a.arrivals().iter().map(|x| x.worker).collect::<Vec<_>>(),
        b.arrivals().iter().map(|x| x.worker).collect::<Vec<_>>()
    );
}
