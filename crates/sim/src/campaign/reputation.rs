//! Reputation scores gating the admitted-worker set.
//!
//! The platform cannot see worker intent, only behaviour. Two observable
//! signals feed the score: *agreement* — how often a worker's labels match
//! the platform's own aggregated estimate on the tasks she reported — and
//! *reliability* — no-shows, failed deliveries and rejected bid envelopes.
//! Both are things a deployed MCS platform actually has; neither requires
//! ground truth.
//!
//! Scores move by exponential smoothing, so a worker who behaves honestly
//! for a while and then turns (the sleeper pattern) decays toward the ban
//! threshold within a few rounds instead of coasting on her history.

use mcs_agg::{Label, LabelSet};
use mcs_types::{McsError, WorkerId};

/// Knobs of the reputation gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReputationConfig {
    /// Every worker starts here (a mild benefit of the doubt).
    pub initial: f64,
    /// Exponential-smoothing retention `λ`: after a round with agreement
    /// signal `s`, `score ← λ·score + (1−λ)·s`. Smaller values react
    /// faster to turns; larger values forgive isolated bad rounds.
    pub smoothing: f64,
    /// Flat score deduction per reliability event (no-show, failed
    /// delivery, rejected envelope).
    pub event_penalty: f64,
    /// Workers whose score falls below this are excluded from the
    /// admitted set.
    pub ban_threshold: f64,
    /// Rounds of observation before the gate engages (everyone is
    /// admitted during the grace period, scores accrue normally).
    pub grace_rounds: usize,
}

impl Default for ReputationConfig {
    fn default() -> Self {
        ReputationConfig {
            initial: 0.7,
            smoothing: 0.55,
            event_penalty: 0.15,
            ban_threshold: 0.45,
            grace_rounds: 2,
        }
    }
}

impl ReputationConfig {
    /// Structural validation.
    ///
    /// # Errors
    ///
    /// [`McsError::Solver`] naming the offending knob.
    pub fn validate(&self) -> Result<(), McsError> {
        if !(self.initial.is_finite() && (0.0..=1.0).contains(&self.initial)) {
            return Err(McsError::Solver {
                message: format!("reputation initial {} outside [0, 1]", self.initial),
            });
        }
        if !(self.smoothing.is_finite() && (0.0..1.0).contains(&self.smoothing)) {
            return Err(McsError::Solver {
                message: format!("reputation smoothing {} outside [0, 1)", self.smoothing),
            });
        }
        if !(self.event_penalty.is_finite() && self.event_penalty >= 0.0) {
            return Err(McsError::Solver {
                message: format!("reputation event penalty {} negative", self.event_penalty),
            });
        }
        if !(self.ban_threshold.is_finite() && (0.0..=1.0).contains(&self.ban_threshold)) {
            return Err(McsError::Solver {
                message: format!(
                    "reputation ban threshold {} outside [0, 1]",
                    self.ban_threshold
                ),
            });
        }
        Ok(())
    }
}

/// A reliability event a worker can be penalized for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReputationEvent {
    /// The worker never showed up for an assignment.
    NoShow,
    /// The worker showed up and delivered nothing usable.
    FailedDelivery,
    /// The worker's signed bid envelope was rejected at admission.
    EnvelopeRejected,
}

/// The per-worker reputation ledger of one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ReputationBook {
    config: ReputationConfig,
    scores: Vec<f64>,
    /// Round-major snapshots of `scores`, taken after each observed round.
    trajectories: Vec<Vec<f64>>,
}

impl ReputationBook {
    /// Opens a book over `num_workers` workers.
    ///
    /// # Errors
    ///
    /// Propagates [`ReputationConfig::validate`].
    pub fn new(num_workers: usize, config: ReputationConfig) -> Result<ReputationBook, McsError> {
        config.validate()?;
        Ok(ReputationBook {
            config,
            scores: vec![config.initial; num_workers],
            trajectories: Vec::new(),
        })
    }

    /// The configuration the book was opened with.
    pub fn config(&self) -> &ReputationConfig {
        &self.config
    }

    /// Current score per worker.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Round-major score snapshots, one per observed round.
    pub fn trajectories(&self) -> &[Vec<f64>] {
        &self.trajectories
    }

    /// Rounds observed so far.
    pub fn rounds_observed(&self) -> usize {
        self.trajectories.len()
    }

    /// Folds one round of labels into the scores: each participating
    /// worker's signal is her agreement rate with the platform's
    /// aggregated `estimates` over the tasks she reported (tasks without
    /// an estimate are skipped). Workers who reported nothing this round
    /// keep their score. Ends the round with a trajectory snapshot.
    pub fn observe_round(&mut self, labels: &LabelSet, estimates: &[Option<Label>]) {
        let n = self.scores.len();
        let mut agree = vec![0u64; n];
        let mut seen = vec![0u64; n];
        for obs in labels.iter() {
            let w = obs.worker.index();
            if w >= n {
                continue;
            }
            let Some(Some(est)) = estimates.get(obs.task.index()) else {
                continue;
            };
            seen[w] += 1;
            if obs.label == *est {
                agree[w] += 1;
            }
        }
        let lambda = self.config.smoothing;
        for w in 0..n {
            if seen[w] > 0 {
                let signal = agree[w] as f64 / seen[w] as f64;
                self.scores[w] = lambda * self.scores[w] + (1.0 - lambda) * signal;
            }
        }
        self.trajectories.push(self.scores.clone());
    }

    /// Applies a flat reliability penalty (clamped at zero).
    pub fn penalize(&mut self, worker: WorkerId, event: ReputationEvent) {
        let _ = event; // every event currently costs the same flat penalty
        if let Some(s) = self.scores.get_mut(worker.index()) {
            *s = (*s - self.config.event_penalty).max(0.0);
        }
    }

    /// Whether the gate is active yet (past the grace period).
    pub fn gating(&self) -> bool {
        self.rounds_observed() >= self.config.grace_rounds
    }

    /// The admitted-worker set: everyone during the grace period, then
    /// every worker at or above the ban threshold. Always ascending.
    pub fn admitted(&self) -> Vec<WorkerId> {
        if !self.gating() {
            return (0..self.scores.len() as u32).map(WorkerId).collect();
        }
        self.scores
            .iter()
            .enumerate()
            .filter(|(_, &s)| s >= self.config.ban_threshold)
            .map(|(i, _)| WorkerId(i as u32))
            .collect()
    }

    /// Workers currently below the ban threshold (empty during grace).
    pub fn banned(&self) -> Vec<WorkerId> {
        if !self.gating() {
            return Vec::new();
        }
        self.scores
            .iter()
            .enumerate()
            .filter(|(_, &s)| s < self.config.ban_threshold)
            .map(|(i, _)| WorkerId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_agg::Observation;
    use mcs_types::TaskId;

    fn round(labels: &[(u32, u32, Label)], num_tasks: usize) -> LabelSet {
        let mut set = LabelSet::new(num_tasks);
        for &(w, t, l) in labels {
            set.push(Observation {
                worker: WorkerId(w),
                task: TaskId(t),
                label: l,
            });
        }
        set
    }

    #[test]
    fn disagreement_sinks_a_score_agreement_lifts_it() {
        let mut book = ReputationBook::new(2, ReputationConfig::default()).unwrap();
        let estimates = vec![Some(Label::Pos), Some(Label::Pos)];
        for _ in 0..6 {
            let labels = round(
                &[
                    (0, 0, Label::Pos),
                    (0, 1, Label::Pos),
                    (1, 0, Label::Neg),
                    (1, 1, Label::Neg),
                ],
                2,
            );
            book.observe_round(&labels, &estimates);
        }
        assert!(book.scores()[0] > 0.9);
        assert!(book.scores()[1] < 0.2);
        assert_eq!(book.admitted(), vec![WorkerId(0)]);
        assert_eq!(book.banned(), vec![WorkerId(1)]);
        assert_eq!(book.trajectories().len(), 6);
    }

    #[test]
    fn grace_period_admits_everyone() {
        let mut book = ReputationBook::new(2, ReputationConfig::default()).unwrap();
        let labels = round(&[(1, 0, Label::Neg)], 1);
        book.observe_round(&labels, &[Some(Label::Pos)]);
        // One round observed, grace is two: still everyone.
        assert!(!book.gating());
        assert_eq!(book.admitted(), vec![WorkerId(0), WorkerId(1)]);
        assert!(book.banned().is_empty());
    }

    #[test]
    fn silent_workers_keep_their_score() {
        let mut book = ReputationBook::new(2, ReputationConfig::default()).unwrap();
        let labels = round(&[(0, 0, Label::Pos)], 1);
        book.observe_round(&labels, &[Some(Label::Pos)]);
        assert_eq!(book.scores()[1], ReputationConfig::default().initial);
    }

    #[test]
    fn penalties_accumulate_and_clamp() {
        let mut book = ReputationBook::new(1, ReputationConfig::default()).unwrap();
        for _ in 0..20 {
            book.penalize(WorkerId(0), ReputationEvent::NoShow);
        }
        assert_eq!(book.scores()[0], 0.0);
        // Out-of-range ids are ignored, not panicked on.
        book.penalize(WorkerId(9), ReputationEvent::EnvelopeRejected);
    }

    #[test]
    fn sleeper_decay_crosses_the_threshold() {
        // A worker with a perfect early record turns; smoothing must pull
        // her under the ban threshold within a handful of rounds.
        let config = ReputationConfig::default();
        let mut book = ReputationBook::new(1, config).unwrap();
        let estimates = vec![Some(Label::Pos)];
        for _ in 0..4 {
            book.observe_round(&round(&[(0, 0, Label::Pos)], 1), &estimates);
        }
        assert!(book.scores()[0] > 0.9);
        let mut rounds_to_ban = 0;
        while book.admitted().contains(&WorkerId(0)) {
            book.observe_round(&round(&[(0, 0, Label::Neg)], 1), &estimates);
            rounds_to_ban += 1;
            assert!(rounds_to_ban < 10, "sleeper never got banned");
        }
        assert!(rounds_to_ban <= 3, "took {rounds_to_ban} rounds to ban");
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        for bad in [
            ReputationConfig {
                smoothing: 1.0,
                ..Default::default()
            },
            ReputationConfig {
                initial: 1.5,
                ..Default::default()
            },
            ReputationConfig {
                event_penalty: -0.1,
                ..Default::default()
            },
            ReputationConfig {
                ban_threshold: f64::NAN,
                ..Default::default()
            },
        ] {
            assert!(ReputationBook::new(1, bad).is_err(), "{bad:?}");
        }
    }
}
