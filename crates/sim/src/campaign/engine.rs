//! The multi-round campaign engine over the shared round lifecycle.
//!
//! [`run_campaign`] is the single loop behind every multi-round surface in
//! the simulator. It generalizes the legacy [`crate::platform::Campaign`]
//! runner along four axes while consuming the main RNG stream
//! *identically* on benign inputs (the `campaign_equivalence` suite in
//! `mcs-verify` pins this byte-for-byte):
//!
//! * **mechanism** — any [`ScheduledMechanism`] (DP-hSRC under every
//!   engine [`Strategy`](mcs_auction::Strategy), the §VII-A baseline, …);
//! * **skills** — the auction can run on the true `θ`, on a cold
//!   Dawid–Skene refit each round (the legacy behaviour), or on a
//!   [`SkillTracker`] (warm restarts, exponential forgetting, gold
//!   blending);
//! * **adversaries** — an [`AdversaryPlan`] of sleepers, label-flip rings
//!   and bid-collusion rings, all drawing from derived streams only;
//! * **defence & audit** — a [`ReputationBook`] gating the admitted
//!   worker set (via [`Instance::restrict_to_workers`]), and a per-round
//!   ε-DP audit of the price channel against bid neighbours.

use rand::Rng;

use mcs_agg::{
    generate_labels, weighted_aggregate, DawidSkene, Label, LabelSet, Observation, SkillTracker,
    TrackerConfig,
};
use mcs_auction::{privacy, AuctionOutcome, ScheduledMechanism};
use mcs_num::rng;
use mcs_types::{Bundle, Instance, McsError, Price, SkillMatrix, TrueType, WorkerId};
use serde::{Deserialize, Serialize};

use crate::campaign::adversary::AdversaryPlan;
use crate::campaign::reputation::{ReputationBook, ReputationConfig};
use crate::campaign::state::{RoundPhase, RoundState};
use crate::neighbour::{price_push_neighbour, random_worker, PricePush};
use crate::platform::RoundReport;

/// Derivation stream of the DP audit's neighbour choices ("DPAU").
const AUDIT_STREAM: u64 = 0x4450_4155;

/// Where the auction's skill matrix `θ` comes from, round over round.
#[derive(Debug, Clone, PartialEq)]
pub enum SkillSource {
    /// The true skills, every round (the paper's idealized platform).
    Known,
    /// Cold Dawid–Skene refit of the full label history after each round —
    /// exactly the legacy [`crate::platform::Campaign`] behaviour when
    /// `reestimate_skills` is set, RNG draw for RNG draw.
    RefitEachRound,
    /// A [`SkillTracker`]: warm-restarted EM over a forgetting-weighted
    /// round window, blended with gold-task estimates.
    Tracked(TrackerConfig),
}

impl SkillSource {
    /// Whether the platform learns `θ̂` (and therefore falls back to the
    /// prior skill record when an estimate-driven round looks
    /// uncoverable).
    pub fn learns(&self) -> bool {
        !matches!(self, SkillSource::Known)
    }
}

/// Configuration of the per-round ε-DP audit of the price channel.
///
/// Each round, the audit picks a worker from a derived stream, builds the
/// two price-push bid neighbours of the instance that was *actually
/// auctioned* (after θ̂ swaps, bid tampering and reputation gating), and
/// compares the mechanism's exact output PMFs: every price's probability
/// ratio must stay within `e^ε` (Theorem 2), up to `slack` in log space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpAuditConfig {
    /// Seed of the audit's derived worker-choice stream.
    pub seed: u64,
    /// Additive slack on the log-ratio bound, absorbing float noise in
    /// the two PMF normalizations.
    pub slack: f64,
}

impl Default for DpAuditConfig {
    fn default() -> Self {
        DpAuditConfig {
            seed: 0xD9,
            slack: 1e-6,
        }
    }
}

/// What the ε-DP audit found.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpAuditReport {
    /// Rounds the audit ran on.
    pub rounds_audited: usize,
    /// Bid neighbours whose PMFs were compared.
    pub neighbours_checked: usize,
    /// Neighbours skipped because the pushed bid left no feasible price.
    pub neighbours_infeasible: usize,
    /// Neighbours skipped because the push changed the feasible price
    /// support itself (the paper's analysis fixes the feasible set; see
    /// [`mcs_auction::privacy::aligned_probs`]).
    pub support_shifts: usize,
    /// The ε the price channel claims.
    pub epsilon: f64,
    /// Largest observed `|ln(P_a(p) / P_b(p))|` across all compared
    /// neighbour pairs and prices.
    pub worst_log_ratio: f64,
    /// Neighbour comparisons that exceeded `ε + slack` (zero means the
    /// Theorem 2 guarantee held everywhere the audit looked).
    pub violations: usize,
}

/// Full configuration of one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Number of rounds.
    pub rounds: usize,
    /// Where the auction's `θ` comes from.
    pub skills: SkillSource,
    /// Reputation gate on the admitted-worker set (`None` disables it).
    pub reputation: Option<ReputationConfig>,
    /// The worker-side adversaries ([`AdversaryPlan::none`] for benign).
    pub adversaries: AdversaryPlan,
    /// Per-round ε-DP audit of the price channel (`None` disables it).
    pub audit: Option<DpAuditConfig>,
}

impl CampaignSpec {
    /// A benign spec: known skills, no gate, no adversaries, no audit.
    pub fn benign(rounds: usize) -> CampaignSpec {
        CampaignSpec {
            rounds,
            skills: SkillSource::Known,
            reputation: None,
            adversaries: AdversaryPlan::none(),
            audit: None,
        }
    }

    /// Structural validation against the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates adversary and reputation validation errors.
    pub fn validate(&self, num_workers: usize) -> Result<(), McsError> {
        self.adversaries.validate(num_workers)?;
        if let Some(rep) = &self.reputation {
            rep.validate()?;
        }
        if let SkillSource::Tracked(cfg) = &self.skills {
            cfg.validate()?;
        }
        Ok(())
    }
}

/// Everything a campaign produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// Per-round reports, in order.
    pub rounds: Vec<RoundReport>,
    /// Total spend across all rounds.
    pub total_spend: Price,
    /// Mean per-round aggregation accuracy.
    pub mean_accuracy: f64,
    /// Mean absolute (flip-folded) error of the final per-worker skill
    /// estimates against the true mean skills; `None` when skills were
    /// known.
    pub final_skill_error: Option<f64>,
    /// Rounds where the estimate-driven auction looked uncoverable and
    /// fell back to the platform's prior skill record.
    pub fallback_rounds: usize,
    /// Per-round aggregation accuracy, in order.
    pub accuracy_per_round: Vec<f64>,
    /// Per-round flip-folded `θ̂` error, recorded after each refit (empty
    /// when skills were known).
    pub skill_error_per_round: Vec<f64>,
    /// Round-major reputation-score snapshots (empty when the gate was
    /// off).
    pub reputation_trajectories: Vec<Vec<f64>>,
    /// Workers below the ban threshold when the campaign ended.
    pub banned_workers: Vec<WorkerId>,
    /// Rounds where the gate wanted to exclude workers but the admitted
    /// pool could not cover the tasks, so the full pool ran instead.
    pub gate_skipped_rounds: usize,
    /// The ε-DP audit's findings (`None` when the audit was off).
    pub audit: Option<DpAuditReport>,
}

/// Mean absolute per-worker estimate error against the true mean skills,
/// folding the EM flip symmetry — the exact arithmetic of the legacy
/// campaign's `final_skill_error`.
fn folded_skill_error(accuracies: &[f64], instance: &Instance) -> f64 {
    let mut err = 0.0;
    for (i, &est) in accuracies.iter().enumerate().take(instance.num_workers()) {
        let w = WorkerId(i as u32);
        let true_mean: f64 =
            instance.skills().worker_row(w).iter().sum::<f64>() / instance.num_tasks() as f64;
        err += (est - true_mean).abs().min((1.0 - est - true_mean).abs());
    }
    err / instance.num_workers() as f64
}

/// Rebuilds the platform's belief instance around per-worker accuracy
/// estimates — the legacy campaign's estimate-swap, verbatim.
fn belief_with_accuracies(instance: &Instance, accuracies: &[f64]) -> Instance {
    let estimated: Vec<Vec<f64>> = accuracies
        .iter()
        .map(|&a| vec![a; instance.num_tasks()])
        .collect();
    let skills = SkillMatrix::from_rows(estimated).expect("EM accuracies are clamped to (0, 1)");
    Instance::builder(instance.num_tasks())
        .bid_profile(instance.bids().clone())
        .skills(skills)
        .error_bounds(instance.deltas().to_vec())
        .price_grid(instance.price_grid().clone())
        .cost_range(instance.cmin(), instance.cmax())
        .build()
        .expect("estimate swap preserves validity")
}

struct AuditAccum {
    config: DpAuditConfig,
    epsilon: f64,
    rounds_audited: usize,
    neighbours_checked: usize,
    neighbours_infeasible: usize,
    support_shifts: usize,
    worst_log_ratio: f64,
    violations: usize,
}

impl AuditAccum {
    fn new(config: DpAuditConfig, epsilon: f64) -> AuditAccum {
        AuditAccum {
            config,
            epsilon,
            rounds_audited: 0,
            neighbours_checked: 0,
            neighbours_infeasible: 0,
            support_shifts: 0,
            worst_log_ratio: 0.0,
            violations: 0,
        }
    }

    /// Audits one round's auctioned instance against its two price-push
    /// bid neighbours. Derived RNG only — never touches the main stream.
    fn audit_round<M: ScheduledMechanism>(
        &mut self,
        mechanism: &M,
        audited: &Instance,
        round: usize,
    ) {
        let Ok(pmf_a) = mechanism.pmf(audited) else {
            // The round itself fell back; nothing was sampled from this
            // instance's channel.
            return;
        };
        self.rounds_audited += 1;
        let mut r = rng::derived(self.config.seed ^ AUDIT_STREAM, round as u64);
        let worker = random_worker(audited, &mut r);
        for push in [PricePush::ToMin, PricePush::ToMax] {
            let Ok(neighbour) = price_push_neighbour(audited, worker, push) else {
                continue;
            };
            let Ok(pmf_b) = mechanism.pmf(&neighbour) else {
                self.neighbours_infeasible += 1;
                continue;
            };
            // Support-shifting neighbours are counted, not compared — the
            // same convention as the `mcs_auction::privacy` measurements.
            let Some(ratio) = privacy::dp_log_ratio(&pmf_a, &pmf_b) else {
                self.support_shifts += 1;
                continue;
            };
            self.neighbours_checked += 1;
            self.worst_log_ratio = self.worst_log_ratio.max(ratio);
            if ratio > self.epsilon + self.config.slack {
                self.violations += 1;
            }
        }
    }

    fn report(&self) -> DpAuditReport {
        DpAuditReport {
            rounds_audited: self.rounds_audited,
            neighbours_checked: self.neighbours_checked,
            neighbours_infeasible: self.neighbours_infeasible,
            support_shifts: self.support_shifts,
            epsilon: self.epsilon,
            worst_log_ratio: self.worst_log_ratio,
            violations: self.violations,
        }
    }
}

/// Runs one campaign: `spec.rounds` rounds of auction → labelling →
/// aggregation → payment, with skills, adversaries, reputation gating and
/// auditing per the spec.
///
/// Labels are always *generated* from `instance`'s true skills; the
/// auction runs on the platform's current belief (estimated skills,
/// tampered bids, gated pool). Every round walks the shared
/// [`RoundState`] lifecycle `Open → Committed → Settled` (`Aborted` on an
/// unrecoverable auction error).
///
/// When the skill source learns and an estimate-driven round looks
/// uncoverable, the round falls back to the platform's prior skill record
/// — the full, untampered, ungated instance — exactly like the legacy
/// campaign runner.
///
/// # Errors
///
/// Propagates validation errors and unrecoverable auction errors
/// ([`McsError::Infeasible`], [`McsError::NoFeasiblePrice`]).
pub fn run_campaign<M, R>(
    spec: &CampaignSpec,
    mechanism: &M,
    instance: &Instance,
    types: &[TrueType],
    rng: &mut R,
) -> Result<CampaignOutcome, McsError>
where
    M: ScheduledMechanism,
    R: Rng + ?Sized,
{
    let n = instance.num_workers();
    let k = instance.num_tasks();
    spec.validate(n)?;
    if types.len() != n {
        return Err(McsError::DimensionMismatch {
            what: "true type vector",
            expected: n,
            actual: types.len(),
        });
    }
    let learns = spec.skills.learns();
    let mut tracker = match &spec.skills {
        SkillSource::Tracked(cfg) => Some(SkillTracker::new(n, *cfg)?),
        _ => None,
    };
    let mut book = match spec.reputation {
        Some(cfg) => Some(ReputationBook::new(n, cfg)?),
        None => None,
    };
    let mut audit = spec
        .audit
        .map(|cfg| AuditAccum::new(cfg, ScheduledMechanism::epsilon(mechanism)));

    let mut rounds: Vec<RoundReport> = Vec::with_capacity(spec.rounds);
    let mut total_spend = Price::ZERO;
    let mut all_labels = LabelSet::new(k);
    let mut belief = instance.clone();
    let mut fallback_rounds = 0usize;
    let mut gate_skipped_rounds = 0usize;
    let mut accuracy_per_round = Vec::with_capacity(spec.rounds);
    let mut skill_error_per_round = Vec::new();

    for round in 0..spec.rounds {
        let mut lifecycle = RoundState::batch();

        // Adversarial bid tampering and the reputation gate shape the
        // instance the auction sees; both are pure data transforms (any
        // randomness comes from derived streams inside the plan).
        let tampered = spec.adversaries.tamper_bids(round, &belief)?;
        let base: &Instance = tampered.as_ref().unwrap_or(&belief);
        let mut restricted: Option<(Instance, Vec<WorkerId>)> = None;
        if let Some(book) = &book {
            let admitted = book.admitted();
            if admitted.len() < n {
                match base.restrict_to_workers(&admitted) {
                    Ok((sub, map)) if sub.coverage_problem().check_feasible().is_ok() => {
                        restricted = Some((sub, map));
                    }
                    // The gated pool cannot cover: run the full pool
                    // rather than abort the round.
                    _ => gate_skipped_rounds += 1,
                }
            }
        }
        let auction_view: &Instance = restricted.as_ref().map(|(s, _)| s).unwrap_or(base);
        let audited_early = audit.as_ref().map(|_| auction_view.clone());

        // The auction itself, with the legacy fallback: an estimate-driven
        // round that looks uncoverable resets the belief to the prior
        // skill record and reruns on the full pool.
        let first_try = mechanism.run(auction_view, rng);
        let mut used_fallback = false;
        let outcome_raw = match first_try {
            Ok(o) => o,
            Err(_) if learns => {
                fallback_rounds += 1;
                used_fallback = true;
                belief = instance.clone();
                match mechanism.run(&belief, rng) {
                    Ok(o) => o,
                    Err(e) => {
                        let _ = lifecycle.advance(RoundPhase::Aborted);
                        return Err(e);
                    }
                }
            }
            Err(e) => {
                let _ = lifecycle.advance(RoundPhase::Aborted);
                return Err(e);
            }
        };
        // Map a gated outcome back into the full worker-id space.
        let outcome = match (&restricted, used_fallback) {
            (Some((_, map)), false) => AuctionOutcome::new(
                outcome_raw.price(),
                outcome_raw
                    .winners()
                    .iter()
                    .map(|w| map[w.index()])
                    .collect(),
            ),
            _ => outcome_raw,
        };
        lifecycle
            .advance(RoundPhase::Committed)
            .expect("open rounds commit");

        // Winners execute the bundles they bid; labels come from the TRUE
        // skills, whatever the platform believes.
        let assignment: Vec<(WorkerId, Bundle)> = outcome
            .winners()
            .iter()
            .map(|&w| (w, instance.bids().bid(w).bundle().clone()))
            .collect();
        let truth: Vec<Label> = (0..k).map(|_| Label::random(rng)).collect();
        let mut labels = generate_labels(instance.skills(), &truth, &assignment, rng);
        // Adversaries corrupt their reports after the fact (derived
        // streams only — benign plans leave the labels untouched).
        spec.adversaries.tamper_labels(round, &mut labels);
        for obs in labels.iter() {
            all_labels.push(Observation { ..obs });
        }
        let estimates = weighted_aggregate(&labels, belief.skills(), k);
        let correct: Vec<bool> = estimates
            .iter()
            .zip(&truth)
            .map(|(e, t)| *e == Some(*t))
            .collect();
        let round_paid = outcome.total_payment();
        total_spend += round_paid;
        let utilities: Vec<Price> = (0..n)
            .map(|i| outcome.utility_of(WorkerId(i as u32), &types[i]))
            .collect();
        lifecycle
            .advance(RoundPhase::Settled)
            .expect("committed rounds settle");

        // Observable side channels: reputation and the skill tracker see
        // exactly what the platform saw (post-tamper labels, aggregate
        // estimates) — never the ground truth.
        if let Some(book) = &mut book {
            book.observe_round(&labels, &estimates);
        }
        if let Some(tracker) = &mut tracker {
            tracker.observe_round(&labels)?;
        }

        rounds.push(RoundReport {
            outcome,
            truth,
            labels,
            estimates,
            correct,
            total_paid: round_paid,
            utilities,
        });
        accuracy_per_round.push(rounds[rounds.len() - 1].accuracy());

        // Skill refit for the next round's auction.
        match &spec.skills {
            SkillSource::Known => {}
            SkillSource::RefitEachRound => {
                let fit = DawidSkene::default().fit(&all_labels, n);
                belief = belief_with_accuracies(instance, &fit.accuracies);
                skill_error_per_round.push(folded_skill_error(&fit.accuracies, instance));
            }
            SkillSource::Tracked(_) => {
                let tracker = tracker.as_mut().expect("tracked source builds a tracker");
                tracker.refit();
                let accuracies = tracker.accuracies().to_vec();
                belief = belief_with_accuracies(instance, &accuracies);
                skill_error_per_round.push(folded_skill_error(&accuracies, instance));
            }
        }

        if let Some(audit) = &mut audit {
            let audited = if used_fallback {
                instance.clone()
            } else {
                audited_early.expect("audit snapshots the auctioned instance")
            };
            audit.audit_round(mechanism, &audited, round);
        }
    }

    let mean_accuracy = if rounds.is_empty() {
        1.0
    } else {
        rounds.iter().map(RoundReport::accuracy).sum::<f64>() / rounds.len() as f64
    };
    let final_skill_error = match &spec.skills {
        SkillSource::Known => None,
        SkillSource::RefitEachRound => {
            // The legacy campaign's closing refit, verbatim.
            let fit = DawidSkene::default().fit(&all_labels, n);
            Some(folded_skill_error(&fit.accuracies, instance))
        }
        SkillSource::Tracked(_) => tracker
            .as_ref()
            .map(|t| folded_skill_error(t.accuracies(), instance)),
    };

    Ok(CampaignOutcome {
        rounds,
        total_spend,
        mean_accuracy,
        final_skill_error,
        fallback_rounds,
        accuracy_per_round,
        skill_error_per_round,
        reputation_trajectories: book
            .as_ref()
            .map(|b| b.trajectories().to_vec())
            .unwrap_or_default(),
        banned_workers: book.as_ref().map(|b| b.banned()).unwrap_or_default(),
        gate_skipped_rounds,
        audit: audit.as_ref().map(AuditAccum::report),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::adversary::{AdversaryGroup, AdversaryStrategy};
    use crate::platform::Campaign;
    use crate::Setting;
    use mcs_auction::DpHsrcAuction;

    fn small() -> (Instance, Vec<TrueType>) {
        let g = Setting::one(80).scaled_down(4).generate(55);
        (g.instance, g.types)
    }

    #[test]
    fn benign_known_skills_matches_legacy_campaign() {
        let (inst, types) = small();
        let mechanism = DpHsrcAuction::new(0.1).unwrap();
        let spec = CampaignSpec::benign(4);
        let mut r1 = rng::seeded(7);
        let mut r2 = rng::seeded(7);
        let engine = run_campaign(&spec, &mechanism, &inst, &types, &mut r1).unwrap();
        let legacy = Campaign {
            epsilon: 0.1,
            rounds: 4,
            reestimate_skills: false,
        }
        .run(&inst, &types, &mut r2)
        .unwrap();
        assert_eq!(engine.rounds, legacy.rounds);
        assert_eq!(engine.total_spend, legacy.total_spend);
        assert_eq!(
            engine.mean_accuracy.to_bits(),
            legacy.mean_accuracy.to_bits()
        );
        assert_eq!(engine.final_skill_error, legacy.final_skill_error);
        assert_eq!(engine.fallback_rounds, legacy.fallback_rounds);
        use rand::Rng as _;
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn benign_refit_matches_legacy_campaign() {
        let (inst, types) = small();
        let mechanism = DpHsrcAuction::new(0.1).unwrap();
        let spec = CampaignSpec {
            skills: SkillSource::RefitEachRound,
            ..CampaignSpec::benign(5)
        };
        let mut r1 = rng::seeded(8);
        let mut r2 = rng::seeded(8);
        let engine = run_campaign(&spec, &mechanism, &inst, &types, &mut r1).unwrap();
        let legacy = Campaign {
            epsilon: 0.1,
            rounds: 5,
            reestimate_skills: true,
        }
        .run(&inst, &types, &mut r2)
        .unwrap();
        assert_eq!(engine.rounds, legacy.rounds);
        assert_eq!(engine.fallback_rounds, legacy.fallback_rounds);
        assert_eq!(
            engine.final_skill_error.unwrap().to_bits(),
            legacy.final_skill_error.unwrap().to_bits()
        );
        assert_eq!(engine.skill_error_per_round.len(), 5);
        use rand::Rng as _;
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn tracked_skills_learn_the_pool() {
        let (inst, types) = small();
        let mechanism = DpHsrcAuction::new(0.1).unwrap();
        let spec = CampaignSpec {
            skills: SkillSource::Tracked(TrackerConfig::default()),
            ..CampaignSpec::benign(6)
        };
        let mut r = rng::seeded(11);
        let out = run_campaign(&spec, &mechanism, &inst, &types, &mut r).unwrap();
        assert_eq!(out.skill_error_per_round.len(), 6);
        let err = out.final_skill_error.unwrap();
        assert!(err < 0.25, "tracked theta-hat error {err}");
        assert!(out.mean_accuracy > 0.5);
    }

    #[test]
    fn reputation_gate_bans_a_flip_ring() {
        let (inst, types) = small();
        let mechanism = DpHsrcAuction::new(0.1).unwrap();
        // A ring of idle workers would be invisible; recruit it from the
        // workers a benign probe campaign actually selects.
        let probe = run_campaign(
            &CampaignSpec::benign(4),
            &mechanism,
            &inst,
            &types,
            &mut rng::seeded(12),
        )
        .unwrap();
        let mut wins = vec![0usize; inst.num_workers()];
        for rr in &probe.rounds {
            for &w in rr.outcome.winners() {
                wins[w.index()] += 1;
            }
        }
        let mut by_wins: Vec<usize> = (0..inst.num_workers()).collect();
        by_wins.sort_by_key(|&i| std::cmp::Reverse(wins[i]));
        let ring: Vec<WorkerId> = by_wins[..4].iter().map(|&i| WorkerId(i as u32)).collect();
        assert!(wins[ring[0].index()] > 0, "probe produced no winners");

        let spec = CampaignSpec {
            reputation: Some(ReputationConfig::default()),
            adversaries: AdversaryPlan {
                groups: vec![AdversaryGroup {
                    members: ring.clone(),
                    strategy: AdversaryStrategy::LabelFlipRing { flip_prob: 1.0 },
                }],
                seed: 3,
            },
            ..CampaignSpec::benign(10)
        };
        let out = run_campaign(&spec, &mechanism, &inst, &types, &mut rng::seeded(12)).unwrap();
        assert_eq!(out.reputation_trajectories.len(), 10);
        assert!(
            out.banned_workers.iter().any(|w| ring.contains(w)),
            "no ring member banned; final scores {:?}",
            out.reputation_trajectories.last()
        );
        // The book's final snapshot and the ban list must agree.
        let last = out.reputation_trajectories.last().unwrap();
        for w in &out.banned_workers {
            assert!(last[w.index()] < ReputationConfig::default().ban_threshold);
        }
    }

    #[test]
    fn audit_passes_on_benign_and_adversarial_runs() {
        let (inst, types) = small();
        let mechanism = DpHsrcAuction::new(0.1).unwrap();
        for adversaries in [
            AdversaryPlan::none(),
            AdversaryPlan {
                groups: vec![AdversaryGroup {
                    members: vec![WorkerId(0), WorkerId(1)],
                    strategy: AdversaryStrategy::BidCollusionRing { markup: 0.3 },
                }],
                seed: 5,
            },
        ] {
            let spec = CampaignSpec {
                skills: SkillSource::RefitEachRound,
                adversaries,
                audit: Some(DpAuditConfig::default()),
                ..CampaignSpec::benign(3)
            };
            let mut r = rng::seeded(13);
            let out = run_campaign(&spec, &mechanism, &inst, &types, &mut r).unwrap();
            let audit = out.audit.unwrap();
            assert!(audit.rounds_audited > 0);
            assert!(audit.neighbours_checked > 0);
            assert_eq!(
                audit.violations, 0,
                "price channel violated epsilon-DP: worst log ratio {}",
                audit.worst_log_ratio
            );
            assert!(audit.worst_log_ratio <= audit.epsilon + 1e-6);
        }
    }

    #[test]
    fn audit_is_invisible_to_the_main_stream() {
        let (inst, types) = small();
        let mechanism = DpHsrcAuction::new(0.1).unwrap();
        let plain = CampaignSpec::benign(3);
        let audited = CampaignSpec {
            audit: Some(DpAuditConfig::default()),
            ..CampaignSpec::benign(3)
        };
        let mut r1 = rng::seeded(21);
        let mut r2 = rng::seeded(21);
        let a = run_campaign(&plain, &mechanism, &inst, &types, &mut r1).unwrap();
        let b = run_campaign(&audited, &mechanism, &inst, &types, &mut r2).unwrap();
        assert_eq!(a.rounds, b.rounds);
        use rand::Rng as _;
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn mismatched_types_are_a_typed_error() {
        let (inst, types) = small();
        let mechanism = DpHsrcAuction::new(0.1).unwrap();
        let mut r = rng::seeded(1);
        assert!(matches!(
            run_campaign(
                &CampaignSpec::benign(1),
                &mechanism,
                &inst,
                &types[..types.len() - 1],
                &mut r
            ),
            Err(McsError::DimensionMismatch { .. })
        ));
    }
}
