//! Worker-side attack strategies for multi-round campaigns.
//!
//! Three coordinated-misbehaviour patterns from the crowdsensing
//! literature, each parameterized per *group* of colluding workers:
//!
//! * **Sleepers** — behave honestly for a warm-up window, building skill
//!   estimates and reputation, then flip every label they submit. The
//!   attack on learned `θ̂`: the platform's record is maximally wrong at
//!   the moment the flip happens.
//! * **Correlated label-flip rings** — every member flips the *same*
//!   per-round task subset, so the flipped labels corroborate each other
//!   and majority-style aggregation cannot average the ring away.
//! * **Bid-collusion rings** — members inflate their asks by a common
//!   markup, trying to drag the exponential mechanism's clearing price up.
//!
//! All adversarial randomness comes from derived streams keyed off
//! [`AdversaryPlan::seed`] (the same discipline as [`crate::faults`]):
//! the main RNG is never touched, so a benign plan leaves every platform
//! draw byte-identical to an adversary-free run.

use mcs_agg::{Label, LabelSet, Observation};
use mcs_num::rng;
use mcs_types::{Bid, Instance, McsError, Price, WorkerId};
use rand::Rng;

/// Derivation stream of campaign adversaries ("CADV").
const ADVERSARY_STREAM: u64 = 0x4341_4456;

/// What one colluding group does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversaryStrategy {
    /// Honest for `honest_rounds` rounds (0-indexed: the flip starts in
    /// round `honest_rounds`), then every member flips every label.
    Sleeper {
        /// Rounds of honest warm-up before the turn.
        honest_rounds: usize,
    },
    /// From round zero, all members flip the same per-round task subset;
    /// each task enters the subset with probability `flip_prob` (drawn
    /// once per group per round, shared by every member — that is the
    /// correlation).
    LabelFlipRing {
        /// Per-task probability of entering the round's flip set.
        flip_prob: f64,
    },
    /// Members inflate their asks by `markup` (a bid of `b` becomes
    /// `b · (1 + markup)`, clamped to the instance's `c_max`).
    BidCollusionRing {
        /// Fractional ask inflation, e.g. `0.3` for +30%.
        markup: f64,
    },
}

/// One colluding group: who, and what they do.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryGroup {
    /// The colluding workers.
    pub members: Vec<WorkerId>,
    /// Their shared strategy.
    pub strategy: AdversaryStrategy,
}

/// The campaign's full adversary population.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryPlan {
    /// The colluding groups (a worker should appear in at most one).
    pub groups: Vec<AdversaryGroup>,
    /// Seed of every adversarial derived stream.
    pub seed: u64,
}

impl AdversaryPlan {
    /// The benign plan: no adversaries at all.
    pub fn none() -> AdversaryPlan {
        AdversaryPlan {
            groups: Vec::new(),
            seed: 0,
        }
    }

    /// Whether the plan contains no adversaries.
    pub fn is_benign(&self) -> bool {
        self.groups.is_empty()
    }

    /// Every adversarial worker, across all groups.
    pub fn members(&self) -> Vec<WorkerId> {
        let mut all: Vec<WorkerId> = self
            .groups
            .iter()
            .flat_map(|g| g.members.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Structural validation against a worker pool of size `num_workers`.
    ///
    /// # Errors
    ///
    /// [`McsError::WorkerOutOfRange`] for a member outside the pool,
    /// [`McsError::Solver`] for an invalid strategy parameter.
    pub fn validate(&self, num_workers: usize) -> Result<(), McsError> {
        for group in &self.groups {
            for &w in &group.members {
                if w.index() >= num_workers {
                    return Err(McsError::WorkerOutOfRange {
                        worker: w,
                        num_workers,
                    });
                }
            }
            match group.strategy {
                AdversaryStrategy::Sleeper { .. } => {}
                AdversaryStrategy::LabelFlipRing { flip_prob } => {
                    if !(flip_prob.is_finite() && (0.0..=1.0).contains(&flip_prob)) {
                        return Err(McsError::Solver {
                            message: format!("flip_prob {flip_prob} outside [0, 1]"),
                        });
                    }
                }
                AdversaryStrategy::BidCollusionRing { markup } => {
                    if !(markup.is_finite() && markup >= 0.0) {
                        return Err(McsError::Solver {
                            message: format!("markup {markup} negative or non-finite"),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies bid tampering for `round`: collusion-ring members' asks are
    /// inflated in the returned copy. `None` when no bid changes (so the
    /// benign path never clones the instance).
    ///
    /// # Errors
    ///
    /// Propagates [`Instance::with_bid`] validation errors.
    pub fn tamper_bids(
        &self,
        round: usize,
        instance: &Instance,
    ) -> Result<Option<Instance>, McsError> {
        let _ = round; // rings collude every round; the hook is per-round
        let mut tampered: Option<Instance> = None;
        for group in &self.groups {
            let AdversaryStrategy::BidCollusionRing { markup } = group.strategy else {
                continue;
            };
            for &w in &group.members {
                let base = tampered.as_ref().unwrap_or(instance);
                let bid = base.bids().bid(w);
                let inflated =
                    Price::from_f64(bid.price().as_f64() * (1.0 + markup)).min(base.cmax());
                if inflated == bid.price() {
                    continue;
                }
                let next = base.with_bid(w, Bid::new(bid.bundle().clone(), inflated))?;
                tampered = Some(next);
            }
        }
        Ok(tampered)
    }

    /// Applies label tampering for `round` to freshly generated labels:
    /// woken sleepers flip everything they submitted; flip rings flip the
    /// round's correlated task subset. Returns the number of labels
    /// flipped (zero leaves `labels` untouched).
    pub fn tamper_labels(&self, round: usize, labels: &mut LabelSet) -> usize {
        if self.is_benign() {
            return 0;
        }
        // Per (group, round) flip decision, shared across members.
        let mut flip_all: Vec<WorkerId> = Vec::new();
        let mut flip_tasks: Vec<(WorkerId, Vec<bool>)> = Vec::new();
        for (gi, group) in self.groups.iter().enumerate() {
            match group.strategy {
                AdversaryStrategy::Sleeper { honest_rounds } => {
                    if round >= honest_rounds {
                        flip_all.extend(group.members.iter().copied());
                    }
                }
                AdversaryStrategy::LabelFlipRing { flip_prob } => {
                    let salt = ((gi as u64) << 32) | round as u64;
                    let mut r = rng::derived(self.seed ^ ADVERSARY_STREAM, salt);
                    let subset: Vec<bool> = (0..labels.num_tasks())
                        .map(|_| r.gen_bool(flip_prob))
                        .collect();
                    for &w in &group.members {
                        flip_tasks.push((w, subset.clone()));
                    }
                }
                AdversaryStrategy::BidCollusionRing { .. } => {}
            }
        }
        if flip_all.is_empty() && flip_tasks.is_empty() {
            return 0;
        }
        let mut flipped = 0usize;
        let mut rebuilt = LabelSet::new(labels.num_tasks());
        for obs in labels.iter() {
            let mut label = obs.label;
            let flips = flip_all.contains(&obs.worker)
                || flip_tasks
                    .iter()
                    .any(|(w, subset)| *w == obs.worker && subset[obs.task.index()]);
            if flips {
                label = flip(label);
                flipped += 1;
            }
            rebuilt.push(Observation {
                worker: obs.worker,
                task: obs.task,
                label,
            });
        }
        if flipped > 0 {
            *labels = rebuilt;
        }
        flipped
    }
}

fn flip(label: Label) -> Label {
    match label {
        Label::Pos => Label::Neg,
        Label::Neg => Label::Pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_types::TaskId;

    fn labels_for(workers: &[u32], num_tasks: usize) -> LabelSet {
        let mut set = LabelSet::new(num_tasks);
        for &w in workers {
            for t in 0..num_tasks as u32 {
                set.push(Observation {
                    worker: WorkerId(w),
                    task: TaskId(t),
                    label: Label::Pos,
                });
            }
        }
        set
    }

    #[test]
    fn benign_plan_is_a_no_op() {
        let plan = AdversaryPlan::none();
        assert!(plan.is_benign());
        let mut labels = labels_for(&[0, 1], 3);
        let before = labels.clone();
        assert_eq!(plan.tamper_labels(0, &mut labels), 0);
        assert_eq!(labels, before);
    }

    #[test]
    fn sleeper_is_honest_then_flips_everything() {
        let plan = AdversaryPlan {
            groups: vec![AdversaryGroup {
                members: vec![WorkerId(1)],
                strategy: AdversaryStrategy::Sleeper { honest_rounds: 2 },
            }],
            seed: 9,
        };
        for round in 0..2 {
            let mut labels = labels_for(&[0, 1], 3);
            assert_eq!(plan.tamper_labels(round, &mut labels), 0, "round {round}");
        }
        let mut labels = labels_for(&[0, 1], 3);
        assert_eq!(plan.tamper_labels(2, &mut labels), 3);
        for obs in labels.iter() {
            let expected = if obs.worker == WorkerId(1) {
                Label::Neg
            } else {
                Label::Pos
            };
            assert_eq!(obs.label, expected);
        }
    }

    #[test]
    fn flip_ring_members_flip_the_same_tasks() {
        let plan = AdversaryPlan {
            groups: vec![AdversaryGroup {
                members: vec![WorkerId(0), WorkerId(1)],
                strategy: AdversaryStrategy::LabelFlipRing { flip_prob: 0.5 },
            }],
            seed: 4,
        };
        // Find a round where the subset is non-trivial, then check the
        // two members flipped identical task sets (the correlation).
        for round in 0..16 {
            let mut labels = labels_for(&[0, 1], 8);
            let flipped = plan.tamper_labels(round, &mut labels);
            assert_eq!(flipped % 2, 0, "both members flip together");
            let mut per_worker: [Vec<TaskId>; 2] = [Vec::new(), Vec::new()];
            for obs in labels.iter() {
                if obs.label == Label::Neg {
                    per_worker[obs.worker.index()].push(obs.task);
                }
            }
            assert_eq!(per_worker[0], per_worker[1], "round {round}");
        }
        // Determinism: the same round always flips the same subset.
        let mut a = labels_for(&[0, 1], 8);
        let mut b = labels_for(&[0, 1], 8);
        plan.tamper_labels(3, &mut a);
        plan.tamper_labels(3, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn collusion_ring_inflates_and_clamps_bids() {
        let g = crate::Setting::one(80).scaled_down(4).generate(2);
        let plan = AdversaryPlan {
            groups: vec![AdversaryGroup {
                members: vec![WorkerId(0), WorkerId(3)],
                strategy: AdversaryStrategy::BidCollusionRing { markup: 0.4 },
            }],
            seed: 1,
        };
        let tampered = plan.tamper_bids(0, &g.instance).unwrap().unwrap();
        for w in [WorkerId(0), WorkerId(3)] {
            let before = g.instance.bids().bid(w).price();
            let after = tampered.bids().bid(w).price();
            let want = Price::from_f64(before.as_f64() * 1.4).min(g.instance.cmax());
            assert_eq!(after, want);
            assert!(after >= before);
        }
        // Non-members untouched.
        assert_eq!(
            tampered.bids().bid(WorkerId(1)),
            g.instance.bids().bid(WorkerId(1))
        );
        // Zero markup is a no-op.
        let noop = AdversaryPlan {
            groups: vec![AdversaryGroup {
                members: vec![WorkerId(0)],
                strategy: AdversaryStrategy::BidCollusionRing { markup: 0.0 },
            }],
            seed: 1,
        };
        assert!(noop.tamper_bids(0, &g.instance).unwrap().is_none());
    }

    #[test]
    fn validation_catches_bad_members_and_parameters() {
        let plan = AdversaryPlan {
            groups: vec![AdversaryGroup {
                members: vec![WorkerId(99)],
                strategy: AdversaryStrategy::Sleeper { honest_rounds: 1 },
            }],
            seed: 0,
        };
        assert!(matches!(
            plan.validate(4),
            Err(McsError::WorkerOutOfRange { .. })
        ));
        let plan = AdversaryPlan {
            groups: vec![AdversaryGroup {
                members: vec![WorkerId(0)],
                strategy: AdversaryStrategy::LabelFlipRing { flip_prob: 1.5 },
            }],
            seed: 0,
        };
        assert!(plan.validate(4).is_err());
        let plan = AdversaryPlan {
            groups: vec![AdversaryGroup {
                members: vec![WorkerId(0)],
                strategy: AdversaryStrategy::BidCollusionRing { markup: -0.5 },
            }],
            seed: 0,
        };
        assert!(plan.validate(4).is_err());
        assert_eq!(
            AdversaryPlan {
                groups: vec![
                    AdversaryGroup {
                        members: vec![WorkerId(2), WorkerId(0)],
                        strategy: AdversaryStrategy::Sleeper { honest_rounds: 0 },
                    },
                    AdversaryGroup {
                        members: vec![WorkerId(2)],
                        strategy: AdversaryStrategy::LabelFlipRing { flip_prob: 0.1 },
                    },
                ],
                seed: 0,
            }
            .members(),
            vec![WorkerId(0), WorkerId(2)]
        );
    }
}
