//! The shared round-lifecycle state machine.
//!
//! Every multi-round surface in the workspace walks the same lifecycle —
//! the batch platform loop ([`crate::platform::run_round`] and its
//! fault-tolerant sibling), the campaign engine, and the service's durable
//! ledger and stream folds. Before this module each of them hand-rolled
//! its own phase bookkeeping; now they all drive one [`RoundState`]
//! machine, so the set of legal transitions (and the wire names of the
//! phases) is written down exactly once:
//!
//! ```text
//!             ┌───────────┐  commit   ┌───────────┐  settle  ┌─────────┐
//!  batch:     │   Open    ├──────────►│ Committed ├─────────►│ Settled │
//!             └─────┬─────┘           └───────────┘          └─────────┘
//!                   │ abort
//!                   ▼
//!             ┌───────────┐
//!             │  Aborted  │◄──────────────┐
//!             └───────────┘               │ abort
//!                                         │
//!             ┌───────────┐  close   ┌────┴──────┐
//!  streaming: │ Streaming ├─────────►│  Closed   │
//!             └───────────┘          └───────────┘
//! ```
//!
//! A committed round can no longer abort: its payments are durable and the
//! only way out is settlement — exactly the invariant the service's
//! write-ahead log enforces, now shared with the simulator.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Where a round is in its lifecycle (batch and streaming rounds share
/// one namespace; a given round only ever walks one of the two columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoundPhase {
    /// A batch round accepting bids; the auction has not cleared yet.
    Open,
    /// A streaming round accepting arrivals one at a time.
    Streaming,
    /// The auction cleared: seed, price and winners are fixed and the
    /// payment obligations are durable. Settlement is the only exit.
    Committed,
    /// Labels aggregated, payments issued — terminal success of a batch
    /// round.
    Settled,
    /// The arrival stream drained and the accepted set is final —
    /// terminal success of a streaming round.
    Closed,
    /// The round was abandoned before any payment became durable —
    /// terminal failure.
    Aborted,
}

impl RoundPhase {
    /// The stable wire name, shared by every status view in the
    /// workspace: `"open"`, `"streaming"`, `"committed"`, `"settled"`,
    /// `"closed"`, or `"aborted"`.
    pub const fn name(self) -> &'static str {
        match self {
            RoundPhase::Open => "open",
            RoundPhase::Streaming => "streaming",
            RoundPhase::Committed => "committed",
            RoundPhase::Settled => "settled",
            RoundPhase::Closed => "closed",
            RoundPhase::Aborted => "aborted",
        }
    }

    /// Parses a wire name back into a phase.
    pub fn from_name(name: &str) -> Option<RoundPhase> {
        Some(match name {
            "open" => RoundPhase::Open,
            "streaming" => RoundPhase::Streaming,
            "committed" => RoundPhase::Committed,
            "settled" => RoundPhase::Settled,
            "closed" => RoundPhase::Closed,
            "aborted" => RoundPhase::Aborted,
            _ => return None,
        })
    }

    /// Whether the round has reached a terminal phase.
    pub const fn is_terminal(self) -> bool {
        matches!(
            self,
            RoundPhase::Settled | RoundPhase::Closed | RoundPhase::Aborted
        )
    }

    /// Whether the machine admits the transition `self → to`.
    ///
    /// The legal transitions are exactly the arrows in the module-level
    /// diagram; in particular `Committed → Aborted` is *not* one of them
    /// (committed payments are durable).
    pub const fn can_advance_to(self, to: RoundPhase) -> bool {
        matches!(
            (self, to),
            (RoundPhase::Open, RoundPhase::Committed)
                | (RoundPhase::Open, RoundPhase::Aborted)
                | (RoundPhase::Committed, RoundPhase::Settled)
                | (RoundPhase::Streaming, RoundPhase::Closed)
                | (RoundPhase::Streaming, RoundPhase::Aborted)
        )
    }
}

impl fmt::Display for RoundPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Serialize for RoundPhase {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

impl Deserialize for RoundPhase {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => RoundPhase::from_name(s)
                .ok_or_else(|| DeError::custom(format!("unknown round phase {s:?}"))),
            _ => Err(DeError::expected("round phase name", v)),
        }
    }
}

/// A violation of the round lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseError {
    /// An `advance` was requested that the machine does not admit.
    InvalidTransition {
        /// The phase the round was in.
        from: RoundPhase,
        /// The phase the caller tried to move to.
        to: RoundPhase,
    },
    /// An operation required a specific phase and found another.
    WrongPhase {
        /// The phase the operation requires.
        expected: RoundPhase,
        /// The phase the round is actually in.
        actual: RoundPhase,
    },
}

impl fmt::Display for PhaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseError::InvalidTransition { from, to } => {
                write!(f, "illegal round transition {from} -> {to}")
            }
            PhaseError::WrongPhase { expected, actual } => {
                write!(f, "round is {actual}, operation requires {expected}")
            }
        }
    }
}

impl std::error::Error for PhaseError {}

/// The round-lifecycle machine itself: a current [`RoundPhase`] plus the
/// legality rules. Cheap to copy; every holder folds its own payload
/// (winners, receipts, reports) around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundState {
    phase: RoundPhase,
}

impl RoundState {
    /// A fresh batch round, in [`RoundPhase::Open`].
    pub const fn batch() -> RoundState {
        RoundState {
            phase: RoundPhase::Open,
        }
    }

    /// A fresh streaming round, in [`RoundPhase::Streaming`].
    pub const fn streaming() -> RoundState {
        RoundState {
            phase: RoundPhase::Streaming,
        }
    }

    /// Resumes a machine at a known phase (e.g. a ledger fold replaying a
    /// write-ahead log).
    pub const fn resume(phase: RoundPhase) -> RoundState {
        RoundState { phase }
    }

    /// The current phase.
    pub const fn phase(&self) -> RoundPhase {
        self.phase
    }

    /// Whether the round has reached a terminal phase.
    pub const fn is_terminal(&self) -> bool {
        self.phase.is_terminal()
    }

    /// Advances to `to`, returning the phase the machine left.
    ///
    /// # Errors
    ///
    /// [`PhaseError::InvalidTransition`] when the lifecycle does not admit
    /// `current → to`; the machine is left unchanged.
    pub fn advance(&mut self, to: RoundPhase) -> Result<RoundPhase, PhaseError> {
        if !self.phase.can_advance_to(to) {
            return Err(PhaseError::InvalidTransition {
                from: self.phase,
                to,
            });
        }
        let from = self.phase;
        self.phase = to;
        Ok(from)
    }

    /// Requires the machine to be in `expected`.
    ///
    /// # Errors
    ///
    /// [`PhaseError::WrongPhase`] otherwise.
    pub fn expect(&self, expected: RoundPhase) -> Result<(), PhaseError> {
        if self.phase != expected {
            return Err(PhaseError::WrongPhase {
                expected,
                actual: self.phase,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [RoundPhase; 6] = [
        RoundPhase::Open,
        RoundPhase::Streaming,
        RoundPhase::Committed,
        RoundPhase::Settled,
        RoundPhase::Closed,
        RoundPhase::Aborted,
    ];

    #[test]
    fn batch_walks_the_happy_path() {
        let mut s = RoundState::batch();
        assert_eq!(s.phase(), RoundPhase::Open);
        s.expect(RoundPhase::Open).unwrap();
        assert_eq!(s.advance(RoundPhase::Committed).unwrap(), RoundPhase::Open);
        assert_eq!(
            s.advance(RoundPhase::Settled).unwrap(),
            RoundPhase::Committed
        );
        assert!(s.is_terminal());
    }

    #[test]
    fn committed_rounds_cannot_abort() {
        let mut s = RoundState::batch();
        s.advance(RoundPhase::Committed).unwrap();
        let err = s.advance(RoundPhase::Aborted).unwrap_err();
        assert_eq!(
            err,
            PhaseError::InvalidTransition {
                from: RoundPhase::Committed,
                to: RoundPhase::Aborted,
            }
        );
        // The machine is untouched by the refused transition.
        assert_eq!(s.phase(), RoundPhase::Committed);
    }

    #[test]
    fn streaming_closes_or_aborts_and_then_stops() {
        let mut s = RoundState::streaming();
        s.advance(RoundPhase::Closed).unwrap();
        assert!(s.is_terminal());
        for to in ALL {
            assert!(s.advance(to).is_err(), "terminal phase advanced to {to}");
        }
        let mut s = RoundState::streaming();
        s.advance(RoundPhase::Aborted).unwrap();
        assert!(s.is_terminal());
    }

    #[test]
    fn batch_and_streaming_columns_do_not_cross() {
        assert!(!RoundPhase::Open.can_advance_to(RoundPhase::Closed));
        assert!(!RoundPhase::Streaming.can_advance_to(RoundPhase::Committed));
        assert!(!RoundPhase::Open.can_advance_to(RoundPhase::Settled));
        assert!(!RoundPhase::Streaming.can_advance_to(RoundPhase::Settled));
    }

    #[test]
    fn wrong_phase_is_a_typed_error() {
        let s = RoundState::streaming();
        assert_eq!(
            s.expect(RoundPhase::Open).unwrap_err(),
            PhaseError::WrongPhase {
                expected: RoundPhase::Open,
                actual: RoundPhase::Streaming,
            }
        );
    }

    #[test]
    fn names_round_trip_and_serde_uses_them() {
        for p in ALL {
            assert_eq!(RoundPhase::from_name(p.name()), Some(p));
            let json = serde_json::to_string(&p).unwrap();
            assert_eq!(json, format!("\"{}\"", p.name()));
            let back: RoundPhase = serde_json::from_str(&json).unwrap();
            assert_eq!(back, p);
        }
        assert_eq!(RoundPhase::from_name("vanished"), None);
        assert!(serde_json::from_str::<RoundPhase>("\"vanished\"").is_err());
    }
}
