//! Adversarial multi-round campaigns over the shared round lifecycle.
//!
//! This module is the simulator's "deployed platform" layer. Where
//! [`crate::platform`] runs one honest round at a time, a campaign runs
//! many rounds against workers who may be *strategic*: sleeper agents
//! that turn after a warm-up, correlated label-flip rings, and
//! bid-collusion rings. The platform fights back with two estimators it
//! can actually maintain in deployment:
//!
//! * a [`mcs_agg::SkillTracker`] (warm-restarted Dawid–Skene with
//!   exponential forgetting, blended with gold estimates) replacing the
//!   oracle skill matrix with per-round estimates `θ̂`, and
//! * a [`ReputationBook`] scoring each worker's agreement with the
//!   aggregate (plus no-show / envelope-rejection penalties) and gating
//!   the admitted-worker set fed to the schedule engine.
//!
//! The per-round lifecycle itself — open, commit, settle, abort — is the
//! [`state::RoundState`] machine, shared with the batch platform loop and
//! the service's durable ledger and stream folds, so there is exactly one
//! definition of which transitions a round may take.
//!
//! Everything adversarial draws from derived RNG streams keyed off the
//! plan seed (the same discipline as [`crate::faults`]): a campaign with
//! a benign plan consumes the main RNG stream *identically* to the legacy
//! [`crate::platform::Campaign::run`] loop, which is what the
//! `campaign_equivalence` differential suite in `mcs-verify` pins.

mod adversary;
mod engine;
mod reputation;
pub mod state;

pub use adversary::{AdversaryGroup, AdversaryPlan, AdversaryStrategy};
pub use engine::{
    run_campaign, CampaignOutcome, CampaignSpec, DpAuditConfig, DpAuditReport, SkillSource,
};
pub use reputation::{ReputationBook, ReputationConfig, ReputationEvent};
pub use state::{PhaseError, RoundPhase, RoundState};
