//! Worker fault model: reproducible injection of dropout, stragglers and
//! corrupted reports into a platform round.
//!
//! The paper's guarantees assume every auction winner delivers labels for
//! its whole bundle; real mobile-crowd-sensing workers do not. This module
//! models the four failure classes the fault-tolerant round engine
//! ([`crate::platform::run_round_resilient`]) must survive:
//!
//! * **no-show** — the worker never submits anything;
//! * **partial dropout** — a fraction of the bundle is never labelled;
//! * **straggler** — the full bundle arrives, but late (and past the
//!   platform's deadline it counts as missing);
//! * **corrupted reports** — a fraction of labels is flipped (the worker
//!   misreports, maliciously or through sensor error).
//!
//! Fault assignment is driven by a dedicated RNG stream derived from the
//! plan's seed, per `(phase, worker)` — never from the round's main RNG —
//! so every failure scenario is reproducible, fault draws are independent
//! of how much randomness the auction itself consumed, and an empty plan
//! leaves the main RNG stream byte-for-byte identical to a fault-free run.

use rand::Rng;
use serde::{DeError, Deserialize, Serialize, Value};

use mcs_agg::{LabelSet, Observation};
use mcs_num::rng;
use mcs_types::{Bundle, CompletionModel, McsError, TaskId, WorkerId};

/// A reproducible description of the faults to inject into a round.
///
/// Rates are probabilities in `[0, 1]`; a single uniform draw per worker
/// picks at most one fault class (cumulative over `no_show_rate`,
/// `partial_dropout_rate`, `straggler_rate`, `flip_rate`, in that order),
/// so the four rates must sum to at most 1.
///
/// # Examples
///
/// ```
/// use mcs_sim::faults::FaultPlan;
///
/// let plan = FaultPlan::no_show(0.3, 42);
/// assert!(plan.validate().is_ok());
/// assert!(!plan.is_empty());
/// assert!(FaultPlan::none().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability a worker submits nothing at all.
    pub no_show_rate: f64,
    /// Probability a worker delivers only part of its bundle.
    pub partial_dropout_rate: f64,
    /// Expected fraction of the bundle dropped by a partial worker
    /// (each bundle task is dropped independently; at least one survives
    /// and at least one is dropped, otherwise the fault degenerates).
    pub dropout_fraction: f64,
    /// Probability a worker delivers late.
    pub straggler_rate: f64,
    /// Inclusive range of straggler delays, in abstract platform ticks.
    /// Compared against the round's deadline budget.
    pub straggler_delay: (u32, u32),
    /// Probability a worker's reports are corrupted.
    pub flip_rate: f64,
    /// Probability each label of a corrupted worker is flipped.
    pub flip_fraction: f64,
    /// Seed of the dedicated fault stream.
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan: no faults, any seed. A round run under this plan is
    /// byte-for-byte the happy-path round.
    pub fn none() -> Self {
        FaultPlan {
            no_show_rate: 0.0,
            partial_dropout_rate: 0.0,
            dropout_fraction: 0.5,
            straggler_rate: 0.0,
            straggler_delay: (1, 1),
            flip_rate: 0.0,
            flip_fraction: 0.5,
            seed: 0,
        }
    }

    /// A plan with only full no-shows at the given rate.
    pub fn no_show(rate: f64, seed: u64) -> Self {
        FaultPlan {
            no_show_rate: rate,
            seed,
            ..FaultPlan::none()
        }
    }

    /// Returns `true` if the plan can never perturb a round.
    pub fn is_empty(&self) -> bool {
        self.no_show_rate <= 0.0
            && self.partial_dropout_rate <= 0.0
            && self.straggler_rate <= 0.0
            && self.flip_rate <= 0.0
    }

    /// Validates rates, fractions and the delay range.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::Solver`] with a descriptive message when a rate
    /// or fraction falls outside `[0, 1]`, the four fault rates sum above
    /// 1, or the straggler delay range is empty (no dedicated error
    /// variant is warranted for a simulation-only knob).
    pub fn validate(&self) -> Result<(), McsError> {
        let rates = [
            ("no_show_rate", self.no_show_rate),
            ("partial_dropout_rate", self.partial_dropout_rate),
            ("straggler_rate", self.straggler_rate),
            ("flip_rate", self.flip_rate),
            ("dropout_fraction", self.dropout_fraction),
            ("flip_fraction", self.flip_fraction),
        ];
        for (name, v) in rates {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(McsError::Solver {
                    message: format!("fault plan field {name} = {v} is outside [0, 1]"),
                });
            }
        }
        let total =
            self.no_show_rate + self.partial_dropout_rate + self.straggler_rate + self.flip_rate;
        if total > 1.0 + 1e-12 {
            return Err(McsError::Solver {
                message: format!("fault plan rates sum to {total} > 1"),
            });
        }
        if self.straggler_delay.0 > self.straggler_delay.1 {
            return Err(McsError::Solver {
                message: format!(
                    "fault plan straggler_delay range ({}, {}) is empty",
                    self.straggler_delay.0, self.straggler_delay.1
                ),
            });
        }
        Ok(())
    }
}

/// What actually happened to one worker's submission in one phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFate {
    /// Full bundle delivered on time, labels as reported.
    Delivered,
    /// Nothing was submitted.
    NoShow,
    /// The worker *did* show up — the platform saw an attempt — but every
    /// task in the bundle failed (sampled non-completion), so nothing was
    /// delivered. Payment and coverage treat this exactly like
    /// [`WorkerFate::NoShow`]; reputation does not: absence and failure
    /// are different signals about a worker.
    ShowedButFailed,
    /// The listed bundle tasks were never labelled; the rest arrived on
    /// time.
    Partial {
        /// Tasks whose labels were dropped.
        dropped: Vec<TaskId>,
    },
    /// The full bundle arrived `delay` ticks after the round started.
    Straggler {
        /// Arrival delay in platform ticks.
        delay: u32,
    },
    /// The full bundle arrived on time but the listed labels were flipped.
    Corrupted {
        /// Tasks whose labels were flipped.
        flipped: Vec<TaskId>,
    },
}

// Hand-written serde (the vendored derive does not support enums):
// externally tagged as `{"fate": "...", ...payload}`.
impl Serialize for WorkerFate {
    fn to_value(&self) -> Value {
        let mut fields = vec![(
            "fate".to_string(),
            Value::String(
                match self {
                    WorkerFate::Delivered => "delivered",
                    WorkerFate::NoShow => "no_show",
                    WorkerFate::ShowedButFailed => "showed_but_failed",
                    WorkerFate::Partial { .. } => "partial",
                    WorkerFate::Straggler { .. } => "straggler",
                    WorkerFate::Corrupted { .. } => "corrupted",
                }
                .to_string(),
            ),
        )];
        match self {
            WorkerFate::Partial { dropped } => {
                fields.push(("dropped".to_string(), dropped.to_value()));
            }
            WorkerFate::Straggler { delay } => {
                fields.push(("delay".to_string(), delay.to_value()));
            }
            WorkerFate::Corrupted { flipped } => {
                fields.push(("flipped".to_string(), flipped.to_value()));
            }
            WorkerFate::Delivered | WorkerFate::NoShow | WorkerFate::ShowedButFailed => {}
        }
        Value::Object(fields)
    }
}

impl Deserialize for WorkerFate {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let tag = String::from_value(
            v.get("fate")
                .ok_or_else(|| DeError::missing_field("fate"))?,
        )?;
        let field = |name: &'static str| v.get(name).ok_or_else(|| DeError::missing_field(name));
        match tag.as_str() {
            "delivered" => Ok(WorkerFate::Delivered),
            "no_show" => Ok(WorkerFate::NoShow),
            "showed_but_failed" => Ok(WorkerFate::ShowedButFailed),
            "partial" => Ok(WorkerFate::Partial {
                dropped: Vec::<TaskId>::from_value(field("dropped")?)?,
            }),
            "straggler" => Ok(WorkerFate::Straggler {
                delay: u32::from_value(field("delay")?)?,
            }),
            "corrupted" => Ok(WorkerFate::Corrupted {
                flipped: Vec::<TaskId>::from_value(field("flipped")?)?,
            }),
            other => Err(DeError::custom(format!("unknown worker fate `{other}`"))),
        }
    }
}

impl WorkerFate {
    /// Whether the worker's *complete* bundle reached the platform within
    /// `deadline` ticks — the condition for being paid.
    ///
    /// Corruption is not detectable by the platform (it has no ground
    /// truth), so corrupted-but-complete submissions still count.
    pub fn delivered_in_full(&self, deadline: u32) -> bool {
        match self {
            WorkerFate::Delivered | WorkerFate::Corrupted { .. } => true,
            WorkerFate::Straggler { delay } => *delay <= deadline,
            WorkerFate::NoShow | WorkerFate::ShowedButFailed | WorkerFate::Partial { .. } => false,
        }
    }

    /// Whether any of the worker's labels reached the platform in time.
    pub fn delivered_anything(&self, deadline: u32) -> bool {
        match self {
            WorkerFate::NoShow | WorkerFate::ShowedButFailed => false,
            WorkerFate::Partial { dropped: _ } => true,
            _ => self.delivered_in_full(deadline),
        }
    }

    /// Whether the worker participated at all — delivered, attempted, or
    /// failed *while trying*. Only [`WorkerFate::NoShow`] is `false`: the
    /// distinction reputation systems care about.
    pub fn showed_up(&self) -> bool {
        !matches!(self, WorkerFate::NoShow)
    }
}

/// Per-fate tally of one phase's assignment — the accounting shape
/// reputation and degradation reports consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FateCounts {
    /// Full on-time deliveries.
    pub delivered: usize,
    /// Workers who never showed.
    pub no_show: usize,
    /// Workers who showed but whose whole bundle failed.
    pub showed_but_failed: usize,
    /// Partial deliveries.
    pub partial: usize,
    /// Stragglers (any delay).
    pub straggler: usize,
    /// Corrupted-but-complete submissions.
    pub corrupted: usize,
}

impl FateCounts {
    /// Tallies a fate slice.
    pub fn tally(fates: &[(WorkerId, WorkerFate)]) -> FateCounts {
        let mut c = FateCounts::default();
        for (_, f) in fates {
            match f {
                WorkerFate::Delivered => c.delivered += 1,
                WorkerFate::NoShow => c.no_show += 1,
                WorkerFate::ShowedButFailed => c.showed_but_failed += 1,
                WorkerFate::Partial { .. } => c.partial += 1,
                WorkerFate::Straggler { .. } => c.straggler += 1,
                WorkerFate::Corrupted { .. } => c.corrupted += 1,
            }
        }
        c
    }

    /// Adds another tally into this one (e.g. a backfill phase's fates on
    /// top of the primary round's).
    pub fn absorb(&mut self, other: &FateCounts) {
        self.delivered += other.delivered;
        self.no_show += other.no_show;
        self.showed_but_failed += other.showed_but_failed;
        self.partial += other.partial;
        self.straggler += other.straggler;
        self.corrupted += other.corrupted;
    }
}

/// A per-task coverage shortfall surviving after backfill: the typed
/// "what degraded and by how much" record of a [`DegradedRoundReport`]
/// (see [`crate::platform`]).
///
/// [`DegradedRoundReport`]: crate::platform::DegradedRoundReport
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageShortfall {
    /// The under-covered task.
    pub task: TaskId,
    /// Required coverage `Q_j = 2 ln(1/δ_j)`.
    pub required: f64,
    /// Coverage `Σ q_ij` actually achieved by surviving reports.
    pub achieved: f64,
}

impl From<CoverageShortfall> for McsError {
    fn from(s: CoverageShortfall) -> McsError {
        McsError::CoverageShortfall {
            task: s.task,
            required: s.required,
            achieved: s.achieved,
        }
    }
}

/// Deterministically assigns fates to workers according to a [`FaultPlan`].
///
/// Fate draws are keyed by `(seed, phase, worker)`, so they are independent
/// of iteration order, of the main round RNG, and of one another.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wraps a validated plan.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::validate`] errors.
    pub fn new(plan: FaultPlan) -> Result<Self, McsError> {
        plan.validate()?;
        Ok(FaultInjector { plan })
    }

    /// The wrapped plan.
    #[inline]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draws the fate of one worker's submission in one phase (phase 0 is
    /// the primary round; backfill rounds count up from 1).
    pub fn fate_of(&self, phase: u32, worker: WorkerId, bundle: &Bundle) -> WorkerFate {
        if self.plan.is_empty() {
            return WorkerFate::Delivered;
        }
        let salt = ((phase as u64) << 32) | worker.0 as u64;
        let mut r = rng::derived(self.plan.seed, salt);
        let u: f64 = r.gen();
        let p = &self.plan;
        if u < p.no_show_rate {
            return WorkerFate::NoShow;
        }
        if u < p.no_show_rate + p.partial_dropout_rate {
            let mut dropped: Vec<TaskId> = bundle
                .iter()
                .filter(|_| r.gen_bool(p.dropout_fraction.clamp(0.0, 1.0)))
                .collect();
            // A degenerate draw collapses to the nearest non-degenerate
            // fault: dropping everything is a no-show, dropping nothing is
            // a delivery.
            if dropped.len() == bundle.len() {
                return WorkerFate::NoShow;
            }
            if dropped.is_empty() {
                if let Some(first) = bundle.iter().next() {
                    dropped.push(first);
                } else {
                    return WorkerFate::Delivered;
                }
                if dropped.len() == bundle.len() {
                    return WorkerFate::NoShow;
                }
            }
            return WorkerFate::Partial { dropped };
        }
        if u < p.no_show_rate + p.partial_dropout_rate + p.straggler_rate {
            let (lo, hi) = p.straggler_delay;
            let delay = if lo >= hi { lo } else { r.gen_range(lo..=hi) };
            return WorkerFate::Straggler { delay };
        }
        if u < p.no_show_rate + p.partial_dropout_rate + p.straggler_rate + p.flip_rate {
            let flipped: Vec<TaskId> = bundle
                .iter()
                .filter(|_| r.gen_bool(p.flip_fraction.clamp(0.0, 1.0)))
                .collect();
            if flipped.is_empty() {
                return WorkerFate::Delivered;
            }
            return WorkerFate::Corrupted { flipped };
        }
        WorkerFate::Delivered
    }

    /// Draws fates for a whole assignment (one phase).
    pub fn fates_for(
        &self,
        phase: u32,
        assignment: &[(WorkerId, Bundle)],
    ) -> Vec<(WorkerId, WorkerFate)> {
        assignment
            .iter()
            .map(|(w, b)| (*w, self.fate_of(phase, *w, b)))
            .collect()
    }
}

/// Applies fates to the labels a phase *would* have produced, returning
/// only what the platform actually receives within `deadline` ticks.
///
/// Labels from workers without a fate entry pass through unchanged (they
/// were not part of this phase's assignment).
pub fn filter_labels(
    labels: &LabelSet,
    fates: &[(WorkerId, WorkerFate)],
    deadline: u32,
) -> LabelSet {
    let fate_of = |w: WorkerId| fates.iter().find(|(fw, _)| *fw == w).map(|(_, f)| f);
    let mut delivered = LabelSet::new(labels.num_tasks());
    for obs in labels.iter() {
        let kept = match fate_of(obs.worker) {
            None | Some(WorkerFate::Delivered) => Some(obs.label),
            Some(WorkerFate::NoShow) | Some(WorkerFate::ShowedButFailed) => None,
            Some(WorkerFate::Straggler { delay }) => (*delay <= deadline).then_some(obs.label),
            Some(WorkerFate::Partial { dropped }) => {
                (!dropped.contains(&obs.task)).then_some(obs.label)
            }
            Some(WorkerFate::Corrupted { flipped }) => Some(if flipped.contains(&obs.task) {
                -obs.label
            } else {
                obs.label
            }),
        };
        if let Some(label) = kept {
            delivered.push(Observation { label, ..obs });
        }
    }
    delivered
}

/// The achieved error bound `δ̂_j = exp(−C_j / 2)` implied by coverage
/// `C_j` (the inverse of Lemma 1's `Q_j = 2 ln(1/δ_j)`).
///
/// Zero coverage yields `δ̂ = 1`: no guarantee at all.
#[inline]
pub fn achieved_delta(coverage: f64) -> f64 {
    (-coverage.max(0.0) / 2.0).exp()
}

/// Salt XORed into the plan seed for completion draws, so Bernoulli
/// task-completion sampling and fault-fate sampling come from disjoint
/// RNG streams even for the same `(phase, worker)`.
const COMPLETION_STREAM: u64 = 0x434F_4D50_4C45_5445; // "COMPLETE"

/// Samples Bernoulli task completions for an uncertain
/// [`CompletionModel`] and folds the sampled non-completions into worker
/// fates.
///
/// Under [`CompletionModel::Deterministic`] — or a Bernoulli model with
/// every `p = 1` — this is a no-op that draws nothing, so the resilient
/// round stays byte-identical to its pre-uncertainty behaviour. Draws are
/// keyed by `(seed ^ COMPLETION_STREAM, phase, worker)`, mirroring
/// [`FaultInjector::fate_of`]: independent of iteration order, of the
/// round's main RNG, and of the fault draws themselves.
#[derive(Debug, Clone)]
pub struct CompletionSampler<'a> {
    model: &'a CompletionModel,
    seed: u64,
}

impl<'a> CompletionSampler<'a> {
    /// Wraps a completion model and the round's fault seed.
    pub fn new(model: &'a CompletionModel, seed: u64) -> Self {
        CompletionSampler { model, seed }
    }

    /// The tasks of `bundle` worker `worker` fails to complete in `phase`
    /// (ascending task order). Only entries with `p < 1` consume
    /// randomness, so adding certain tasks never shifts draws.
    pub fn failed_tasks(&self, phase: u32, worker: WorkerId, bundle: &Bundle) -> Vec<TaskId> {
        if !self.model.is_uncertain() {
            return Vec::new();
        }
        let uncertain: Vec<(TaskId, f64)> = bundle
            .iter()
            .filter_map(|t| {
                let p = self.model.p(worker, t);
                (p < 1.0).then_some((t, p))
            })
            .collect();
        if uncertain.is_empty() {
            return Vec::new();
        }
        let salt = ((phase as u64) << 32) | worker.0 as u64;
        let mut r = rng::derived(self.seed ^ COMPLETION_STREAM, salt);
        uncertain
            .into_iter()
            .filter(|&(_, p)| !r.gen_bool(p))
            .map(|(t, _)| t)
            .collect()
    }

    /// Merges sampled non-completions into already-drawn fates for a whole
    /// assignment: a worker's failed tasks count exactly like dropped
    /// tasks — [`WorkerFate::ShowedButFailed`] where the whole bundle
    /// fails.
    ///
    /// Precedence: a failed task supersedes whatever else would have
    /// happened to it, so `Delivered`/on-time `Straggler`/`Corrupted`
    /// fates demote to [`WorkerFate::Partial`] over the surviving tasks
    /// (corruption flips on survivors are not re-modelled — the failed
    /// tasks simply never produce a label), and a full-bundle failure —
    /// directly or as a `Partial` union covering the bundle — becomes
    /// [`WorkerFate::ShowedButFailed`]: the worker participated, unlike a
    /// [`WorkerFate::NoShow`], even though nothing arrived. Payment and
    /// coverage accounting are identical for the two; reputation is not.
    /// `NoShow` and past-deadline stragglers deliver nothing either way
    /// and are left untouched.
    pub fn apply(
        &self,
        phase: u32,
        assignment: &[(WorkerId, Bundle)],
        fates: Vec<(WorkerId, WorkerFate)>,
        deadline: u32,
    ) -> Vec<(WorkerId, WorkerFate)> {
        if !self.model.is_uncertain() {
            return fates;
        }
        fates
            .into_iter()
            .map(|(w, fate)| {
                let Some((_, bundle)) = assignment.iter().find(|(aw, _)| *aw == w) else {
                    return (w, fate);
                };
                let failed = self.failed_tasks(phase, w, bundle);
                (w, merge_non_completions(fate, failed, bundle, deadline))
            })
            .collect()
    }
}

fn merge_non_completions(
    fate: WorkerFate,
    failed: Vec<TaskId>,
    bundle: &Bundle,
    deadline: u32,
) -> WorkerFate {
    if failed.is_empty() {
        return fate;
    }
    match fate {
        WorkerFate::NoShow => WorkerFate::NoShow,
        WorkerFate::ShowedButFailed => WorkerFate::ShowedButFailed,
        WorkerFate::Straggler { delay } if delay > deadline => WorkerFate::Straggler { delay },
        WorkerFate::Partial { mut dropped } => {
            for t in failed {
                if !dropped.contains(&t) {
                    dropped.push(t);
                }
            }
            dropped.sort_unstable_by_key(|t| t.0);
            if dropped.len() == bundle.len() {
                WorkerFate::ShowedButFailed
            } else {
                WorkerFate::Partial { dropped }
            }
        }
        WorkerFate::Delivered | WorkerFate::Straggler { .. } | WorkerFate::Corrupted { .. } => {
            if failed.len() == bundle.len() {
                WorkerFate::ShowedButFailed
            } else {
                WorkerFate::Partial { dropped: failed }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_agg::Label;
    use mcs_types::Bundle;

    fn bundle(tasks: &[u32]) -> Bundle {
        Bundle::new(tasks.iter().map(|&t| TaskId(t)).collect())
    }

    fn obs(w: u32, t: u32, l: Label) -> Observation {
        Observation {
            worker: WorkerId(w),
            task: TaskId(t),
            label: l,
        }
    }

    #[test]
    fn empty_plan_never_faults() {
        let inj = FaultInjector::new(FaultPlan::none()).unwrap();
        for w in 0..50 {
            assert_eq!(
                inj.fate_of(0, WorkerId(w), &bundle(&[0, 1, 2])),
                WorkerFate::Delivered
            );
        }
    }

    #[test]
    fn fates_are_deterministic_and_phase_dependent() {
        let plan = FaultPlan {
            no_show_rate: 0.25,
            partial_dropout_rate: 0.25,
            straggler_rate: 0.25,
            flip_rate: 0.25,
            seed: 7,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan).unwrap();
        let b = bundle(&[0, 1, 2, 3]);
        let first: Vec<WorkerFate> = (0..20).map(|w| inj.fate_of(0, WorkerId(w), &b)).collect();
        let second: Vec<WorkerFate> = (0..20).map(|w| inj.fate_of(0, WorkerId(w), &b)).collect();
        assert_eq!(first, second);
        let other_phase: Vec<WorkerFate> =
            (0..20).map(|w| inj.fate_of(1, WorkerId(w), &b)).collect();
        assert_ne!(first, other_phase, "phases share a fault stream");
    }

    #[test]
    fn no_show_rate_one_drops_everyone() {
        let inj = FaultInjector::new(FaultPlan::no_show(1.0, 3)).unwrap();
        for w in 0..20 {
            assert_eq!(
                inj.fate_of(0, WorkerId(w), &bundle(&[0])),
                WorkerFate::NoShow
            );
        }
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let mut p = FaultPlan::none();
        p.no_show_rate = -0.1;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.no_show_rate = 0.7;
        p.flip_rate = 0.5;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.straggler_delay = (5, 2);
        assert!(p.validate().is_err());
        assert!(FaultInjector::new(p).is_err());
    }

    #[test]
    fn filter_respects_each_fate() {
        let labels: LabelSet = [
            obs(0, 0, Label::Pos),
            obs(1, 0, Label::Pos),
            obs(2, 0, Label::Pos),
            obs(2, 1, Label::Neg),
            obs(3, 1, Label::Pos),
            obs(4, 1, Label::Neg),
        ]
        .into_iter()
        .collect();
        let fates = vec![
            (WorkerId(0), WorkerFate::NoShow),
            (WorkerId(1), WorkerFate::Straggler { delay: 99 }),
            (
                WorkerId(2),
                WorkerFate::Partial {
                    dropped: vec![TaskId(1)],
                },
            ),
            (
                WorkerId(3),
                WorkerFate::Corrupted {
                    flipped: vec![TaskId(1)],
                },
            ),
            // Worker 4 has no fate entry: passes through.
        ];
        let delivered = filter_labels(&labels, &fates, 10);
        // Worker 0 gone, worker 1 too late, worker 2 keeps task 0 only,
        // worker 3's task-1 label flipped, worker 4 untouched.
        assert_eq!(delivered.for_task(TaskId(0)), &[(WorkerId(2), Label::Pos)]);
        assert_eq!(
            delivered.for_task(TaskId(1)),
            &[(WorkerId(3), Label::Neg), (WorkerId(4), Label::Neg)]
        );
        // A generous deadline lets the straggler in.
        let relaxed = filter_labels(&labels, &fates, 100);
        assert_eq!(
            relaxed.for_task(TaskId(0)),
            &[(WorkerId(1), Label::Pos), (WorkerId(2), Label::Pos)]
        );
    }

    #[test]
    fn delivery_predicates() {
        assert!(WorkerFate::Delivered.delivered_in_full(0));
        assert!(!WorkerFate::NoShow.delivered_anything(10));
        assert!(WorkerFate::Straggler { delay: 5 }.delivered_in_full(5));
        assert!(!WorkerFate::Straggler { delay: 6 }.delivered_in_full(5));
        let partial = WorkerFate::Partial {
            dropped: vec![TaskId(0)],
        };
        assert!(!partial.delivered_in_full(10));
        assert!(partial.delivered_anything(10));
        assert!(WorkerFate::Corrupted {
            flipped: vec![TaskId(0)]
        }
        .delivered_in_full(10));
    }

    #[test]
    fn achieved_delta_inverts_lemma1_threshold() {
        for delta in [0.05, 0.1, 0.2, 0.5, 0.9] {
            let q = mcs_agg::lemma1_threshold(delta);
            assert!((achieved_delta(q) - delta).abs() < 1e-12);
        }
        assert_eq!(achieved_delta(0.0), 1.0);
        assert_eq!(achieved_delta(-3.0), 1.0);
    }

    #[test]
    fn shortfall_converts_to_typed_error() {
        let s = CoverageShortfall {
            task: TaskId(3),
            required: 4.0,
            achieved: 1.5,
        };
        let e: McsError = s.into();
        assert!(matches!(e, McsError::CoverageShortfall { .. }));
    }

    fn uncertain_model(p: f64) -> CompletionModel {
        CompletionModel::Bernoulli(mcs_types::BernoulliCompletion::new(
            vec![vec![(TaskId(0), p), (TaskId(1), p)]],
            vec![0.1, 0.1],
        ))
    }

    #[test]
    fn deterministic_sampler_draws_nothing_and_keeps_fates() {
        let model = CompletionModel::Deterministic;
        let sampler = CompletionSampler::new(&model, 7);
        let bundle = Bundle::new(vec![TaskId(0), TaskId(1)]);
        assert!(sampler.failed_tasks(0, WorkerId(0), &bundle).is_empty());
        let fates = vec![(WorkerId(0), WorkerFate::Delivered)];
        let assignment = vec![(WorkerId(0), bundle)];
        assert_eq!(
            sampler.apply(0, &assignment, fates.clone(), 10),
            fates,
            "deterministic apply is the identity"
        );
        // All-ones Bernoulli is equally inert.
        let unit = uncertain_model(0.3).with_unit_probabilities();
        let sampler = CompletionSampler::new(&unit, 7);
        let bundle = Bundle::new(vec![TaskId(0), TaskId(1)]);
        assert!(sampler.failed_tasks(0, WorkerId(0), &bundle).is_empty());
    }

    #[test]
    fn completion_draws_are_reproducible_and_phase_keyed() {
        let model = uncertain_model(0.5);
        let sampler = CompletionSampler::new(&model, 42);
        let bundle = Bundle::new(vec![TaskId(0), TaskId(1)]);
        let a = sampler.failed_tasks(0, WorkerId(0), &bundle);
        let b = sampler.failed_tasks(0, WorkerId(0), &bundle);
        assert_eq!(a, b, "same (seed, phase, worker) must redraw identically");
        // Across many phases a p = 0.5 pair must fail at least once and
        // succeed at least once.
        let outcomes: Vec<usize> = (0..64)
            .map(|ph| sampler.failed_tasks(ph, WorkerId(0), &bundle).len())
            .collect();
        assert!(outcomes.iter().any(|&n| n > 0));
        assert!(outcomes.contains(&0));
    }

    #[test]
    fn merge_counts_full_bundle_failure_as_showed_but_failed() {
        let model = uncertain_model(1e-9);
        let sampler = CompletionSampler::new(&model, 3);
        let bundle = Bundle::new(vec![TaskId(0), TaskId(1)]);
        let assignment = vec![(WorkerId(0), bundle.clone())];
        // p ≈ 0 ⇒ both tasks fail; every delivering fate demotes to
        // ShowedButFailed — the worker tried, nothing arrived.
        for fate in [
            WorkerFate::Delivered,
            WorkerFate::Straggler { delay: 1 },
            WorkerFate::Corrupted {
                flipped: vec![TaskId(0)],
            },
            WorkerFate::Partial {
                dropped: vec![TaskId(1)],
            },
        ] {
            let merged = sampler.apply(0, &assignment, vec![(WorkerId(0), fate)], 10);
            assert_eq!(merged, vec![(WorkerId(0), WorkerFate::ShowedButFailed)]);
            // Payment/coverage accounting is NoShow-identical…
            assert!(!merged[0].1.delivered_in_full(10));
            assert!(!merged[0].1.delivered_anything(10));
            // …but participation is not.
            assert!(merged[0].1.showed_up());
        }
        // A genuine no-show stays a no-show: absence is not failure.
        let merged = sampler.apply(0, &assignment, vec![(WorkerId(0), WorkerFate::NoShow)], 10);
        assert_eq!(merged, vec![(WorkerId(0), WorkerFate::NoShow)]);
        assert!(!merged[0].1.showed_up());
        // Late stragglers deliver nothing either way and keep their fate.
        let late = WorkerFate::Straggler { delay: 99 };
        let merged = sampler.apply(0, &assignment, vec![(WorkerId(0), late.clone())], 10);
        assert_eq!(merged, vec![(WorkerId(0), late)]);
    }

    #[test]
    fn fate_counts_distinguish_absence_from_failure() {
        let fates = vec![
            (WorkerId(0), WorkerFate::Delivered),
            (WorkerId(1), WorkerFate::NoShow),
            (WorkerId(2), WorkerFate::ShowedButFailed),
            (
                WorkerId(3),
                WorkerFate::Partial {
                    dropped: vec![TaskId(0)],
                },
            ),
            (WorkerId(4), WorkerFate::Straggler { delay: 3 }),
            (WorkerId(5), WorkerFate::ShowedButFailed),
        ];
        let counts = FateCounts::tally(&fates);
        assert_eq!(counts.no_show, 1);
        assert_eq!(counts.showed_but_failed, 2);
        assert_eq!(counts.delivered, 1);
        assert_eq!(counts.partial, 1);
        assert_eq!(counts.straggler, 1);
        assert_eq!(counts.corrupted, 0);
    }

    #[test]
    fn merge_partial_failure_drops_only_failed_tasks() {
        // Only task 0 is uncertain (and nearly always fails); task 1 is
        // certain and must survive as a Partial.
        let model = CompletionModel::Bernoulli(mcs_types::BernoulliCompletion::new(
            vec![vec![(TaskId(0), 1e-9)]],
            vec![0.1, 0.1],
        ));
        let sampler = CompletionSampler::new(&model, 5);
        let bundle = Bundle::new(vec![TaskId(0), TaskId(1)]);
        let assignment = vec![(WorkerId(0), bundle)];
        let merged = sampler.apply(
            0,
            &assignment,
            vec![(WorkerId(0), WorkerFate::Delivered)],
            10,
        );
        assert_eq!(
            merged,
            vec![(
                WorkerId(0),
                WorkerFate::Partial {
                    dropped: vec![TaskId(0)]
                }
            )]
        );
        // A partial worker is not paid — sampled non-completions gate
        // payment exactly like dropouts.
        assert!(!merged[0].1.delivered_in_full(10));
    }
}
