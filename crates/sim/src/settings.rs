//! Table I simulation settings and instance generation.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use mcs_num::rng;
use mcs_types::{Bid, Bundle, Instance, Price, SkillMatrix, TaskId, TrueType};

/// One simulation parameter regime (a row of the paper's Table I).
///
/// All four canonical settings share ε = 0.1, costs uniform on the
/// 0.1-grid of `[10, 60]`, skills `θ_ij ~ U[0.1, 0.9]`, error bounds
/// `δ_j ~ U[0.1, 0.2]`, and the candidate price set `[35, 60]` at step
/// 0.1; they differ in scale:
///
/// | Setting | N | K | bundle size |
/// |---------|---|---|-------------|
/// | [`Setting::one`]   | 80–140 (axis) | 30  | 10–20 |
/// | [`Setting::two`]   | 120 | 20–50 (axis)  | 10–20 |
/// | [`Setting::three`] | 800–1400 (axis) | 200 | 50–150 |
/// | [`Setting::four`]  | 1000 | 200–500 (axis) | 50–150 |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Setting {
    /// Privacy budget ε.
    pub epsilon: f64,
    /// Cost range lower end (`c_min`).
    pub cmin: f64,
    /// Cost range upper end (`c_max`).
    pub cmax: f64,
    /// Inclusive range of true-bundle sizes `|Γ*_i|`.
    pub bundle_size: (usize, usize),
    /// Range of skill levels `θ_ij`.
    pub theta_range: (f64, f64),
    /// Range of per-task error bounds `δ_j`.
    pub delta_range: (f64, f64),
    /// Number of workers `N`.
    pub num_workers: usize,
    /// Number of tasks `K`.
    pub num_tasks: usize,
    /// Candidate price grid `[min, max]` at `step`.
    pub price_grid: (f64, f64, f64),
    /// Draw one skill level per *worker* (uniform across tasks) instead of
    /// one per (worker, task) pair. Off for the canonical Table I
    /// settings; useful when the platform is meant to *learn* skills from
    /// labels, where a per-worker scalar model is well-specified.
    #[serde(default)]
    pub worker_uniform_skills: bool,
}

/// A generated problem instance together with the workers' private types.
///
/// Bids in `instance` are the *truthful* bids; deviation experiments
/// replace individual bids via [`Instance::with_bid`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedInstance {
    /// The auction input (truthful bid profile).
    pub instance: Instance,
    /// Each worker's private type `(Γ*_i, c*_i)`.
    pub types: Vec<TrueType>,
}

impl Setting {
    fn base(num_workers: usize, num_tasks: usize, bundle: (usize, usize)) -> Self {
        Setting {
            epsilon: 0.1,
            cmin: 10.0,
            cmax: 60.0,
            bundle_size: bundle,
            theta_range: (0.1, 0.9),
            delta_range: (0.1, 0.2),
            num_workers,
            num_tasks,
            price_grid: (35.0, 60.0, 0.1),
            worker_uniform_skills: false,
        }
    }

    /// Setting I: `K = 30`, sweep `N ∈ [80, 140]`.
    pub fn one(num_workers: usize) -> Self {
        Setting::base(num_workers, 30, (10, 20))
    }

    /// Setting II: `N = 120`, sweep `K ∈ [20, 50]`.
    pub fn two(num_tasks: usize) -> Self {
        Setting::base(120, num_tasks, (10, 20))
    }

    /// Setting III: `K = 200`, sweep `N ∈ [800, 1400]`.
    pub fn three(num_workers: usize) -> Self {
        Setting::base(num_workers, 200, (50, 150))
    }

    /// Setting IV: `N = 1000`, sweep `K ∈ [200, 500]`.
    pub fn four(num_tasks: usize) -> Self {
        Setting::base(1000, num_tasks, (50, 150))
    }

    /// Shrinks worker/task/bundle counts by an integer factor — handy for
    /// fast unit and integration tests that keep the Table I proportions.
    ///
    /// Per-task coverage scales with the worker count, so the error
    /// bounds `δ_j` are retuned to keep the scaled instances coverable:
    /// the requirement `Q = 2 ln(1/δ)` is set to ~35% of the expected
    /// per-task coverage, preserving the "feasible with slack" character
    /// of the full-size Table I settings.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        if factor == 1 {
            return self;
        }
        self.num_workers = (self.num_workers / factor).max(4);
        self.num_tasks = (self.num_tasks / factor).max(1);
        self.bundle_size = (
            (self.bundle_size.0 / factor).max(1),
            (self.bundle_size.1 / factor).max(1),
        );
        let avg_bundle = (self.bundle_size.0 + self.bundle_size.1) as f64 / 2.0;
        let mean_coverage =
            self.num_workers as f64 * avg_bundle / self.num_tasks as f64 * self.expected_q();
        let target_q = (0.35 * mean_coverage).max(0.1);
        let delta_star = (-target_q / 2.0).exp().clamp(0.05, 0.85);
        self.delta_range = (delta_star, (delta_star + 0.05).min(0.9));
        self
    }

    /// The expected coverage weight `E[(2θ−1)²]` under this setting's
    /// uniform skill distribution.
    pub fn expected_q(&self) -> f64 {
        let u = 2.0 * self.theta_range.0 - 1.0;
        let v = 2.0 * self.theta_range.1 - 1.0;
        (u * u + u * v + v * v) / 3.0
    }

    /// The truthfulness budget `ε·Δc` of Theorem 3, in currency units.
    pub fn truthfulness_budget(&self) -> f64 {
        self.epsilon * (self.cmax - self.cmin)
    }

    /// Generates a deterministic, *coverable* instance from a seed.
    ///
    /// Costs are drawn uniformly from the 0.1-grid of `[c_min, c_max]`,
    /// bundles are uniform without replacement, skills and error bounds
    /// are uniform on their ranges — exactly the Table I recipe. Bids are
    /// truthful. Draws whose full worker pool cannot satisfy some task's
    /// error-bound constraint are redrawn from the next derived stream
    /// (the paper implicitly conditions on feasibility by its parameter
    /// choices); generation stays deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the setting is degenerate (no workers, no tasks, empty
    /// ranges), or if no feasible instance is found in 100 attempts (a
    /// sign the setting itself is miscalibrated).
    pub fn generate(&self, seed: u64) -> GeneratedInstance {
        for attempt in 0..100u64 {
            let mut r = rng::derived(seed, 0xBEEF ^ attempt);
            let g = self.generate_with(&mut r);
            if g.instance.coverage_problem().check_feasible().is_ok() {
                return g;
            }
        }
        panic!("no feasible instance in 100 attempts; setting is miscalibrated: {self:?}");
    }

    /// Generates an instance from an explicit RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if the setting is degenerate.
    pub fn generate_with<R: Rng + ?Sized>(&self, r: &mut R) -> GeneratedInstance {
        assert!(self.num_workers > 0 && self.num_tasks > 0);
        assert!(self.bundle_size.0 >= 1 && self.bundle_size.0 <= self.bundle_size.1);
        let cost_lo = Price::from_f64(self.cmin).tenths();
        let cost_hi = Price::from_f64(self.cmax).tenths();
        let max_bundle = self.bundle_size.1.min(self.num_tasks);
        let min_bundle = self.bundle_size.0.min(max_bundle);
        let all_tasks: Vec<TaskId> = (0..self.num_tasks as u32).map(TaskId).collect();

        let mut types = Vec::with_capacity(self.num_workers);
        for _ in 0..self.num_workers {
            let size = r.gen_range(min_bundle..=max_bundle);
            let tasks: Vec<TaskId> = all_tasks.choose_multiple(r, size).copied().collect();
            let cost = Price::from_tenths(r.gen_range(cost_lo..=cost_hi));
            types.push(TrueType::new(Bundle::new(tasks), cost));
        }
        let bids: Vec<Bid> = types.iter().map(TrueType::truthful_bid).collect();

        let theta: Vec<f64> = if self.worker_uniform_skills {
            (0..self.num_workers)
                .flat_map(|_| {
                    let t = r.gen_range(self.theta_range.0..=self.theta_range.1);
                    std::iter::repeat_n(t, self.num_tasks)
                })
                .collect()
        } else {
            (0..self.num_workers * self.num_tasks)
                .map(|_| r.gen_range(self.theta_range.0..=self.theta_range.1))
                .collect()
        };
        let skills = SkillMatrix::from_flat(self.num_workers, self.num_tasks, theta)
            .expect("generated skills are in range");
        let deltas: Vec<f64> = (0..self.num_tasks)
            .map(|_| r.gen_range(self.delta_range.0..=self.delta_range.1))
            .collect();

        let instance = Instance::builder(self.num_tasks)
            .bids(bids)
            .skills(skills)
            .error_bounds(deltas)
            .price_grid_f64(self.price_grid.0, self.price_grid.1, self.price_grid.2)
            .cost_range(Price::from_f64(self.cmin), Price::from_f64(self.cmax))
            .build()
            .expect("generated instances are structurally valid");
        GeneratedInstance { instance, types }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_types::WorkerId;

    #[test]
    fn canonical_settings_match_table1() {
        let s1 = Setting::one(100);
        assert_eq!((s1.num_workers, s1.num_tasks), (100, 30));
        assert_eq!(s1.bundle_size, (10, 20));
        let s2 = Setting::two(40);
        assert_eq!((s2.num_workers, s2.num_tasks), (120, 40));
        let s3 = Setting::three(900);
        assert_eq!((s3.num_workers, s3.num_tasks), (900, 200));
        assert_eq!(s3.bundle_size, (50, 150));
        let s4 = Setting::four(300);
        assert_eq!((s4.num_workers, s4.num_tasks), (1000, 300));
        for s in [s1, s2, s3, s4] {
            assert_eq!(s.epsilon, 0.1);
            assert_eq!((s.cmin, s.cmax), (10.0, 60.0));
            assert_eq!(s.price_grid, (35.0, 60.0, 0.1));
            assert_eq!(s.truthfulness_budget(), 5.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = Setting::one(80).scaled_down(4);
        let a = s.generate(5);
        let b = s.generate(5);
        assert_eq!(a.instance, b.instance);
        assert_eq!(a.types, b.types);
        let c = s.generate(6);
        assert_ne!(a.instance, c.instance);
    }

    #[test]
    fn generated_bids_are_truthful() {
        let s = Setting::one(80).scaled_down(4);
        let g = s.generate(11);
        for (i, t) in g.types.iter().enumerate() {
            let bid = g.instance.bids().bid(WorkerId(i as u32));
            assert_eq!(bid.bundle(), t.bundle());
            assert_eq!(bid.price(), t.cost());
        }
    }

    #[test]
    fn generated_values_respect_ranges() {
        let s = Setting::two(20).scaled_down(2);
        let g = s.generate(3);
        let inst = &g.instance;
        for (w, bid) in inst.bids().iter() {
            let len = bid.bundle().len();
            assert!(len >= s.bundle_size.0.min(s.num_tasks) && len <= s.bundle_size.1);
            let p = bid.price().as_f64();
            assert!((s.cmin..=s.cmax).contains(&p));
            for t in 0..inst.num_tasks() {
                let th = inst.skills().theta(w, TaskId(t as u32));
                assert!((s.theta_range.0..=s.theta_range.1).contains(&th));
            }
        }
        for &d in inst.deltas() {
            assert!((s.delta_range.0..=s.delta_range.1).contains(&d));
        }
    }

    #[test]
    fn costs_live_on_the_tenth_grid() {
        let s = Setting::one(80).scaled_down(2);
        let g = s.generate(9);
        for (_, bid) in g.instance.bids().iter() {
            // Exactly representable in tenths by construction.
            assert_eq!(Price::from_f64(bid.price().as_f64()), bid.price());
        }
    }

    #[test]
    fn full_scale_setting_one_is_feasible() {
        // The Table I parameters must produce coverable instances (the
        // paper implicitly relies on this).
        let g = Setting::one(80).generate(1);
        g.instance.coverage_problem().check_feasible().unwrap();
    }

    #[test]
    fn scaled_down_keeps_minimums() {
        let s = Setting::one(80).scaled_down(1000);
        assert!(s.num_workers >= 4);
        assert!(s.num_tasks >= 1);
        assert!(s.bundle_size.0 >= 1);
    }
}
