//! Workload snapshots: save and reload generated instances as JSON.
//!
//! Experiments are deterministic given a seed, but snapshots make runs
//! portable across versions of the generator: EXPERIMENTS.md rows can be
//! pinned to exact workloads, and regressions can replay the precise
//! instance that produced a number.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use serde::{Deserialize, Serialize};

use mcs_types::{Instance, TrueType};

use crate::{GeneratedInstance, Setting};

/// The serialized form of a workload: the generating setting (for
/// provenance), the instance, and the workers' private types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// The setting the workload was drawn from.
    pub setting: Setting,
    /// The seed passed to [`Setting::generate`].
    pub seed: u64,
    /// The generated auction input.
    pub instance: Instance,
    /// The workers' private types (truthful bids equal these).
    pub types: Vec<TrueType>,
}

impl Snapshot {
    /// Captures a setting + seed into a snapshot.
    pub fn capture(setting: &Setting, seed: u64) -> Snapshot {
        let GeneratedInstance { instance, types } = setting.generate(seed);
        Snapshot {
            setting: setting.clone(),
            seed,
            instance,
            types,
        }
    }

    /// Writes the snapshot as pretty JSON.
    ///
    /// # Errors
    ///
    /// I/O or serialization failures.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        let file = File::create(path)?;
        serde_json::to_writer_pretty(BufWriter::new(file), self)?;
        Ok(())
    }

    /// Reads a snapshot back.
    ///
    /// # Errors
    ///
    /// I/O or deserialization failures.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Snapshot, SnapshotError> {
        let file = File::open(path)?;
        Ok(serde_json::from_reader(BufReader::new(file))?)
    }

    /// Consumes the snapshot into the generated pair.
    pub fn into_generated(self) -> GeneratedInstance {
        GeneratedInstance {
            instance: self.instance,
            types: self.types,
        }
    }
}

/// Errors from snapshot I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            SnapshotError::Json(e) => write!(f, "snapshot encoding failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Json(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_auction::ScheduledMechanism;

    #[test]
    fn roundtrip_preserves_everything() {
        let setting = Setting::one(80).scaled_down(4);
        let snap = Snapshot::capture(&setting, 123);
        let path = std::env::temp_dir().join("dp_mcs_snapshot_test.json");
        snap.save(&path).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(snap, loaded);
        std::fs::remove_file(&path).ok();
        // The reloaded instance behaves identically.
        let pmf_a = mcs_auction::DpHsrcAuction::new(0.1)
            .unwrap()
            .pmf(&snap.instance)
            .unwrap();
        let pmf_b = mcs_auction::DpHsrcAuction::new(0.1)
            .unwrap()
            .pmf(&loaded.into_generated().instance)
            .unwrap();
        assert_eq!(pmf_a.probs(), pmf_b.probs());
    }

    #[test]
    fn snapshot_matches_regeneration() {
        let setting = Setting::one(80).scaled_down(4);
        let snap = Snapshot::capture(&setting, 9);
        let regen = setting.generate(9);
        assert_eq!(snap.instance, regen.instance);
        assert_eq!(snap.types, regen.types);
    }

    #[test]
    fn load_missing_file_errors() {
        let err = Snapshot::load("/nonexistent/dp-mcs-snapshot.json").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn load_garbage_errors() {
        let path = std::env::temp_dir().join("dp_mcs_snapshot_garbage.json");
        std::fs::write(&path, b"{not json").unwrap();
        let err = Snapshot::load(&path).unwrap_err();
        assert!(matches!(err, SnapshotError::Json(_)));
        std::fs::remove_file(&path).ok();
    }
}
