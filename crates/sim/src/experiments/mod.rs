//! Experiment runners, one per figure/table of the paper's evaluation.
//!
//! | Runner | Reproduces |
//! |--------|------------|
//! | [`payment_sweep`] | Figures 1–4 (total payment vs `N` / `K`) |
//! | [`timing_sweep`] | Table II (execution time, DP-hSRC vs Optimal) |
//! | [`tradeoff_sweep`] | Figure 5 (payment vs privacy leakage over ε) |
//! | [`deviation_experiment`] | Theorem 3 (ε·Δc-truthfulness, measured) |
//! | [`approx_ratio_experiment`] | Theorem 6 (approximation-ratio bound) |
//! | [`lemma2_experiment`] | Lemma 2 (greedy vs optimal cardinality, per price) |
//! | [`privacy_cost_experiment`] | extension: the price of privacy vs a non-private truthful auction |

mod approx;
mod deviation;
mod lemma2;
mod payment;
mod privacy_cost;
mod timing;
mod tradeoff;

pub use approx::{approx_ratio_experiment, harmonic, ApproxReport};
pub use deviation::{deviation_experiment, DeviationReport};
pub use lemma2::{lemma2_experiment, Lemma2Report, Lemma2Row};
pub use payment::{payment_sweep, sampled_payment_stats, PaymentRow};
pub use privacy_cost::{privacy_cost_experiment, PrivacyCostRow};
pub use timing::{timing_sweep, TimingRow};
pub use tradeoff::{tradeoff_sweep, TradeoffRow, FIGURE5_EPSILONS};
