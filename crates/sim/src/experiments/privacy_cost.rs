//! The price of privacy: DP-hSRC vs a non-private truthful
//! critical-payment auction vs the exact optimum.
//!
//! This extension experiment quantifies what the differential-privacy
//! guarantee costs the platform. The non-private comparator
//! ([`mcs_auction::CriticalPaymentAuction`]) is exactly truthful and
//! individually rational but leaks bids through its deterministic
//! payments; DP-hSRC pays a premium for randomizing the price.

use serde::{Deserialize, Serialize};

use mcs_auction::{CriticalPaymentAuction, DpHsrcAuction, OptimalMechanism, ScheduledMechanism};
use mcs_types::McsError;

use crate::output::TableRow;
use crate::Setting;

/// One ε-point of the privacy-cost comparison (all payments in currency
/// units, averaged over `trials` generated instances).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyCostRow {
    /// Privacy budget of the DP mechanism.
    pub epsilon: f64,
    /// Mean exact expected payment of DP-hSRC.
    pub dp_payment: f64,
    /// Mean total payment of the non-private critical-payment auction.
    pub critical_payment: f64,
    /// Mean optimal single-price payment (when computed).
    pub optimal_payment: Option<f64>,
    /// `dp_payment / critical_payment` — the measured privacy premium.
    pub premium_vs_critical: f64,
    /// Instances averaged over.
    pub trials: usize,
}

impl TableRow for PrivacyCostRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "epsilon",
            "dp_payment",
            "critical_payment",
            "optimal",
            "premium",
            "trials",
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            format!("{}", self.epsilon),
            format!("{:.1}", self.dp_payment),
            format!("{:.1}", self.critical_payment),
            self.optimal_payment
                .map_or_else(|| "-".into(), |v| format!("{v:.1}")),
            format!("{:.3}", self.premium_vs_critical),
            self.trials.to_string(),
        ]
    }
}

/// Measures the privacy premium over an ε grid.
///
/// For each ε and each of `trials` seeds, one instance is generated; the
/// exact expected DP-hSRC payment, the critical-payment total, and (when
/// `optimal` is given) `R_OPT` are averaged. The critical-payment and
/// optimal columns are ε-independent but recomputed per row for
/// presentation symmetry — instances are shared across rows via seeding,
/// so the columns are constant down the table.
///
/// # Errors
///
/// Propagates generation and solver errors.
pub fn privacy_cost_experiment(
    setting: &Setting,
    epsilons: &[f64],
    trials: usize,
    seed: u64,
    optimal: Option<&OptimalMechanism>,
) -> Result<Vec<PrivacyCostRow>, McsError> {
    assert!(trials > 0, "at least one trial is required");
    let mut rows = Vec::with_capacity(epsilons.len());
    for &eps in epsilons {
        let mut dp_sum = 0.0;
        let mut crit_sum = 0.0;
        let mut opt_sum = 0.0;
        let mut opt_count = 0usize;
        for t in 0..trials {
            let g = setting.generate(seed ^ (t as u64).wrapping_mul(0x517C_C1B7));
            let dp = DpHsrcAuction::new(eps)?.pmf(&g.instance)?;
            dp_sum += dp.expected_total_payment();
            let crit = CriticalPaymentAuction.run(&g.instance)?;
            crit_sum += crit.total_payment().as_f64();
            if let Some(mech) = optimal {
                opt_sum += mech.solve(&g.instance)?.total_payment().as_f64();
                opt_count += 1;
            }
        }
        let dp_payment = dp_sum / trials as f64;
        let critical_payment = crit_sum / trials as f64;
        rows.push(PrivacyCostRow {
            epsilon: eps,
            dp_payment,
            critical_payment,
            optimal_payment: (opt_count > 0).then(|| opt_sum / opt_count as f64),
            premium_vs_critical: dp_payment / critical_payment,
            trials,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> Setting {
        Setting::one(80).scaled_down(4)
    }

    #[test]
    fn premium_shrinks_with_epsilon() {
        let rows = privacy_cost_experiment(&mini(), &[0.1, 10.0, 1000.0], 3, 5, None).unwrap();
        assert_eq!(rows.len(), 3);
        // Critical column constant across rows (same instances).
        assert!((rows[0].critical_payment - rows[2].critical_payment).abs() < 1e-9);
        // More budget → cheaper DP payments → smaller premium.
        assert!(rows[0].dp_payment >= rows[1].dp_payment - 1e-9);
        assert!(rows[1].dp_payment >= rows[2].dp_payment - 1e-9);
    }

    #[test]
    fn optimal_is_cheapest_when_computed() {
        let mech = OptimalMechanism::new();
        let rows = privacy_cost_experiment(&mini(), &[0.1], 2, 7, Some(&mech)).unwrap();
        let row = &rows[0];
        let opt = row.optimal_payment.unwrap();
        assert!(opt <= row.dp_payment + 1e-9);
    }

    #[test]
    fn rendering() {
        let rows = privacy_cost_experiment(&mini(), &[0.5], 1, 9, None).unwrap();
        assert_eq!(rows[0].cells().len(), PrivacyCostRow::headers().len());
    }
}
