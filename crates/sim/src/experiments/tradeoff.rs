//! Figure 5: the payment vs privacy-leakage trade-off over ε.

use serde::{Deserialize, Serialize};

use mcs_auction::{privacy, ExponentialMechanism, ScheduleEngine, SelectionRule};
use mcs_num::rng;
use mcs_types::McsError;

use crate::neighbour::{price_push_neighbour, random_worker, resample_neighbour, PricePush};
use crate::output::TableRow;
use crate::Setting;

/// One ε-point of the trade-off curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffRow {
    /// The privacy budget ε.
    pub epsilon: f64,
    /// The exact expected total payment at this ε.
    pub avg_payment: f64,
    /// Mean KL privacy leakage over the sampled neighbouring profiles
    /// (Definition 8).
    pub avg_leakage: f64,
    /// Worst KL leakage over the sampled neighbours.
    pub max_leakage: f64,
    /// Worst max-log-ratio over the sampled neighbours (Theorem 2 bounds
    /// this by ε).
    pub max_log_ratio: f64,
    /// Neighbours skipped because the bid change shifted the feasible
    /// price support (the paper's analysis assumes a fixed `P`).
    pub skipped_neighbours: usize,
}

impl TableRow for TradeoffRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "epsilon",
            "avg_payment",
            "avg_leakage",
            "max_leakage",
            "max_log_ratio",
            "skipped",
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            format!("{}", self.epsilon),
            format!("{:.1}", self.avg_payment),
            format!("{:.6}", self.avg_leakage),
            format!("{:.6}", self.max_leakage),
            format!("{:.6}", self.max_log_ratio),
            self.skipped_neighbours.to_string(),
        ]
    }
}

/// Sweeps ε and measures expected payment and privacy leakage (Figure 5).
///
/// One instance is generated from the setting; `neighbours` neighbouring
/// profiles are drawn by resampling a random worker's bid. The winner
/// schedules (the ε-independent part of the mechanism) are built once and
/// reused across the whole ε grid, so the sweep costs
/// `O(schedule · (1 + neighbours) + |ε-grid| · |P| · neighbours)`.
///
/// # Errors
///
/// Propagates instance-generation and scheduling errors.
pub fn tradeoff_sweep(
    setting: &Setting,
    epsilons: &[f64],
    neighbours: usize,
    seed: u64,
) -> Result<Vec<TradeoffRow>, McsError> {
    let generated = setting.generate(seed);
    let instance = &generated.instance;
    let base_schedule = ScheduleEngine::new(SelectionRule::MarginalCoverage).build(instance)?;

    // Neighbour instances and their (ε-independent) schedules. Half the
    // neighbours resample a random worker's bid (average case); half push
    // a *winning* worker's price to c_max (adversarial case — removing a
    // winner from every cheaper candidate pool is what actually shifts
    // winner-set cardinalities on large instances). A changed bid can make
    // the neighbour infeasible; such neighbours are counted as skipped,
    // matching how the paper's analysis conditions on a fixed feasible
    // price set.
    let mut r = rng::derived(seed, 0xD1FF);
    let cheapest_winners: Vec<_> = base_schedule.winners(0).to_vec();
    let mut neighbour_schedules = Vec::new();
    let mut infeasible_neighbours = 0usize;
    for k in 0..neighbours {
        let nb = if k % 2 == 0 && !cheapest_winners.is_empty() {
            let w = cheapest_winners[(k / 2) % cheapest_winners.len()];
            price_push_neighbour(instance, w, PricePush::ToMax)?
        } else {
            let w = random_worker(instance, &mut r);
            resample_neighbour(instance, setting, w, &mut r)?
        };
        match ScheduleEngine::new(SelectionRule::MarginalCoverage).build(&nb) {
            Ok(schedule) => neighbour_schedules.push(schedule),
            Err(_) => infeasible_neighbours += 1,
        }
    }

    let mut rows = Vec::with_capacity(epsilons.len());
    for &eps in epsilons {
        let mech = ExponentialMechanism::for_instance(eps, instance)?;
        let base_pmf = mech.pmf(base_schedule.clone());
        let mut leakages = Vec::new();
        let mut log_ratios = Vec::new();
        let mut skipped = infeasible_neighbours;
        for ns in &neighbour_schedules {
            let nb_pmf = mech.pmf(ns.clone());
            match (
                privacy::kl_leakage(&base_pmf, &nb_pmf),
                privacy::dp_log_ratio(&base_pmf, &nb_pmf),
            ) {
                (Some(kl), Some(ratio)) => {
                    leakages.push(kl);
                    log_ratios.push(ratio);
                }
                _ => skipped += 1,
            }
        }
        let avg_leakage = if leakages.is_empty() {
            0.0
        } else {
            leakages.iter().sum::<f64>() / leakages.len() as f64
        };
        rows.push(TradeoffRow {
            epsilon: eps,
            avg_payment: base_pmf.expected_total_payment(),
            avg_leakage,
            max_leakage: leakages.iter().copied().fold(0.0, f64::max),
            max_log_ratio: log_ratios.iter().copied().fold(0.0, f64::max),
            skipped_neighbours: skipped,
        });
    }
    Ok(rows)
}

/// The ε grid of the paper's Figure 5.
pub const FIGURE5_EPSILONS: &[f64] = &[
    0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 45.0, 100.0, 140.0, 200.0, 300.0, 500.0, 700.0, 1000.0,
];

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> Setting {
        Setting::one(80).scaled_down(4)
    }

    #[test]
    fn payment_decreases_and_leakage_increases_with_epsilon() {
        let rows = tradeoff_sweep(&mini(), &[0.25, 5.0, 100.0], 6, 3).unwrap();
        assert_eq!(rows.len(), 3);
        // Payment is non-increasing in ε (stronger concentration on cheap
        // prices).
        assert!(rows[0].avg_payment >= rows[1].avg_payment - 1e-9);
        assert!(rows[1].avg_payment >= rows[2].avg_payment - 1e-9);
        // Leakage is non-decreasing (over neighbours measured at all ε).
        assert!(rows[0].avg_leakage <= rows[1].avg_leakage + 1e-12);
        assert!(rows[1].avg_leakage <= rows[2].avg_leakage + 1e-12);
    }

    #[test]
    fn dp_theorem_bound_holds_at_every_epsilon() {
        let rows = tradeoff_sweep(&mini(), &[0.25, 1.0, 10.0], 8, 7).unwrap();
        for row in rows {
            assert!(
                row.max_log_ratio <= row.epsilon + 1e-9,
                "eps {}: ratio {}",
                row.epsilon,
                row.max_log_ratio
            );
            assert!(row.max_leakage <= row.epsilon + 1e-9);
        }
    }

    #[test]
    fn extreme_epsilon_is_numerically_stable() {
        let rows = tradeoff_sweep(&mini(), &[1000.0], 3, 5).unwrap();
        assert!(rows[0].avg_payment.is_finite());
        assert!(rows[0].avg_leakage.is_finite());
    }

    #[test]
    fn deterministic() {
        let a = tradeoff_sweep(&mini(), &[0.5, 2.0], 4, 9).unwrap();
        let b = tradeoff_sweep(&mini(), &[0.5, 2.0], 4, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn figure5_grid_matches_paper() {
        assert_eq!(FIGURE5_EPSILONS.len(), 15);
        assert_eq!(FIGURE5_EPSILONS[0], 0.25);
        assert_eq!(*FIGURE5_EPSILONS.last().unwrap(), 1000.0);
    }
}
