//! Theorem 3 check: measured gain from strategic price misreporting.
//!
//! Two measurements are reported per deviation:
//!
//! * **price-channel gain** — the quantity Theorem 3's proof actually
//!   bounds: the change in expected utility caused purely by the
//!   exponential mechanism's price lottery shifting, holding the worker's
//!   winner-membership function fixed. DP implies this never exceeds
//!   `(e^ε − 1)·Δc` (≈ `ε·Δc` for small ε).
//! * **strict gain** — the full change in expected utility, including the
//!   worker's own membership in `S(x)` flipping with her bid. The paper's
//!   proof does not model this channel, and the strict gain *can* exceed
//!   `ε·Δc` (e.g. a high-cost worker underbidding to win at prices she was
//!   priced out of). The experiment reports it honestly rather than
//!   asserting the paper's bound on it; see EXPERIMENTS.md for the
//!   discussion.

use serde::{Deserialize, Serialize};

use mcs_auction::{utility, DpHsrcAuction, ScheduledMechanism};
use mcs_types::{McsError, Price, WorkerId};

use crate::output::TableRow;
use crate::Setting;

/// The result of sweeping one worker's misreported price across the cost
/// range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviationReport {
    /// The deviating worker.
    pub worker: u32,
    /// Her true cost `c*`.
    pub true_cost: f64,
    /// Expected utility when bidding truthfully.
    pub truthful_utility: f64,
    /// `(misreported price, strict gain, price-channel gain)` per
    /// deviation; the channel gain is `None` when the deviation shifted
    /// the feasible price support.
    pub gains: Vec<(f64, f64, Option<f64>)>,
    /// The largest strict gain observed.
    pub max_strict_gain: f64,
    /// The largest price-channel gain observed.
    pub max_channel_gain: f64,
    /// The paper's stated cap `ε·Δc` (Theorem 3).
    pub budget: f64,
    /// The DP-derived cap on the price channel, `(e^ε − 1)·Δc`.
    pub channel_budget: f64,
}

impl DeviationReport {
    /// Whether the price-channel gains respect the DP-derived bound
    /// (guaranteed by Theorem 2; must always hold).
    pub fn channel_within_budget(&self) -> bool {
        self.max_channel_gain <= self.channel_budget + 1e-9
    }

    /// Whether even the strict gains stayed within the paper's `ε·Δc`
    /// claim (not guaranteed; see the module docs).
    pub fn strict_within_budget(&self) -> bool {
        self.max_strict_gain <= self.budget + 1e-9
    }
}

impl TableRow for DeviationReport {
    fn headers() -> Vec<&'static str> {
        vec![
            "worker",
            "true_cost",
            "truthful_eu",
            "max_strict_gain",
            "max_channel_gain",
            "eps*dc",
            "(e^eps-1)*dc",
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.worker.to_string(),
            format!("{:.1}", self.true_cost),
            format!("{:.4}", self.truthful_utility),
            format!("{:.6}", self.max_strict_gain),
            format!("{:.6}", self.max_channel_gain),
            format!("{:.2}", self.budget),
            format!("{:.2}", self.channel_budget),
        ]
    }
}

/// Measures how much `worker` can gain by misreporting her price.
///
/// The instance is generated from `setting`; the worker's bid price is
/// replaced by `num_deviations` values evenly spread over `[c_min, c_max]`
/// (snapped to the 0.1 grid). For each deviated profile her expected
/// utility under the exact DP-hSRC output distribution is compared against
/// the truthful profile, in both the strict and price-channel accountings
/// (see the module docs). Both expectations charge her true cost `c*`.
///
/// # Errors
///
/// Propagates instance generation/scheduling errors.
///
/// # Panics
///
/// Panics if `worker` is out of range for the generated instance or
/// `num_deviations` is zero.
pub fn deviation_experiment(
    setting: &Setting,
    seed: u64,
    worker: WorkerId,
    num_deviations: usize,
) -> Result<DeviationReport, McsError> {
    assert!(num_deviations > 0, "need at least one deviation");
    let generated = setting.generate(seed);
    let instance = &generated.instance;
    assert!(
        worker.index() < instance.num_workers(),
        "worker out of range"
    );
    let true_cost = generated.types[worker.index()].cost();

    let auction = DpHsrcAuction::new(setting.epsilon)?;
    let truthful_pmf = auction.pmf(instance)?;
    let truthful_utility = utility::expected_utility(&truthful_pmf, worker, true_cost);

    let lo = Price::from_f64(setting.cmin).tenths();
    let hi = Price::from_f64(setting.cmax).tenths();
    let mut gains = Vec::with_capacity(num_deviations);
    let mut max_strict_gain = f64::NEG_INFINITY;
    let mut max_channel_gain = f64::NEG_INFINITY;
    for k in 0..num_deviations {
        let tenths = if num_deviations == 1 {
            lo
        } else {
            lo + ((hi - lo) as f64 * k as f64 / (num_deviations - 1) as f64).round() as i64
        };
        let dev_price = Price::from_tenths(tenths);
        let bid = instance.bids().bid(worker).with_price(dev_price);
        let deviated = instance.with_bid(worker, bid)?;
        let deviated_pmf = auction.pmf(&deviated)?;

        let strict = utility::expected_utility(&deviated_pmf, worker, true_cost) - truthful_utility;
        max_strict_gain = max_strict_gain.max(strict);

        // Price channel: same membership function (the deviated world's),
        // truthful vs deviated price distributions.
        let channel =
            utility::cross_expected_utility(&truthful_pmf, &deviated_pmf, worker, true_cost)
                .map(|cross| utility::expected_utility(&deviated_pmf, worker, true_cost) - cross);
        if let Some(c) = channel {
            max_channel_gain = max_channel_gain.max(c);
        }
        gains.push((dev_price.as_f64(), strict, channel));
    }
    if max_channel_gain == f64::NEG_INFINITY {
        max_channel_gain = 0.0;
    }

    let delta_c = setting.cmax - setting.cmin;
    Ok(DeviationReport {
        worker: worker.0,
        true_cost: true_cost.as_f64(),
        truthful_utility,
        gains,
        max_strict_gain,
        max_channel_gain,
        budget: setting.truthfulness_budget(),
        channel_budget: (setting.epsilon.exp() - 1.0) * delta_c,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_auction::utility::{cross_expected_utility, expected_utility};

    fn mini() -> Setting {
        Setting::one(80).scaled_down(4)
    }

    #[test]
    fn channel_gains_never_exceed_dp_bound() {
        for worker in [0u32, 3, 7] {
            let report = deviation_experiment(&mini(), 11, WorkerId(worker), 12).unwrap();
            assert!(
                report.channel_within_budget(),
                "worker {worker}: channel gain {} > {}",
                report.max_channel_gain,
                report.channel_budget
            );
        }
    }

    #[test]
    fn strict_gains_are_reported_even_when_large() {
        // The strict accounting can exceed ε·Δc (membership channel); the
        // report must expose rather than hide it.
        let report = deviation_experiment(&mini(), 11, WorkerId(3), 12).unwrap();
        assert!(report.max_strict_gain.is_finite());
        assert_eq!(report.gains.len(), 12);
    }

    /// Pins the reproduction finding recorded in EXPERIMENTS.md: under
    /// strict accounting the paper's ε·Δc claim is violated by a wide
    /// margin on this instance, while the DP-provable price-channel bound
    /// still holds.
    #[test]
    fn strict_gain_violation_is_reproducible() {
        let report = deviation_experiment(&mini(), 77, WorkerId(4), 8).unwrap();
        assert!(
            report.max_strict_gain > report.budget * 5.0,
            "expected a large strict violation, got {}",
            report.max_strict_gain
        );
        assert!(report.channel_within_budget());
    }

    #[test]
    fn truthful_deviation_gains_nothing() {
        let setting = mini();
        let g = setting.generate(11);
        let w = WorkerId(2);
        let auction = DpHsrcAuction::new(setting.epsilon).unwrap();
        let truthful = auction.pmf(&g.instance).unwrap();
        let rebid = g
            .instance
            .with_bid(w, g.instance.bids().bid(w).clone())
            .unwrap();
        let again = auction.pmf(&rebid).unwrap();
        let cost = g.types[2].cost();
        let strict = expected_utility(&again, w, cost) - expected_utility(&truthful, w, cost);
        assert!(strict.abs() < 1e-12);
        let channel = expected_utility(&again, w, cost)
            - cross_expected_utility(&truthful, &again, w, cost).unwrap();
        assert!(channel.abs() < 1e-12);
    }

    #[test]
    fn report_covers_the_cost_range() {
        let report = deviation_experiment(&mini(), 5, WorkerId(1), 6).unwrap();
        assert_eq!(report.gains.len(), 6);
        assert!((report.gains[0].0 - 10.0).abs() < 1e-9);
        assert!((report.gains[5].0 - 60.0).abs() < 1e-9);
        assert_eq!(report.budget, 5.0); // 0.1 × (60 − 10)
        assert!(report.channel_budget > report.budget); // e^ε−1 > ε
    }

    #[test]
    fn rendering() {
        let report = deviation_experiment(&mini(), 5, WorkerId(1), 3).unwrap();
        assert_eq!(report.cells().len(), DeviationReport::headers().len());
    }
}
