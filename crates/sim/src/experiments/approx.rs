//! Theorem 6 check: the measured payment ratio vs the analytic bound.

use serde::{Deserialize, Serialize};

use mcs_auction::{DpHsrcAuction, OptimalMechanism, ScheduledMechanism};
use mcs_types::CoverageView;
use mcs_types::McsError;

use crate::output::TableRow;
use crate::Setting;

/// Comparison of DP-hSRC's expected payment with `R_OPT` and the Theorem 6
/// guarantee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproxReport {
    /// Exact expected total payment `E[R]` of DP-hSRC.
    pub expected_payment: f64,
    /// The optimal total payment `R_OPT`.
    pub optimal_payment: f64,
    /// The measured ratio `E[R] / R_OPT`.
    pub empirical_ratio: f64,
    /// The analytic Theorem 6 upper bound on `E[R]`.
    pub guaranteed_bound: f64,
    /// The covering constant `β = max_i Σ_j q_ij` (Lemma 2).
    pub beta: f64,
    /// The multiplicity constant `m = (1/Δq)·Σ_j Q_j` (Lemma 2), with `Δq`
    /// taken as the smallest positive coverage weight.
    pub m: f64,
    /// Whether `R_OPT` was proven optimal.
    pub exact: bool,
}

impl ApproxReport {
    /// Whether the measured expectation respects the analytic bound.
    pub fn within_bound(&self) -> bool {
        self.expected_payment <= self.guaranteed_bound + 1e-6
    }
}

impl TableRow for ApproxReport {
    fn headers() -> Vec<&'static str> {
        vec!["E[R]", "R_OPT", "ratio", "thm6_bound", "beta", "m", "exact"]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            format!("{:.1}", self.expected_payment),
            format!("{:.1}", self.optimal_payment),
            format!("{:.3}", self.empirical_ratio),
            format!("{:.1}", self.guaranteed_bound),
            format!("{:.3}", self.beta),
            format!("{:.0}", self.m),
            self.exact.to_string(),
        ]
    }
}

/// The `n`-th harmonic number `H_n = Σ_{k≤n} 1/k`.
///
/// Exact summation up to a million terms, then the asymptotic
/// `ln n + γ + 1/(2n)` expansion.
pub fn harmonic(n: f64) -> f64 {
    if n < 1.0 {
        return 0.0;
    }
    if n <= 1_000_000.0 {
        let n = n.floor() as u64;
        (1..=n).map(|k| 1.0 / k as f64).sum()
    } else {
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        n.ln() + EULER_GAMMA + 1.0 / (2.0 * n)
    }
}

/// Runs the Theorem 6 experiment on one generated instance.
///
/// Computes `E[R]` from the exact DP-hSRC PMF, `R_OPT` with the exact ILP
/// stack, and evaluates the bound
/// `2βH_m·R_OPT + (6 N c_max / ε)·ln(e + ε|P|βH_m R_OPT / c_min)`.
///
/// # Errors
///
/// Propagates generation and solver errors.
pub fn approx_ratio_experiment(
    setting: &Setting,
    seed: u64,
    optimal: &OptimalMechanism,
) -> Result<ApproxReport, McsError> {
    let generated = setting.generate(seed);
    let instance = &generated.instance;

    let pmf = DpHsrcAuction::new(setting.epsilon)?.pmf(instance)?;
    let expected_payment = pmf.expected_total_payment();

    let opt = optimal.solve(instance)?;
    let optimal_payment = opt.total_payment().as_f64();

    let cover = instance.sparse_coverage();
    let beta = cover.beta();
    // Δq: the smallest positive coverage weight acts as the unit measure;
    // the CSR rows store exactly the positive weights.
    let mut delta_q = f64::INFINITY;
    for i in 0..cover.num_workers() {
        for (_, q) in cover.row(i) {
            if q > 1e-12 && q < delta_q {
                delta_q = q;
            }
        }
    }
    let total_q: f64 = cover.requirements().iter().sum();
    let m = if delta_q.is_finite() {
        total_q / delta_q
    } else {
        total_q
    };
    let h_m = harmonic(m);

    let n = instance.num_workers() as f64;
    let cmax = instance.cmax().as_f64();
    let cmin = instance.cmin().as_f64();
    let eps = setting.epsilon;
    let p_len = pmf.schedule().len() as f64;
    let guaranteed_bound = 2.0 * beta * h_m * optimal_payment
        + (6.0 * n * cmax / eps)
            * (std::f64::consts::E + eps * p_len * beta * h_m * optimal_payment / cmin).ln();

    Ok(ApproxReport {
        expected_payment,
        optimal_payment,
        empirical_ratio: expected_payment / optimal_payment,
        guaranteed_bound,
        beta,
        m,
        exact: opt.exact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(0.5), 0.0);
        assert!((harmonic(1.0) - 1.0).abs() < 1e-12);
        assert!((harmonic(4.0) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_asymptotic_is_continuous() {
        let exact = harmonic(1_000_000.0);
        let approx = harmonic(1_000_001.0);
        assert!((exact - approx).abs() < 1e-4);
    }

    #[test]
    fn bound_holds_on_small_instances() {
        let setting = Setting::one(80).scaled_down(4);
        for seed in [1, 2, 3] {
            let report = approx_ratio_experiment(&setting, seed, &OptimalMechanism::new()).unwrap();
            assert!(report.exact);
            assert!(report.empirical_ratio >= 1.0 - 1e-9);
            assert!(
                report.within_bound(),
                "seed {seed}: E[R] {} > bound {}",
                report.expected_payment,
                report.guaranteed_bound
            );
        }
    }

    #[test]
    fn ratio_is_modest_in_practice() {
        // The paper's Figures 1–2 show DP-hSRC close to optimal; the greedy
        // ratio should be far below the worst-case bound.
        let setting = Setting::one(80).scaled_down(4);
        let report = approx_ratio_experiment(&setting, 9, &OptimalMechanism::new()).unwrap();
        assert!(
            report.empirical_ratio < 3.0,
            "ratio {} unexpectedly large",
            report.empirical_ratio
        );
    }

    #[test]
    fn rendering() {
        let setting = Setting::one(80).scaled_down(4);
        let report = approx_ratio_experiment(&setting, 1, &OptimalMechanism::new()).unwrap();
        assert_eq!(report.cells().len(), ApproxReport::headers().len());
    }
}
