//! Table II: execution time of DP-hSRC vs the optimal algorithm.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use mcs_auction::{DpHsrcAuction, Mechanism, OptimalMechanism};
use mcs_num::rng;
use mcs_types::McsError;

use crate::output::TableRow;
use crate::Setting;

/// One row of the Table II reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingRow {
    /// The x-axis value (number of workers or tasks).
    pub x: usize,
    /// Wall-clock seconds for a full DP-hSRC run (schedule + PMF + one
    /// sampled price).
    pub dp_seconds: f64,
    /// Wall-clock seconds for the exact optimal computation, when run.
    pub optimal_seconds: Option<f64>,
    /// Whether the optimal result was proven (no ILP timeout).
    pub optimal_exact: Option<bool>,
    /// Number of branch-and-bound nodes the optimal computation explored.
    pub optimal_nodes: Option<u64>,
}

impl TableRow for TimingRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "x",
            "dp_seconds",
            "optimal_seconds",
            "opt_exact",
            "opt_nodes",
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.x.to_string(),
            format!("{:.4}", self.dp_seconds),
            self.optimal_seconds
                .map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            self.optimal_exact
                .map_or_else(|| "-".into(), |e| e.to_string()),
            self.optimal_nodes
                .map_or_else(|| "-".into(), |n| n.to_string()),
        ]
    }
}

/// Measures execution time across an axis sweep (Table II).
///
/// Per point: generate an instance, time a complete DP-hSRC run, and —
/// when `optimal` is provided — time the exact `R_OPT` computation.
/// `per_point_budget` bounds each optimal solve so the sweep terminates on
/// any host; budget-limited rows are flagged `optimal_exact = false`
/// rather than dropped (matching the honesty requirement of the
/// reproduction).
///
/// Runs sequentially — parallelism would corrupt the timings.
///
/// # Errors
///
/// Returns the first generation or solver error encountered.
pub fn timing_sweep<F>(
    xs: &[usize],
    make_setting: F,
    seed: u64,
    run_optimal: bool,
    per_point_budget: Option<Duration>,
) -> Result<Vec<TimingRow>, McsError>
where
    F: Fn(usize) -> Setting,
{
    let mut rows = Vec::with_capacity(xs.len());
    for &x in xs {
        let setting = make_setting(x);
        let generated = setting.generate(seed ^ (x as u64).wrapping_mul(0x9E37_79B9));
        let instance = &generated.instance;

        let mut r = rng::derived(seed, x as u64);
        let started = Instant::now();
        let _outcome = DpHsrcAuction::new(setting.epsilon)?.run(instance, &mut r)?;
        let dp_seconds = started.elapsed().as_secs_f64();

        let (optimal_seconds, optimal_exact, optimal_nodes) = if run_optimal {
            let mech = match per_point_budget {
                Some(b) => OptimalMechanism::with_budget(b),
                None => OptimalMechanism::new(),
            };
            let started = Instant::now();
            let out = mech.solve(instance)?;
            let secs = started.elapsed().as_secs_f64();
            let nodes = out.solves.iter().map(|s| s.nodes).sum();
            (Some(secs), Some(out.exact), Some(nodes))
        } else {
            (None, None, None)
        };

        rows.push(TimingRow {
            x,
            dp_seconds,
            optimal_seconds,
            optimal_exact,
            optimal_nodes,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_setting(x: usize) -> Setting {
        let mut s = Setting::one(x).scaled_down(4);
        s.num_workers = x;
        s
    }

    #[test]
    fn dp_only_sweep() {
        let rows = timing_sweep(&[16, 20], mini_setting, 3, false, None).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.dp_seconds >= 0.0);
            assert!(row.optimal_seconds.is_none());
        }
    }

    #[test]
    fn optimal_timing_is_recorded() {
        let rows = timing_sweep(&[14], mini_setting, 3, true, None).unwrap();
        let row = &rows[0];
        assert!(row.optimal_seconds.unwrap() >= 0.0);
        assert_eq!(row.optimal_exact, Some(true));
        assert!(row.optimal_nodes.unwrap() >= 1);
    }

    #[test]
    fn budget_zero_marks_inexact() {
        let rows = timing_sweep(&[14], mini_setting, 3, true, Some(Duration::ZERO)).unwrap();
        assert_eq!(rows[0].optimal_exact, Some(false));
    }

    #[test]
    fn row_rendering() {
        let rows = timing_sweep(&[16], mini_setting, 1, false, None).unwrap();
        let cells = rows[0].cells();
        assert_eq!(cells.len(), TimingRow::headers().len());
        assert_eq!(cells[2], "-");
    }
}
