//! Figures 1–4: platform total payment vs worker/task count.

use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use mcs_auction::{BaselineAuction, DpHsrcAuction, OptimalMechanism, PricePmf, ScheduledMechanism};
use mcs_types::McsError;

use crate::output::TableRow;
use crate::Setting;

/// One plotted point of a payment figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaymentRow {
    /// The x-axis value (number of workers or tasks).
    pub x: usize,
    /// Exact expected total payment of DP-hSRC, `E[x·|S(x)|]`.
    pub dp_mean: f64,
    /// Exact standard deviation of DP-hSRC's total payment.
    pub dp_std: f64,
    /// Exact expected total payment of the baseline auction.
    pub base_mean: f64,
    /// Exact standard deviation of the baseline's total payment.
    pub base_std: f64,
    /// The optimal total payment `R_OPT` (settings I–II only); an upper
    /// bound (best incumbent) when `optimal_exact` is `false`.
    pub optimal: Option<f64>,
    /// A proven lower bound on `R_OPT` (equals `optimal` when exact).
    pub optimal_lower_bound: Option<f64>,
    /// Whether `R_OPT` was proven optimal (`false` after an ILP timeout).
    pub optimal_exact: Option<bool>,
}

impl TableRow for PaymentRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "x",
            "optimal",
            "opt_lb",
            "dp_mean",
            "dp_std",
            "base_mean",
            "base_std",
            "opt_exact",
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.x.to_string(),
            self.optimal
                .map_or_else(|| "-".into(), |v| format!("{v:.1}")),
            self.optimal_lower_bound
                .map_or_else(|| "-".into(), |v| format!("{v:.1}")),
            format!("{:.1}", self.dp_mean),
            format!("{:.2}", self.dp_std),
            format!("{:.1}", self.base_mean),
            format!("{:.2}", self.base_std),
            self.optimal_exact
                .map_or_else(|| "-".into(), |e| e.to_string()),
        ]
    }
}

/// Sweeps the x-axis of a payment figure.
///
/// For each `x` a fresh instance is generated from `make_setting(x)` with
/// a seed derived from `seed` and `x`, then the *exact* expected payment
/// and standard deviation of both differentially private mechanisms are
/// computed from their output PMFs. (The paper estimates the same
/// quantities by averaging 10 000 price samples; the exact values are the
/// infinite-sample limit — see [`sampled_payment_stats`] for the
/// Monte-Carlo route.) When `optimal` is provided, `R_OPT` is computed
/// with the exact ILP stack, as in Figures 1–2.
///
/// Points are processed in parallel with rayon.
///
/// # Errors
///
/// Returns the first generation or solver error encountered.
pub fn payment_sweep<F>(
    xs: &[usize],
    make_setting: F,
    seed: u64,
    optimal: Option<&OptimalMechanism>,
) -> Result<Vec<PaymentRow>, McsError>
where
    F: Fn(usize) -> Setting + Sync,
{
    xs.par_iter()
        .map(|&x| {
            let setting = make_setting(x);
            let generated = setting.generate(seed ^ (x as u64).wrapping_mul(0x9E37_79B9));
            let instance = &generated.instance;
            let dp = DpHsrcAuction::new(setting.epsilon)?.pmf(instance)?;
            let base = BaselineAuction::new(setting.epsilon)?.pmf(instance)?;
            let (optimal_payment, optimal_lb, optimal_exact) = match optimal {
                Some(mech) => {
                    let o = mech.solve(instance)?;
                    (
                        Some(o.total_payment().as_f64()),
                        Some(o.payment_lower_bound.as_f64()),
                        Some(o.exact),
                    )
                }
                None => (None, None, None),
            };
            Ok(PaymentRow {
                x,
                dp_mean: dp.expected_total_payment(),
                dp_std: dp.total_payment_std(),
                base_mean: base.expected_total_payment(),
                base_std: base.total_payment_std(),
                optimal: optimal_payment,
                optimal_lower_bound: optimal_lb,
                optimal_exact,
            })
        })
        .collect()
}

/// Monte-Carlo payment statistics, mirroring the paper's 10 000-sample
/// estimation: draws `samples` prices from the PMF and returns the sample
/// mean and (population) standard deviation of the total payment.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn sampled_payment_stats<R: Rng + ?Sized>(
    pmf: &PricePmf,
    samples: usize,
    rng: &mut R,
) -> (f64, f64) {
    assert!(samples > 0, "at least one sample is required");
    let mut stats = mcs_num::OnlineStats::new();
    for _ in 0..samples {
        stats.push(pmf.sample(rng).total_payment().as_f64());
    }
    (stats.mean(), stats.population_std_dev())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_num::rng;

    fn mini_setting(x: usize) -> Setting {
        let mut s = Setting::one(x).scaled_down(4);
        s.num_workers = x;
        s
    }

    #[test]
    fn sweep_produces_one_row_per_x() {
        let xs = [20, 24, 28];
        let rows = payment_sweep(&xs, mini_setting, 7, None).unwrap();
        assert_eq!(rows.len(), 3);
        for (row, &x) in rows.iter().zip(&xs) {
            assert_eq!(row.x, x);
            assert!(row.dp_mean > 0.0);
            assert!(row.base_mean > 0.0);
            assert!(row.optimal.is_none());
        }
    }

    #[test]
    fn dp_beats_baseline_on_average() {
        let xs = [24, 32];
        let rows = payment_sweep(&xs, mini_setting, 3, None).unwrap();
        for row in rows {
            assert!(
                row.dp_mean <= row.base_mean + 1e-9,
                "x={}: dp {} > base {}",
                row.x,
                row.dp_mean,
                row.base_mean
            );
        }
    }

    #[test]
    fn optimal_lower_bounds_both_mechanism_means() {
        let xs = [16];
        let mech = OptimalMechanism::new();
        let rows = payment_sweep(&xs, mini_setting, 5, Some(&mech)).unwrap();
        let row = &rows[0];
        let opt = row.optimal.unwrap();
        assert_eq!(row.optimal_exact, Some(true));
        assert!(opt <= row.dp_mean + 1e-9);
        assert!(opt <= row.base_mean + 1e-9);
    }

    #[test]
    fn sampled_stats_agree_with_exact() {
        let setting = mini_setting(24);
        let g = setting.generate(9);
        let pmf = DpHsrcAuction::new(setting.epsilon)
            .unwrap()
            .pmf(&g.instance)
            .unwrap();
        let mut r = rng::seeded(11);
        let (mean, std) = sampled_payment_stats(&pmf, 20_000, &mut r);
        assert!((mean - pmf.expected_total_payment()).abs() < 3.0);
        assert!((std - pmf.total_payment_std()).abs() < 3.0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let xs = [20];
        let a = payment_sweep(&xs, mini_setting, 1, None).unwrap();
        let b = payment_sweep(&xs, mini_setting, 1, None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn table_row_rendering() {
        let row = PaymentRow {
            x: 80,
            dp_mean: 1234.5,
            dp_std: 10.0,
            base_mean: 2000.0,
            base_std: 12.0,
            optimal: Some(1100.0),
            optimal_lower_bound: Some(1100.0),
            optimal_exact: Some(true),
        };
        let cells = row.cells();
        assert_eq!(cells.len(), PaymentRow::headers().len());
        assert_eq!(cells[0], "80");
        assert_eq!(cells[1], "1100.0");
    }
}
