//! Lemma 2 check: greedy winner-set cardinality vs the true optimum,
//! price by price.

use serde::{Deserialize, Serialize};

use mcs_auction::{OptimalMechanism, ScheduleEngine, SelectionRule};
use mcs_types::CoverageView;
use mcs_types::McsError;

use crate::experiments::approx::harmonic;
use crate::output::TableRow;
use crate::Setting;

/// One candidate price's greedy-vs-optimal cardinality comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lemma2Row {
    /// The candidate price (currency units).
    pub price: f64,
    /// `|S(p)|` from Algorithm 1's greedy rule.
    pub greedy: usize,
    /// `|S_OPT(p)|` from the exact solver.
    pub optimal: usize,
    /// The measured ratio.
    pub ratio: f64,
    /// Whether the exact solve was proven optimal.
    pub exact: bool,
}

impl TableRow for Lemma2Row {
    fn headers() -> Vec<&'static str> {
        vec!["price", "greedy", "optimal", "ratio", "exact"]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            format!("{}", self.price),
            self.greedy.to_string(),
            self.optimal.to_string(),
            format!("{:.3}", self.ratio),
            self.exact.to_string(),
        ]
    }
}

/// The whole Lemma 2 report: per-price rows plus the analytic bound
/// `2·β·H_m`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lemma2Report {
    /// Per-price comparisons (one per bidding-price interval with a grid
    /// price).
    pub rows: Vec<Lemma2Row>,
    /// Largest measured ratio.
    pub max_ratio: f64,
    /// The Lemma 2 guarantee `2βH_m`.
    pub bound: f64,
}

impl Lemma2Report {
    /// Whether every measured ratio respects the analytic bound.
    pub fn within_bound(&self) -> bool {
        self.max_ratio <= self.bound + 1e-9
    }
}

/// Runs the Lemma 2 comparison on one generated instance.
///
/// The greedy schedule provides `|S(p)|` per feasible price; the exact
/// mechanism provides `|S_OPT(p)|` once per bidding-price interval (its
/// `solves` record). Rows are emitted at the interval-representative
/// prices where both sides are defined.
///
/// # Errors
///
/// Propagates generation and solver errors.
pub fn lemma2_experiment(
    setting: &Setting,
    seed: u64,
    optimal: &OptimalMechanism,
) -> Result<Lemma2Report, McsError> {
    let generated = setting.generate(seed);
    let instance = &generated.instance;
    let schedule = ScheduleEngine::new(SelectionRule::MarginalCoverage).build(instance)?;
    let opt = optimal.solve(instance)?;

    let mut rows = Vec::new();
    let mut max_ratio: f64 = 0.0;
    for solve in &opt.solves {
        let Some(idx) = schedule.prices().iter().position(|&p| p == solve.price) else {
            continue;
        };
        let greedy = schedule.winners(idx).len();
        let ratio = greedy as f64 / solve.cardinality.max(1) as f64;
        max_ratio = max_ratio.max(ratio);
        rows.push(Lemma2Row {
            price: solve.price.as_f64(),
            greedy,
            optimal: solve.cardinality,
            ratio,
            exact: solve.exact,
        });
    }

    // The analytic constants of Lemma 2, from the CSR coverage view: β
    // folds the cached per-worker totals and Δq scans only stored entries.
    let cover = instance.sparse_coverage();
    let beta = cover.beta();
    let mut delta_q = f64::INFINITY;
    for i in 0..cover.num_workers() {
        for (_, q) in cover.row(i) {
            if q > 1e-12 && q < delta_q {
                delta_q = q;
            }
        }
    }
    let total_q: f64 = cover.requirements().iter().sum();
    let m = if delta_q.is_finite() {
        total_q / delta_q
    } else {
        total_q
    };
    let bound = 2.0 * beta * harmonic(m);

    Ok(Lemma2Report {
        rows,
        max_ratio,
        bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_never_beats_optimal_and_bound_holds() {
        let setting = Setting::one(80).scaled_down(5);
        for seed in [1u64, 2] {
            let report = lemma2_experiment(&setting, seed, &OptimalMechanism::new()).unwrap();
            assert!(!report.rows.is_empty());
            for row in &report.rows {
                assert!(row.exact);
                assert!(
                    row.greedy >= row.optimal,
                    "greedy {} below optimal {} at {}",
                    row.greedy,
                    row.optimal,
                    row.price
                );
                assert!(row.ratio >= 1.0 - 1e-12);
            }
            assert!(
                report.within_bound(),
                "seed {seed}: ratio {} vs bound {}",
                report.max_ratio,
                report.bound
            );
        }
    }

    #[test]
    fn cardinalities_monotone_in_price() {
        // Larger pools can only shrink both the greedy and optimal sets.
        let setting = Setting::one(80).scaled_down(5);
        let report = lemma2_experiment(&setting, 3, &OptimalMechanism::new()).unwrap();
        for w in report.rows.windows(2) {
            assert!(w[0].optimal >= w[1].optimal);
        }
    }

    #[test]
    fn rendering() {
        let setting = Setting::one(80).scaled_down(5);
        let report = lemma2_experiment(&setting, 1, &OptimalMechanism::new()).unwrap();
        assert_eq!(report.rows[0].cells().len(), Lemma2Row::headers().len());
    }
}
