//! Per-decision and per-round reporting for streaming auctions.

use mcs_auction::ReplayStats;
use mcs_types::{Price, WorkerId};
use serde::{DeError, Deserialize, Serialize, Value};

/// Which machinery priced the running hindsight benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PricingPath {
    /// `OnlinePricer`'s warm-started winner-sequence replay (PR 5 path).
    Incremental,
    /// A from-scratch `ScheduleEngine::build_residual` per arrival — the
    /// baseline the bench compares the incremental path against.
    FromScratch,
}

/// Why an arrival was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Part of the observation sample; sampled workers are never admitted
    /// (and never paid), which is what keeps the learned threshold
    /// independent of their reports.
    SampleObserved,
    /// Bid strictly above the posted threshold price.
    QuoteExceeded,
    /// Marginal-coverage-per-price density below the learned threshold.
    BelowDensity,
    /// Coverage requirements were already met on arrival.
    CoverageMet,
    /// No residual marginal coverage to contribute.
    NotNeeded,
    /// Lookahead mode only: not in the offline winner set.
    NotSelected,
}

/// The admission decision for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Admitted at the stated payment (posted price for the threshold
    /// mechanism, pay-as-bid for the greedy baseline).
    Accepted {
        /// What this worker is paid.
        payment: Price,
    },
    /// Turned away for the stated reason.
    Rejected(RejectReason),
}

impl Decision {
    /// Whether the arrival was admitted.
    pub fn accepted(&self) -> bool {
        matches!(self, Decision::Accepted { .. })
    }

    /// The payment, `None` when rejected.
    pub fn payment(&self) -> Option<Price> {
        match self {
            Decision::Accepted { payment } => Some(*payment),
            Decision::Rejected(_) => None,
        }
    }
}

// Hand-written serde (the vendored derive does not support enums).

impl Serialize for PricingPath {
    fn to_value(&self) -> Value {
        Value::String(
            match self {
                PricingPath::Incremental => "incremental",
                PricingPath::FromScratch => "from_scratch",
            }
            .to_string(),
        )
    }
}

impl Deserialize for PricingPath {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match String::from_value(v)?.as_str() {
            "incremental" => Ok(PricingPath::Incremental),
            "from_scratch" => Ok(PricingPath::FromScratch),
            other => Err(DeError::custom(format!("unknown pricing path `{other}`"))),
        }
    }
}

impl RejectReason {
    fn tag(&self) -> &'static str {
        match self {
            RejectReason::SampleObserved => "sample_observed",
            RejectReason::QuoteExceeded => "quote_exceeded",
            RejectReason::BelowDensity => "below_density",
            RejectReason::CoverageMet => "coverage_met",
            RejectReason::NotNeeded => "not_needed",
            RejectReason::NotSelected => "not_selected",
        }
    }
}

impl Serialize for RejectReason {
    fn to_value(&self) -> Value {
        Value::String(self.tag().to_string())
    }
}

impl Deserialize for RejectReason {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match String::from_value(v)?.as_str() {
            "sample_observed" => Ok(RejectReason::SampleObserved),
            "quote_exceeded" => Ok(RejectReason::QuoteExceeded),
            "below_density" => Ok(RejectReason::BelowDensity),
            "coverage_met" => Ok(RejectReason::CoverageMet),
            "not_needed" => Ok(RejectReason::NotNeeded),
            "not_selected" => Ok(RejectReason::NotSelected),
            other => Err(DeError::custom(format!("unknown reject reason `{other}`"))),
        }
    }
}

impl Serialize for Decision {
    fn to_value(&self) -> Value {
        match self {
            Decision::Accepted { payment } => Value::Object(vec![
                (
                    "decision".to_string(),
                    Value::String("accepted".to_string()),
                ),
                ("payment".to_string(), payment.to_value()),
            ]),
            Decision::Rejected(reason) => Value::Object(vec![
                (
                    "decision".to_string(),
                    Value::String("rejected".to_string()),
                ),
                ("reason".to_string(), reason.to_value()),
            ]),
        }
    }
}

impl Deserialize for Decision {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let tag = String::from_value(
            v.get("decision")
                .ok_or_else(|| DeError::missing_field("decision"))?,
        )?;
        match tag.as_str() {
            "accepted" => Ok(Decision::Accepted {
                payment: Price::from_value(
                    v.get("payment")
                        .ok_or_else(|| DeError::missing_field("payment"))?,
                )?,
            }),
            "rejected" => Ok(Decision::Rejected(RejectReason::from_value(
                v.get("reason")
                    .ok_or_else(|| DeError::missing_field("reason"))?,
            )?)),
            other => Err(DeError::custom(format!("unknown decision `{other}`"))),
        }
    }
}

/// The running hindsight benchmark after one arrival: the cheapest feasible
/// uniform grid price over *everyone seen so far* and the winner count at
/// it (`None` while the seen pool cannot yet cover the requirements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HindsightQuote {
    /// Cheapest feasible grid price in tenths.
    pub price: Price,
    /// Winner-set size at that price.
    pub winners: usize,
}

impl HindsightQuote {
    /// Uniform-price total payment of the quote.
    pub fn payment(&self) -> Price {
        Price::from_tenths(self.price.tenths() * self.winners as i64)
    }
}

/// One per-arrival decision record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmitReport {
    /// The arriving worker.
    pub worker: WorkerId,
    /// Arrival tick.
    pub at: u64,
    /// The decision taken before the worker departed.
    pub decision: Decision,
    /// Marginal coverage against the mechanism's residual at decision time.
    pub marginal_coverage: f64,
    /// Running hindsight benchmark over the pool seen so far.
    pub hindsight: Option<HindsightQuote>,
}

/// The learned stage-sampling threshold (absent for the greedy baseline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdInfo {
    /// Posted price paid to every admitted worker.
    pub price: Price,
    /// Minimum admissible marginal-coverage-per-price density.
    pub density: f64,
    /// Number of arrivals observed (and rejected) to learn the threshold.
    pub sample_size: usize,
    /// Whether the sample could not cover the requirements and the
    /// mechanism fell back to the most permissive threshold.
    pub fallback: bool,
}

/// Replay counters mirrored from [`ReplayStats`] in serialisable form.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayCounters {
    /// Arrivals absorbed with pool bookkeeping only.
    pub skipped: u64,
    /// Arrivals where replaying the incumbent sequence confirmed it.
    pub confirmed: u64,
    /// Arrivals that forced a warm-started greedy rerun.
    pub rebuilt: u64,
}

impl From<ReplayStats> for ReplayCounters {
    fn from(s: ReplayStats) -> Self {
        ReplayCounters {
            skipped: s.skipped,
            confirmed: s.confirmed,
            rebuilt: s.rebuilt,
        }
    }
}

/// The full outcome of one streamed round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineRoundReport {
    /// Mechanism name (`"stage-threshold"` or `"greedy-paybid"`).
    pub mechanism: String,
    /// Per-arrival decisions in arrival order.
    pub decisions: Vec<AdmitReport>,
    /// Admitted workers, ascending by id.
    pub accepted: Vec<WorkerId>,
    /// Sum of all payments made.
    pub total_payment: Price,
    /// Fraction of the total coverage requirement met, in `[0, 1]`.
    pub achieved_coverage: f64,
    /// Whether the requirements were fully met by the admitted set.
    pub covered: bool,
    /// The offline `ScheduleEngine` optimum on the full hindsight instance
    /// (`None` when the full pool itself cannot cover).
    pub offline_payment: Option<Price>,
    /// `total_payment / offline_payment`, defined when the round covered
    /// and the offline optimum exists and is positive.
    pub competitive_ratio: Option<f64>,
    /// The learned threshold, absent for the greedy baseline.
    pub threshold: Option<ThresholdInfo>,
    /// How the hindsight benchmark absorbed each arrival.
    pub replay: ReplayCounters,
    /// Which hindsight pricing path ran.
    pub pricing: PricingPath,
}

impl OnlineRoundReport {
    /// Convenience: the competitive ratio or `NaN` when undefined, for
    /// table rendering.
    pub fn ratio_or_nan(&self) -> f64 {
        self.competitive_ratio.unwrap_or(f64::NAN)
    }

    /// Number of admitted workers.
    pub fn num_accepted(&self) -> usize {
        self.accepted.len()
    }
}
