//! The trivial online baseline: admit anyone useful, pay-as-bid.

use mcs_auction::replay::{apply_coverage, marginal_coverage};
use mcs_types::{CoverageView, Instance, McsError, Price};

use super::report::{AdmitReport, Decision, OnlineRoundReport, PricingPath, RejectReason};
use super::timeline::ArrivalTimeline;
use super::{round_summary, HindsightTracker, OnlineMechanism, COVER_EPS};

/// The greedy pay-as-bid baseline: every arrival contributing positive
/// marginal coverage is admitted at their own bid until the requirements
/// are met. Not truthful (a worker paid their bid gains by overstating)
/// and with no price discipline — the comparator that shows what the
/// learned threshold buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyBaseline {
    pricing: Option<PricingPath>,
}

impl GreedyBaseline {
    /// The baseline with incremental hindsight pricing.
    pub fn new() -> GreedyBaseline {
        GreedyBaseline::default()
    }

    /// Selects the hindsight pricing path (incremental replay by default).
    pub fn pricing(mut self, path: PricingPath) -> GreedyBaseline {
        self.pricing = Some(path);
        self
    }
}

impl OnlineMechanism for GreedyBaseline {
    fn name(&self) -> &'static str {
        "greedy-paybid"
    }

    fn run(
        &self,
        instance: &Instance,
        timeline: &ArrivalTimeline,
        _seed: u64,
    ) -> Result<OnlineRoundReport, McsError> {
        let pricing = self.pricing.unwrap_or(PricingPath::Incremental);
        let cover = instance.sparse_coverage();
        let requirements = cover.requirements().to_vec();
        let total_requirement: f64 = requirements.iter().map(|r| r.max(0.0)).sum();
        let offline_payment = super::offline_optimum(instance);

        let mut tracker = HindsightTracker::new(instance, pricing);
        let mut residual = requirements.clone();
        let mut remaining = total_requirement;
        let mut decisions = Vec::with_capacity(timeline.len());
        let mut accepted = Vec::new();
        let mut paid_tenths: i64 = 0;

        for a in timeline.arrivals() {
            let hindsight = tracker.observe(instance, a.worker)?;
            let gain = marginal_coverage(&cover, a.worker, &residual);
            let decision = if remaining <= COVER_EPS {
                Decision::Rejected(RejectReason::CoverageMet)
            } else if gain <= COVER_EPS {
                Decision::Rejected(RejectReason::NotNeeded)
            } else {
                let payment = instance.bids().bid(a.worker).price();
                accepted.push(a.worker);
                paid_tenths += payment.tenths();
                apply_coverage(&cover, a.worker, &mut residual, &mut remaining);
                Decision::Accepted { payment }
            };
            decisions.push(AdmitReport {
                worker: a.worker,
                at: a.at,
                decision,
                marginal_coverage: gain,
                hindsight,
            });
        }

        accepted.sort_unstable();
        let total_payment = Price::from_tenths(paid_tenths);
        let (achieved, covered, ratio) =
            round_summary(total_requirement, remaining, total_payment, offline_payment);
        Ok(OnlineRoundReport {
            mechanism: self.name().to_string(),
            decisions,
            accepted,
            total_payment,
            achieved_coverage: achieved,
            covered,
            offline_payment,
            competitive_ratio: ratio,
            threshold: None,
            replay: tracker.counters(),
            pricing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::{ArrivalTimeline, TimelineConfig};
    use crate::Setting;

    #[test]
    fn greedy_covers_whenever_the_full_pool_can() {
        let instance = Setting::one(80).scaled_down(4).generate(13).instance;
        let timeline = ArrivalTimeline::generate(&instance, &TimelineConfig::default(), 13);
        let report = GreedyBaseline::new()
            .run(&instance, &timeline, 13)
            .expect("greedy run");
        if report.offline_payment.is_some() {
            assert!(report.covered, "offline feasible pool must cover greedily");
        }
        // Pay-as-bid: every payment equals the worker's own bid.
        for d in &report.decisions {
            if let Decision::Accepted { payment } = d.decision {
                assert_eq!(payment, instance.bids().bid(d.worker).price());
            }
        }
    }
}
