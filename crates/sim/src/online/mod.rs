//! Streaming online auctions: arrival timelines, online mechanisms and
//! competitive-ratio accounting against the offline optimum.
//!
//! The paper's DP-hSRC auction is one-shot — every bid is known before
//! selection. This module is the online variant the related work studies
//! (OMG, arXiv 1306.5677; Han et al., arXiv 1308.4501): workers arrive
//! over an [`ArrivalTimeline`] and the platform must accept, reject and
//! price each one before departure, with no knowledge of future arrivals.
//!
//! * [`ArrivalTimeline`] — the seeded arrival/departure workload over an
//!   existing [`Instance`], with a [`ArrivalTimeline::degenerate`] anchor
//!   (everyone at `t = 0`) for differential verification.
//! * [`OnlineMechanism`] — the trait: consume a timeline, emit one
//!   [`AdmitReport`] per arrival and a final [`OnlineRoundReport`].
//! * [`StageThreshold`] — OMG-style stage sampling: observe a prefix,
//!   learn a density threshold and posted price from it, then admit any
//!   later arrival whose marginal-coverage-per-price beats the threshold,
//!   paying the posted price (so reports stay truthful).
//! * [`GreedyBaseline`] — admit anyone useful, pay-as-bid; the naive
//!   comparator.
//!
//! Every run also maintains the *hindsight benchmark*: after each arrival,
//! the cheapest feasible uniform grid price over everyone seen so far.
//! The default [`PricingPath::Incremental`] path maintains it with
//! [`mcs_auction::OnlinePricer`]'s warm-started winner-sequence replay
//! (PR 5 machinery) in amortized sub-linear time per arrival;
//! [`PricingPath::FromScratch`] rebuilds the residual schedule per arrival
//! and exists as the bench baseline. Both are observationally identical.
//!
//! # Example
//!
//! ```
//! use mcs_sim::online::{ArrivalTimeline, OnlineMechanism, StageThreshold, TimelineConfig};
//! use mcs_sim::Setting;
//!
//! let instance = Setting::one(80).scaled_down(4).generate(11).instance;
//! let timeline = ArrivalTimeline::generate(&instance, &TimelineConfig::default(), 11);
//! let report = StageThreshold::new().run(&instance, &timeline, 11).unwrap();
//! assert_eq!(report.decisions.len(), timeline.len());
//! if let Some(ratio) = report.competitive_ratio {
//!     assert!(ratio.is_finite() && ratio > 0.0);
//! }
//! ```

mod greedy;
mod report;
mod threshold;
mod timeline;

pub use greedy::GreedyBaseline;
pub use report::{
    AdmitReport, Decision, HindsightQuote, OnlineRoundReport, PricingPath, RejectReason,
    ReplayCounters, ThresholdInfo,
};
pub use threshold::StageThreshold;
pub use timeline::{Arrival, ArrivalTimeline, TimelineConfig};

use mcs_auction::{OnlinePricer, ScheduleEngine, SelectionRule};
use mcs_types::{Instance, McsError, WorkerId};

/// Matches the engines' coverage slack (`mcs-auction`'s `COVER_EPS`).
pub(crate) const COVER_EPS: f64 = 1e-9;

/// An online admission mechanism over a streamed arrival timeline.
pub trait OnlineMechanism {
    /// Stable mechanism name used in reports and tables.
    fn name(&self) -> &'static str;

    /// Runs the mechanism over one timeline. Deterministic given
    /// `(instance, timeline, seed)`.
    fn run(
        &self,
        instance: &Instance,
        timeline: &ArrivalTimeline,
        seed: u64,
    ) -> Result<OnlineRoundReport, McsError>;
}

/// The offline benchmark: minimum uniform-price total payment of the full
/// hindsight instance under Algorithm 1's engine (`None` when even the
/// full pool cannot cover the requirements).
pub fn offline_optimum(instance: &Instance) -> Option<mcs_types::Price> {
    ScheduleEngine::new(SelectionRule::MarginalCoverage)
        .build(instance)
        .ok()
        .and_then(|s| s.min_total_payment())
}

/// Maintains the running hindsight quote over the arrived pool, either
/// incrementally (PR 5 replay) or from scratch per arrival.
pub(crate) struct HindsightTracker {
    path: PricingPath,
    pricer: OnlinePricer,
    engine: ScheduleEngine,
    requirements: Vec<f64>,
    arrived: Vec<WorkerId>,
    seen: Vec<bool>,
    last: Option<HindsightQuote>,
}

impl HindsightTracker {
    pub(crate) fn new(instance: &Instance, path: PricingPath) -> HindsightTracker {
        let pricer = OnlinePricer::new(instance);
        let cover = instance.sparse_coverage();
        use mcs_types::CoverageView;
        HindsightTracker {
            path,
            pricer,
            engine: ScheduleEngine::new(SelectionRule::MarginalCoverage),
            requirements: cover.requirements().to_vec(),
            arrived: Vec::new(),
            seen: vec![false; instance.num_workers()],
            last: None,
        }
    }

    /// Absorbs one arrival and returns the updated quote. Re-arrivals of a
    /// worker already seen leave the quote unchanged.
    pub(crate) fn observe(
        &mut self,
        instance: &Instance,
        w: WorkerId,
    ) -> Result<Option<HindsightQuote>, McsError> {
        let idx = w.0 as usize;
        if idx >= self.seen.len() {
            return Err(McsError::WorkerOutOfRange {
                worker: w,
                num_workers: self.seen.len(),
            });
        }
        if self.seen[idx] {
            return Ok(self.last);
        }
        self.seen[idx] = true;
        let quote = match self.path {
            PricingPath::Incremental => self.pricer.push(w)?.map(|q| HindsightQuote {
                price: q.price,
                winners: q.winners,
            }),
            PricingPath::FromScratch => {
                self.arrived.push(w);
                self.engine
                    .build_residual(instance, &self.requirements, &self.arrived)
                    .ok()
                    .map(|s| HindsightQuote {
                        price: s.price(0),
                        winners: s.winners(0).len(),
                    })
            }
        };
        self.last = quote;
        Ok(quote)
    }

    /// Replay counters (zero for the from-scratch path).
    pub(crate) fn counters(&self) -> ReplayCounters {
        match self.path {
            PricingPath::Incremental => self.pricer.stats().into(),
            PricingPath::FromScratch => ReplayCounters::default(),
        }
    }
}

/// Shared end-of-round accounting: achieved coverage fraction and the
/// competitive ratio against the offline optimum.
pub(crate) fn round_summary(
    total_requirement: f64,
    remaining: f64,
    total_payment: mcs_types::Price,
    offline_payment: Option<mcs_types::Price>,
) -> (f64, bool, Option<f64>) {
    let covered = remaining <= COVER_EPS;
    let achieved = if total_requirement <= COVER_EPS {
        1.0
    } else {
        (1.0 - remaining / total_requirement).clamp(0.0, 1.0)
    };
    let ratio = match offline_payment {
        Some(off) if covered && off.tenths() > 0 => Some(total_payment.as_f64() / off.as_f64()),
        _ => None,
    };
    (achieved, covered, ratio)
}
