//! OMG-style stage sampling: learn a threshold from a rejected prefix,
//! post a price, admit by marginal-coverage density.

use mcs_auction::replay::{greedy_sequence, marginal_coverage, selection_gains};
use mcs_auction::{ExponentialMechanism, ScheduleEngine, SelectionRule};
use mcs_num::rng;
use mcs_types::{CoverageView, Instance, McsError, Price, WorkerId};

use super::report::{
    AdmitReport, Decision, OnlineRoundReport, PricingPath, RejectReason, ThresholdInfo,
};
use super::timeline::ArrivalTimeline;
use super::{round_summary, HindsightTracker, OnlineMechanism, COVER_EPS};

/// Derivation stream for the DP threshold-price draw.
const STREAM_THRESHOLD: u64 = 0x4F4E_4C50; // "ONLP"

/// Density comparisons tolerate this much absolute slack so a worker whose
/// density *equals* the learned threshold (the least dense sample winner
/// re-arriving, say) is admitted, not knife-edge rejected.
const DENSITY_EPS: f64 = 1e-12;

/// The threshold-based stage-sampling online mechanism.
///
/// **Stage 1 (observe).** The first `sample_fraction` of arrivals are
/// observed and rejected — never admitted, never paid. The engine builds
/// the residual schedule of the sample pool; its cheapest feasible price
/// becomes the posted price `p̂`, and the least dense selection-time
/// marginal gain of the sample winner sequence at `p̂` divided by `p̂`
/// becomes the density threshold `ρ̂` (scaled by `density_relax`).
///
/// **Stage 2 (admit).** Every later arrival bidding at most `p̂` whose
/// marginal coverage per unit of `p̂` is at least `ρ̂` is admitted and paid
/// exactly `p̂`, until the coverage requirements are met.
///
/// Because `p̂` and `ρ̂` depend only on the *sample* (whose members are
/// never paid) and admission depends on a worker's report only through the
/// bid-at-most-`p̂` gate, no worker can raise their payment — or buy
/// admission at better terms — by misreporting cost: the mechanism is
/// truthful in arrival order. The proptests quantify this over seeded
/// arrival permutations.
///
/// With [`StageThreshold::epsilon`] set, `p̂` is instead drawn from the
/// exponential-mechanism PMF over the sample schedule — the same
/// `Pr[p = x] ∝ exp(−ε·x·|S(x)|/(2N·c_max))` channel as the offline
/// auction — making the posted-price channel ε-differentially private in
/// the sample's bid profile. `mcs-verify` checks this exactly.
///
/// With [`StageThreshold::lookahead`] set, stage 1 sees the *whole pool*
/// before `t = 0` and stage 2 admits exactly the offline engine's
/// cheapest-feasible winner set — the degenerate-timeline anchor that must
/// be byte-identical to the offline round. Lookahead ignores `epsilon`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageThreshold {
    sample_fraction: f64,
    lookahead: bool,
    density_relax: f64,
    epsilon: Option<f64>,
    pricing: PricingPath,
}

impl Default for StageThreshold {
    fn default() -> Self {
        StageThreshold {
            sample_fraction: 0.25,
            lookahead: false,
            density_relax: 1.0,
            epsilon: None,
            pricing: PricingPath::Incremental,
        }
    }
}

impl StageThreshold {
    /// The default mechanism: 25% observation prefix, deterministic
    /// cheapest-feasible posted price, incremental hindsight pricing.
    pub fn new() -> StageThreshold {
        StageThreshold::default()
    }

    /// Sets the observed (and rejected) prefix fraction, clamped to
    /// `[0, 1]`.
    pub fn sample_fraction(mut self, fraction: f64) -> StageThreshold {
        self.sample_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Lookahead verification mode: the threshold is learned from the
    /// whole pool before `t = 0` and admission mirrors the offline winner
    /// set exactly.
    pub fn lookahead(mut self, on: bool) -> StageThreshold {
        self.lookahead = on;
        self
    }

    /// Scales the density threshold; values below `1.0` admit less dense
    /// workers than the sample suggests.
    pub fn density_relax(mut self, relax: f64) -> StageThreshold {
        self.density_relax = relax.max(0.0);
        self
    }

    /// Draws the posted price from the exponential-mechanism PMF over the
    /// sample schedule instead of taking the cheapest feasible price,
    /// making the price channel ε-DP in the sample bids.
    pub fn epsilon(mut self, epsilon: f64) -> StageThreshold {
        self.epsilon = Some(epsilon);
        self
    }

    /// Selects the hindsight pricing path (incremental replay by default).
    pub fn pricing(mut self, path: PricingPath) -> StageThreshold {
        self.pricing = path;
        self
    }

    fn run_lookahead(
        &self,
        instance: &Instance,
        timeline: &ArrivalTimeline,
    ) -> Result<OnlineRoundReport, McsError> {
        let cover = instance.sparse_coverage();
        let requirements = cover.requirements().to_vec();
        let total_requirement: f64 = requirements.iter().map(|r| r.max(0.0)).sum();

        let engine = ScheduleEngine::new(SelectionRule::MarginalCoverage);
        let offline = engine.build(instance)?;
        let price = offline.price(0);
        let winners = offline.winners(0);
        let offline_payment = offline.min_total_payment();

        // Reconstruct the selection-time density of the least dense winner
        // for the report (the admission rule itself is set membership).
        let candidates: Vec<WorkerId> = (0..instance.num_workers() as u32)
            .map(WorkerId)
            .filter(|&w| instance.bids().bid(w).price() <= price)
            .collect();
        let sequence = greedy_sequence(instance, &requirements, &candidates)?;
        let gains = selection_gains(&cover, &requirements, &sequence);
        let density = if sequence.is_empty() {
            0.0
        } else {
            gains.iter().fold(f64::INFINITY, |m, &g| m.min(g))
                / price.as_f64().max(f64::MIN_POSITIVE)
        };

        let mut tracker = HindsightTracker::new(instance, self.pricing);
        let mut residual = requirements.clone();
        let mut remaining = total_requirement;
        let mut decisions = Vec::with_capacity(timeline.len());
        let mut accepted = Vec::new();
        let mut paid_tenths: i64 = 0;

        for a in timeline.arrivals() {
            let hindsight = tracker.observe(instance, a.worker)?;
            let gain = marginal_coverage(&cover, a.worker, &residual);
            let decision = if winners.binary_search(&a.worker).is_ok() {
                accepted.push(a.worker);
                paid_tenths += price.tenths();
                mcs_auction::replay::apply_coverage(
                    &cover,
                    a.worker,
                    &mut residual,
                    &mut remaining,
                );
                Decision::Accepted { payment: price }
            } else {
                Decision::Rejected(RejectReason::NotSelected)
            };
            decisions.push(AdmitReport {
                worker: a.worker,
                at: a.at,
                decision,
                marginal_coverage: gain,
                hindsight,
            });
        }

        accepted.sort_unstable();
        let total_payment = Price::from_tenths(paid_tenths);
        let (achieved, covered, ratio) =
            round_summary(total_requirement, remaining, total_payment, offline_payment);
        Ok(OnlineRoundReport {
            mechanism: self.name().to_string(),
            decisions,
            accepted,
            total_payment,
            achieved_coverage: achieved,
            covered,
            offline_payment,
            competitive_ratio: ratio,
            threshold: Some(ThresholdInfo {
                price,
                density,
                sample_size: 0,
                fallback: false,
            }),
            replay: tracker.counters(),
            pricing: self.pricing,
        })
    }
}

impl OnlineMechanism for StageThreshold {
    fn name(&self) -> &'static str {
        "stage-threshold"
    }

    fn run(
        &self,
        instance: &Instance,
        timeline: &ArrivalTimeline,
        seed: u64,
    ) -> Result<OnlineRoundReport, McsError> {
        if self.lookahead {
            return self.run_lookahead(instance, timeline);
        }

        let cover = instance.sparse_coverage();
        let requirements = cover.requirements().to_vec();
        let total_requirement: f64 = requirements.iter().map(|r| r.max(0.0)).sum();
        let offline_payment = super::offline_optimum(instance);

        let n = timeline.len();
        let sample_size = ((self.sample_fraction * n as f64).ceil() as usize).min(n);
        let sample_pool: Vec<WorkerId> = timeline.arrivals()[..sample_size]
            .iter()
            .map(|a| a.worker)
            .collect();

        // Stage 1: learn (p̂, ρ̂) from the sample pool alone.
        let engine = ScheduleEngine::new(SelectionRule::MarginalCoverage);
        let learned = engine.build_residual(instance, &requirements, &sample_pool);
        let (price, density, fallback) = match learned {
            Ok(schedule) => {
                let price = match self.epsilon {
                    Some(epsilon) => {
                        let pmf = ExponentialMechanism::for_instance(epsilon, instance)?
                            .pmf(schedule.clone());
                        let mut r = rng::derived(seed, STREAM_THRESHOLD);
                        pmf.sample(&mut r).price()
                    }
                    None => schedule.price(0),
                };
                let candidates: Vec<WorkerId> = sample_pool
                    .iter()
                    .copied()
                    .filter(|&w| instance.bids().bid(w).price() <= price)
                    .collect();
                match greedy_sequence(instance, &requirements, &candidates) {
                    Ok(sequence) if !sequence.is_empty() => {
                        let gains = selection_gains(&cover, &requirements, &sequence);
                        let min_gain = gains.iter().fold(f64::INFINITY, |m, &g| m.min(g));
                        let density =
                            self.density_relax * min_gain / price.as_f64().max(f64::MIN_POSITIVE);
                        (price, density, false)
                    }
                    Ok(_) => (price, 0.0, false),
                    Err(_) => (instance.price_grid().max(), 0.0, true),
                }
            }
            // Sample too thin to cover: fall back to the most permissive
            // threshold so the round can still chase coverage.
            Err(_) => (instance.price_grid().max(), 0.0, true),
        };

        // Stage 2: admit by density at the posted price.
        let mut tracker = HindsightTracker::new(instance, self.pricing);
        let mut residual = requirements.clone();
        let mut remaining = total_requirement;
        let mut decisions = Vec::with_capacity(n);
        let mut accepted = Vec::new();
        let mut paid_tenths: i64 = 0;

        for (idx, a) in timeline.arrivals().iter().enumerate() {
            let hindsight = tracker.observe(instance, a.worker)?;
            let gain = marginal_coverage(&cover, a.worker, &residual);
            let bid = instance.bids().bid(a.worker).price();
            let decision = if idx < sample_size {
                Decision::Rejected(RejectReason::SampleObserved)
            } else if remaining <= COVER_EPS {
                Decision::Rejected(RejectReason::CoverageMet)
            } else if bid > price {
                Decision::Rejected(RejectReason::QuoteExceeded)
            } else if gain <= COVER_EPS {
                Decision::Rejected(RejectReason::NotNeeded)
            } else if gain / price.as_f64().max(f64::MIN_POSITIVE) + DENSITY_EPS < density {
                Decision::Rejected(RejectReason::BelowDensity)
            } else {
                accepted.push(a.worker);
                paid_tenths += price.tenths();
                mcs_auction::replay::apply_coverage(
                    &cover,
                    a.worker,
                    &mut residual,
                    &mut remaining,
                );
                Decision::Accepted { payment: price }
            };
            decisions.push(AdmitReport {
                worker: a.worker,
                at: a.at,
                decision,
                marginal_coverage: gain,
                hindsight,
            });
        }

        accepted.sort_unstable();
        let total_payment = Price::from_tenths(paid_tenths);
        let (achieved, covered, ratio) =
            round_summary(total_requirement, remaining, total_payment, offline_payment);
        Ok(OnlineRoundReport {
            mechanism: self.name().to_string(),
            decisions,
            accepted,
            total_payment,
            achieved_coverage: achieved,
            covered,
            offline_payment,
            competitive_ratio: ratio,
            threshold: Some(ThresholdInfo {
                price,
                density,
                sample_size,
                fallback,
            }),
            replay: tracker.counters(),
            pricing: self.pricing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::TimelineConfig;
    use crate::Setting;

    #[test]
    fn lookahead_on_degenerate_timeline_mirrors_the_offline_round() {
        for seed in [3_u64, 17, 92] {
            let instance = Setting::one(80).scaled_down(4).generate(seed).instance;
            let timeline = ArrivalTimeline::degenerate(&instance);
            let report = StageThreshold::new()
                .lookahead(true)
                .run(&instance, &timeline, seed)
                .expect("lookahead run");
            let offline = ScheduleEngine::new(SelectionRule::MarginalCoverage)
                .build(&instance)
                .expect("offline build");
            assert_eq!(report.accepted, offline.winners(0));
            assert_eq!(
                report.total_payment,
                offline.total_payment(0),
                "uniform posted price × winners must match the offline bar"
            );
            assert!(report.covered);
            assert!((report.achieved_coverage - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn incremental_and_from_scratch_hindsight_agree() {
        let instance = Setting::one(80).scaled_down(4).generate(5).instance;
        let timeline = ArrivalTimeline::generate(&instance, &TimelineConfig::default(), 5);
        let a = StageThreshold::new()
            .pricing(PricingPath::Incremental)
            .run(&instance, &timeline, 5)
            .expect("incremental");
        let b = StageThreshold::new()
            .pricing(PricingPath::FromScratch)
            .run(&instance, &timeline, 5)
            .expect("from scratch");
        for (x, y) in a.decisions.iter().zip(&b.decisions) {
            assert_eq!(x.hindsight, y.hindsight, "worker {:?}", x.worker);
            assert_eq!(x.decision, y.decision);
        }
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.total_payment, b.total_payment);
    }

    #[test]
    fn sample_workers_are_never_paid_and_admits_pay_the_posted_price() {
        let instance = Setting::one(80).scaled_down(2).generate(9).instance;
        let timeline = ArrivalTimeline::generate(&instance, &TimelineConfig::default(), 9);
        let report = StageThreshold::new()
            .run(&instance, &timeline, 9)
            .expect("run");
        let info = report.threshold.expect("threshold info");
        for (idx, d) in report.decisions.iter().enumerate() {
            if idx < info.sample_size {
                assert_eq!(d.decision, Decision::Rejected(RejectReason::SampleObserved));
            }
            if let Decision::Accepted { payment } = d.decision {
                assert_eq!(payment, info.price);
            }
        }
        assert_eq!(
            report.total_payment.tenths(),
            info.price.tenths() * report.accepted.len() as i64
        );
    }

    #[test]
    fn dp_price_draw_is_seed_deterministic_and_on_grid() {
        let instance = Setting::one(80).scaled_down(4).generate(21).instance;
        let timeline = ArrivalTimeline::generate(&instance, &TimelineConfig::default(), 21);
        let mech = StageThreshold::new().epsilon(0.5);
        let a = mech.run(&instance, &timeline, 21).expect("run a");
        let b = mech.run(&instance, &timeline, 21).expect("run b");
        assert_eq!(a, b, "same seed, same report");
        let info = a.threshold.expect("threshold");
        assert!(instance.price_grid().contains(info.price));
    }
}
