//! Seeded arrival/departure timelines over an [`Instance`]'s worker pool.
//!
//! The offline auction assumes every bid is on the table before selection.
//! Streaming rounds instead see workers *arrive* over a discrete horizon
//! and *depart* after a bounded stay; the platform must decide admission
//! and payment while the worker is present. [`ArrivalTimeline`] is the
//! deterministic workload: given an [`Instance`] and a seed it fixes, for
//! every worker, an arrival tick drawn uniformly over the horizon and a
//! geometric-tailed stay, then orders arrivals by tick with a seeded
//! permutation breaking same-tick ties. The [`ArrivalTimeline::degenerate`]
//! constructor is the verification anchor: everyone present at `t = 0`
//! with no departures, which must reduce any reasonable online mechanism
//! to its offline counterpart.

use mcs_num::rng;
use mcs_types::{Instance, WorkerId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Derivation stream for timeline randomness, disjoint from the mechanism
/// and instance-generation streams.
const STREAM_TIMELINE: u64 = 0x4F4E_4C54; // "ONLT"

/// Parameters of the seeded arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineConfig {
    /// Number of discrete ticks arrivals are spread over (uniformly).
    /// Lower horizons mean denser arrival bursts; `0` is clamped to `1`.
    pub horizon: u64,
    /// Mean of the exponential stay length in ticks (clamped to ≥ 1).
    pub mean_stay: f64,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            horizon: 1_000,
            mean_stay: 250.0,
        }
    }
}

impl TimelineConfig {
    /// Arrival density in workers per tick for an `n`-worker pool.
    pub fn density(&self, num_workers: usize) -> f64 {
        num_workers as f64 / self.horizon.max(1) as f64
    }
}

/// One worker's presence window: arrives at `at`, must be decided before
/// `departs` (exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// The arriving worker.
    pub worker: WorkerId,
    /// Arrival tick.
    pub at: u64,
    /// Departure tick; the decision deadline.
    pub departs: u64,
}

/// A complete, deterministic arrival schedule over an instance's workers,
/// sorted by arrival tick (same-tick ties broken by a seeded permutation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalTimeline {
    arrivals: Vec<Arrival>,
    horizon: u64,
}

impl ArrivalTimeline {
    /// Generates a seeded timeline: every worker of `instance` arrives
    /// exactly once, uniformly over `config.horizon`, staying an
    /// exponential number of ticks with mean `config.mean_stay`.
    pub fn generate(instance: &Instance, config: &TimelineConfig, seed: u64) -> ArrivalTimeline {
        let mut r = rng::derived(seed, STREAM_TIMELINE);
        let horizon = config.horizon.max(1);
        let mean_stay = config.mean_stay.max(1.0);
        let mut keyed: Vec<(u64, u64, Arrival)> = (0..instance.num_workers())
            .map(|i| {
                let worker = WorkerId(i as u32);
                let at = r.gen_range(0..horizon);
                let u: f64 = r.gen_range(0.0..1.0);
                let stay = (-mean_stay * (1.0 - u).ln()).ceil().max(1.0) as u64;
                let tiebreak: u64 = r.gen();
                (
                    at,
                    tiebreak,
                    Arrival {
                        worker,
                        at,
                        departs: at.saturating_add(stay),
                    },
                )
            })
            .collect();
        keyed.sort_by_key(|&(at, tiebreak, a)| (at, tiebreak, a.worker));
        ArrivalTimeline {
            arrivals: keyed.into_iter().map(|(_, _, a)| a).collect(),
            horizon,
        }
    }

    /// The degenerate timeline: every worker present at `t = 0` in worker-id
    /// order with no departures. Online mechanisms run in lookahead mode over
    /// this timeline must reproduce the offline round exactly — the
    /// differential anchor `mcs-verify` checks.
    pub fn degenerate(instance: &Instance) -> ArrivalTimeline {
        ArrivalTimeline {
            arrivals: (0..instance.num_workers())
                .map(|i| Arrival {
                    worker: WorkerId(i as u32),
                    at: 0,
                    departs: u64::MAX,
                })
                .collect(),
            horizon: 1,
        }
    }

    /// A timeline over an explicit arrival order, everyone at `t = 0` with
    /// no departures — the hook the truthfulness proptests use to quantify
    /// over arbitrary arrival permutations.
    pub fn from_order(order: &[WorkerId]) -> ArrivalTimeline {
        ArrivalTimeline {
            arrivals: order
                .iter()
                .map(|&worker| Arrival {
                    worker,
                    at: 0,
                    departs: u64::MAX,
                })
                .collect(),
            horizon: 1,
        }
    }

    /// The arrivals in decision order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The generation horizon in ticks.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Realised arrival density in workers per tick.
    pub fn density(&self) -> f64 {
        self.arrivals.len() as f64 / self.horizon.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_types::{Bid, Bundle, Price, SkillMatrix, TaskId};

    fn tiny_instance(n: usize) -> Instance {
        let bids: Vec<Bid> = (0..n)
            .map(|i| {
                Bid::new(
                    Bundle::new(vec![TaskId(0)]),
                    Price::from_f64(10.0 + i as f64),
                )
            })
            .collect();
        let skills = SkillMatrix::from_rows(vec![vec![0.9]; n]).unwrap();
        Instance::builder(1)
            .bids(bids)
            .skills(skills)
            .uniform_error_bound(0.4)
            .price_grid_f64(10.0, 30.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(30.0))
            .build()
            .unwrap()
    }

    #[test]
    fn generation_is_deterministic_and_complete() {
        let instance = tiny_instance(16);
        let config = TimelineConfig::default();
        let a = ArrivalTimeline::generate(&instance, &config, 7);
        let b = ArrivalTimeline::generate(&instance, &config, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        let mut seen: Vec<u32> = a.arrivals().iter().map(|x| x.worker.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
        assert!(a.arrivals().windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.arrivals().iter().all(|x| x.departs > x.at));
        let c = ArrivalTimeline::generate(&instance, &config, 8);
        assert_ne!(a, c, "different seeds should permute the timeline");
    }

    #[test]
    fn degenerate_timeline_is_everyone_at_zero() {
        let instance = tiny_instance(5);
        let t = ArrivalTimeline::degenerate(&instance);
        assert_eq!(t.len(), 5);
        assert!(t
            .arrivals()
            .iter()
            .all(|a| a.at == 0 && a.departs == u64::MAX));
        let ids: Vec<u32> = t.arrivals().iter().map(|a| a.worker.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
