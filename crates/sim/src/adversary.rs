//! The honest-but-curious adversary: Bayesian inference over repeated
//! auction outcomes.
//!
//! The paper's threat model is a worker who follows the protocol but tries
//! to infer a colleague's bid from the payments she observes. With an
//! ε-differentially private mechanism, `R` independent observed rounds can
//! shift the adversary's log-odds between two candidate bids by at most
//! `ε·R` — composition of DP. This module implements the optimal
//! (likelihood-ratio) attacker so experiments can verify the bound and
//! visualize how slowly information leaks at small ε.

use rand::Rng;

use mcs_auction::PricePmf;
use mcs_types::Price;

/// The adversary's belief update after observing auction prices under two
/// competing hypotheses about the target's bid.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOutcome {
    /// Log-likelihood ratio `ln Pr[obs | H_a] − ln Pr[obs | H_b]`
    /// accumulated over the observations.
    pub log_likelihood_ratio: f64,
    /// The differential-privacy cap `ε·R` on the absolute log-ratio.
    pub bound: f64,
    /// Number of observations used (observations outside either support
    /// contribute nothing and are not counted).
    pub rounds_used: usize,
}

impl InferenceOutcome {
    /// Whether the composition bound held.
    pub fn within_bound(&self) -> bool {
        self.log_likelihood_ratio.abs() <= self.bound + 1e-9
    }

    /// Posterior probability of hypothesis `H_a` from a prior probability,
    /// via Bayes' rule on the accumulated likelihood ratio.
    ///
    /// # Panics
    ///
    /// Panics unless `prior_a ∈ (0, 1)`.
    pub fn posterior_a(&self, prior_a: f64) -> f64 {
        assert!(prior_a > 0.0 && prior_a < 1.0, "prior must be in (0, 1)");
        let prior_odds = prior_a / (1.0 - prior_a);
        let odds = prior_odds * self.log_likelihood_ratio.exp();
        odds / (1.0 + odds)
    }
}

/// Runs the likelihood-ratio attack: the true world is `H_a` (prices are
/// drawn from `pmf_a` for `rounds` independent auctions); the adversary
/// updates her odds between `H_a` and `H_b`.
///
/// `epsilon` is the mechanism's privacy budget, used only to compute the
/// composition bound. Observed prices absent from either PMF's support are
/// skipped (they would give infinite evidence; with a shared feasible
/// price set this never happens).
pub fn likelihood_ratio_attack<R: Rng + ?Sized>(
    pmf_a: &PricePmf,
    pmf_b: &PricePmf,
    epsilon: f64,
    rounds: usize,
    rng: &mut R,
) -> InferenceOutcome {
    let mut llr = 0.0f64;
    let mut used = 0usize;
    for _ in 0..rounds {
        let outcome = pmf_a.sample(rng);
        let price = outcome.price();
        let (pa, pb) = (prob_of(pmf_a, price), prob_of(pmf_b, price));
        match (pa, pb) {
            (Some(pa), Some(pb)) if pa > 0.0 && pb > 0.0 => {
                llr += (pa / pb).ln();
                used += 1;
            }
            _ => {}
        }
    }
    InferenceOutcome {
        log_likelihood_ratio: llr,
        bound: epsilon * used as f64,
        rounds_used: used,
    }
}

fn prob_of(pmf: &PricePmf, price: Price) -> Option<f64> {
    pmf.schedule()
        .prices()
        .iter()
        .position(|&p| p == price)
        .map(|i| pmf.probs()[i])
}

/// The exact *expected* per-round evidence `E_a[ln(P_a/P_b)]` — the KL
/// divergence, i.e. the paper's privacy-leakage measure (Definition 8).
/// The expected log-odds shift after `R` rounds is `R` times this.
///
/// Returns `None` when the supports differ.
pub fn expected_evidence_per_round(pmf_a: &PricePmf, pmf_b: &PricePmf) -> Option<f64> {
    mcs_auction::privacy::kl_leakage(pmf_a, pmf_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbour::{random_worker, resample_neighbour};
    use crate::Setting;
    use mcs_auction::{DpHsrcAuction, ScheduledMechanism};
    use mcs_num::rng;

    /// Finds a neighbour whose bid change keeps the feasible support; a
    /// handful of resampling attempts always suffices on these instances.
    fn neighbour_pmfs(eps: f64, seed: u64) -> Option<(PricePmf, PricePmf)> {
        let s = Setting::one(80).scaled_down(4);
        let g = s.generate(seed);
        let auction = DpHsrcAuction::new(eps).ok()?;
        let a = auction.pmf(&g.instance).ok()?;
        for attempt in 0..32u64 {
            let mut r = rng::derived(seed, 3 + attempt);
            let w = random_worker(&g.instance, &mut r);
            let Ok(nb) = resample_neighbour(&g.instance, &s, w, &mut r) else {
                continue;
            };
            let Ok(b) = auction.pmf(&nb) else { continue };
            if a.schedule().prices() == b.schedule().prices() {
                return Some((a, b));
            }
        }
        None
    }

    #[test]
    fn composition_bound_holds() {
        let eps = 0.1;
        let (a, b) = neighbour_pmfs(eps, 5).expect("same support");
        let mut r = rng::seeded(1);
        for rounds in [1usize, 10, 100] {
            let out = likelihood_ratio_attack(&a, &b, eps, rounds, &mut r);
            assert!(
                out.within_bound(),
                "rounds {rounds}: |llr| {} > bound {}",
                out.log_likelihood_ratio.abs(),
                out.bound
            );
        }
    }

    #[test]
    fn small_epsilon_keeps_posterior_near_prior() {
        let eps = 0.01;
        let (a, b) = neighbour_pmfs(eps, 7).expect("same support");
        let mut r = rng::seeded(2);
        let out = likelihood_ratio_attack(&a, &b, eps, 50, &mut r);
        let posterior = out.posterior_a(0.5);
        // 50 rounds at ε=0.01 can shift the posterior from 0.5 by at most
        // e^0.5/(1+e^0.5) ≈ 0.62.
        assert!((posterior - 0.5).abs() < 0.13, "posterior {posterior}");
    }

    #[test]
    fn identical_hypotheses_give_zero_evidence() {
        let (a, _) = neighbour_pmfs(0.1, 9).expect("same support");
        let mut r = rng::seeded(3);
        let out = likelihood_ratio_attack(&a, &a, 0.1, 20, &mut r);
        assert_eq!(out.log_likelihood_ratio, 0.0);
        assert_eq!(out.posterior_a(0.3), 0.3);
        assert_eq!(expected_evidence_per_round(&a, &a), Some(0.0));
    }

    #[test]
    fn evidence_accumulates_with_larger_epsilon() {
        let mut r1 = rng::seeded(4);
        let mut r2 = rng::seeded(4);
        let (a_small, b_small) = neighbour_pmfs(0.1, 11).expect("same support");
        let (a_big, b_big) = neighbour_pmfs(20.0, 11).expect("same support");
        let rounds = 200;
        let small = likelihood_ratio_attack(&a_small, &b_small, 0.1, rounds, &mut r1);
        let big = likelihood_ratio_attack(&a_big, &b_big, 20.0, rounds, &mut r2);
        // Expected evidence (KL) is larger at bigger ε; the sampled LLR
        // should reflect it.
        let kl_small = expected_evidence_per_round(&a_small, &b_small).unwrap();
        let kl_big = expected_evidence_per_round(&a_big, &b_big).unwrap();
        assert!(kl_small <= kl_big + 1e-12);
        assert!(small.log_likelihood_ratio.abs() <= big.log_likelihood_ratio.abs() + 1.0);
    }

    #[test]
    #[should_panic(expected = "prior must be in (0, 1)")]
    fn bad_prior_rejected() {
        let out = InferenceOutcome {
            log_likelihood_ratio: 0.0,
            bound: 0.0,
            rounds_used: 0,
        };
        let _ = out.posterior_a(1.0);
    }

    /// A one-task toy instance whose feasible price set is pinned by its
    /// grid, so two grids that do not overlap give PMFs with disjoint
    /// supports.
    fn toy_pmf(eps: f64, grid_min: f64, grid_max: f64) -> PricePmf {
        use mcs_types::{Bid, Bundle, Instance, SkillMatrix, TaskId};
        let instance = Instance::builder(1)
            .bids(vec![
                Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(1.0)),
                Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(1.5)),
                Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(2.0)),
            ])
            .skills(SkillMatrix::from_rows(vec![vec![0.9]; 3]).unwrap())
            .uniform_error_bound(0.4)
            .price_grid_f64(grid_min, grid_max, 0.5)
            .cost_range(Price::from_f64(1.0), Price::from_f64(grid_max))
            .build()
            .unwrap();
        DpHsrcAuction::new(eps).unwrap().pmf(&instance).unwrap()
    }

    #[test]
    fn disjoint_supports_yield_no_usable_evidence() {
        // Every observed price lies outside H_b's support: the attack
        // must skip all rounds rather than accumulate infinite evidence.
        let a = toy_pmf(0.1, 10.0, 12.0);
        let b = toy_pmf(0.1, 20.0, 22.0);
        let mut r = rng::seeded(17);
        let out = likelihood_ratio_attack(&a, &b, 0.1, 25, &mut r);
        assert_eq!(out.rounds_used, 0);
        assert_eq!(out.log_likelihood_ratio, 0.0);
        assert_eq!(out.bound, 0.0);
        assert!(out.within_bound());
        // The exact leakage measure refuses the comparison outright.
        assert_eq!(expected_evidence_per_round(&a, &b), None);
    }

    #[test]
    fn single_round_evidence_is_bounded_by_epsilon() {
        let eps = 0.1;
        let (a, b) = neighbour_pmfs(eps, 5).expect("same support");
        for seed in 0..20 {
            let mut r = rng::seeded(seed);
            let out = likelihood_ratio_attack(&a, &b, eps, 1, &mut r);
            assert_eq!(out.rounds_used, 1);
            assert!(
                out.log_likelihood_ratio.abs() <= eps + 1e-9,
                "seed {seed}: one round leaked {}",
                out.log_likelihood_ratio.abs()
            );
        }
    }

    #[test]
    fn zero_rounds_observe_nothing() {
        let (a, b) = neighbour_pmfs(0.1, 5).expect("same support");
        let mut r = rng::seeded(23);
        let out = likelihood_ratio_attack(&a, &b, 0.1, 0, &mut r);
        assert_eq!(out.rounds_used, 0);
        assert_eq!(out.log_likelihood_ratio, 0.0);
        assert_eq!(out.posterior_a(0.5), 0.5);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// KL evidence is non-negative, and zero exactly when the two
            /// PMFs coincide (Gibbs' inequality on a shared support).
            #[test]
            fn expected_evidence_is_nonnegative_and_zero_iff_identical(
                seed in 0u64..200,
                eps in 0.05f64..5.0,
            ) {
                let Some((a, b)) = neighbour_pmfs(eps, seed) else {
                    // No same-support neighbour found for this seed; the
                    // measure is defined only on shared supports.
                    return Ok(());
                };
                let kl = expected_evidence_per_round(&a, &b).expect("same support");
                prop_assert!(kl >= 0.0, "KL {kl} negative");
                prop_assert!(kl <= eps + 1e-9, "KL {kl} exceeds epsilon {eps}");
                let identical = a.probs() == b.probs();
                if identical {
                    prop_assert!(kl.abs() < 1e-12);
                }
                if kl == 0.0 {
                    for (pa, pb) in a.probs().iter().zip(b.probs()) {
                        prop_assert!((pa - pb).abs() < 1e-9,
                            "zero KL with differing probs {pa} vs {pb}");
                    }
                }
                // Self-comparison is exactly zero.
                prop_assert_eq!(expected_evidence_per_round(&a, &a), Some(0.0));
            }
        }
    }
}
