//! Plain-text table and CSV rendering for the experiment binaries.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// A row type that knows how to render itself into table cells.
pub trait TableRow {
    /// Column headers, aligned with [`TableRow::cells`].
    fn headers() -> Vec<&'static str>;
    /// One formatted cell per header.
    fn cells(&self) -> Vec<String>;
}

/// Renders rows as an aligned plain-text table.
///
/// # Examples
///
/// ```
/// use mcs_sim::output::{render_table, TableRow};
///
/// struct R(u32);
/// impl TableRow for R {
///     fn headers() -> Vec<&'static str> { vec!["x", "y"] }
///     fn cells(&self) -> Vec<String> { vec![self.0.to_string(), "ok".into()] }
/// }
/// let txt = render_table(&[R(1), R(22)]);
/// assert!(txt.contains("x"));
/// assert!(txt.contains("22"));
/// ```
pub fn render_table<T: TableRow>(rows: &[T]) -> String {
    let headers = T::headers();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let cells: Vec<Vec<String>> = rows.iter().map(TableRow::cells).collect();
    for row in &cells {
        for (w, c) in widths.iter_mut().zip(row) {
            *w = (*w).max(c.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cols: &[String], widths: &[usize]| -> String {
        cols.iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &cells {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Writes rows as CSV (header line + one line per row).
///
/// Cells containing commas or quotes are quoted per RFC 4180.
///
/// # Errors
///
/// Any I/O error from creating or writing the file.
pub fn write_csv<T: TableRow, P: AsRef<Path>>(path: P, rows: &[T]) -> io::Result<()> {
    let mut file = File::create(path)?;
    writeln!(file, "{}", T::headers().join(","))?;
    for row in rows {
        let line = row
            .cells()
            .iter()
            .map(|c| csv_escape(c))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(file, "{line}")?;
    }
    Ok(())
}

fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct R(&'static str, &'static str);
    impl TableRow for R {
        fn headers() -> Vec<&'static str> {
            vec!["a", "bbb"]
        }
        fn cells(&self) -> Vec<String> {
            vec![self.0.into(), self.1.into()]
        }
    }

    #[test]
    fn table_aligns_columns() {
        let txt = render_table(&[R("1", "x"), R("22222", "y")]);
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows share the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("mcs_sim_output_test.csv");
        write_csv(&dir, &[R("1", "a,b"), R("2", "q\"uote")]).unwrap();
        let content = std::fs::read_to_string(&dir).unwrap();
        let mut lines = content.lines();
        assert_eq!(lines.next(), Some("a,bbb"));
        assert_eq!(lines.next(), Some("1,\"a,b\""));
        assert_eq!(lines.next(), Some("2,\"q\"\"uote\""));
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn escape_rules() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"t"), "\"q\"\"t\"");
    }
}
