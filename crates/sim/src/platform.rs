//! End-to-end MCS platform workflow over the synthetic label model.
//!
//! This module wires the full §III-A loop together: the platform announces
//! tasks, runs the DP-hSRC auction over the workers' bids, the winners
//! execute their bundles under the `θ`-noise model, the platform aggregates
//! with the Lemma 1 weighted rule, and every winner is paid the clearing
//! price. The paper evaluates the auction in isolation; this harness
//! exercises the whole pipeline the auction exists to serve, verifying
//! that the error-bound constraints actually deliver `Pr[l̂ ≠ l] ≤ δ`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mcs_agg::{
    achieved_coverage, generate_labels, weighted_aggregate, DawidSkene, Label, LabelSet,
};
use mcs_types::{Bundle, CoverageView, Instance, McsError, Price, TaskId, TrueType, WorkerId};

use mcs_auction::{AuctionOutcome, DpHsrcAuction, Mechanism, ScheduledMechanism};

use crate::campaign::{run_campaign, CampaignSpec, RoundPhase, RoundState, SkillSource};
use crate::faults::{
    achieved_delta, filter_labels, CompletionSampler, CoverageShortfall, FateCounts, FaultInjector,
    FaultPlan, WorkerFate,
};

/// The report of one full platform round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// The auction outcome (clearing price + winners).
    pub outcome: AuctionOutcome,
    /// Ground-truth labels drawn for this round.
    pub truth: Vec<Label>,
    /// Labels collected from the winners.
    pub labels: LabelSet,
    /// The platform's aggregated estimate per task (`None` = no labels).
    pub estimates: Vec<Option<Label>>,
    /// Per-task correctness of the aggregate.
    pub correct: Vec<bool>,
    /// Total amount paid out.
    pub total_paid: Price,
    /// Each worker's realized utility this round.
    pub utilities: Vec<Price>,
}

impl RoundReport {
    /// Fraction of tasks whose aggregate matched the truth.
    ///
    /// A round with *no tasks* is vacuously perfect (`1.0`); a task whose
    /// aggregate produced no estimate (`estimates[j] == None`, e.g. every
    /// label for it was dropped by faults) counts as *incorrect* — "we
    /// don't know" is not "we got it right".
    pub fn accuracy(&self) -> f64 {
        if self.truth.is_empty() {
            return 1.0;
        }
        let correct = self
            .truth
            .iter()
            .enumerate()
            .filter(|&(j, t)| self.estimates.get(j).copied().flatten() == Some(*t))
            .count();
        correct as f64 / self.truth.len() as f64
    }
}

/// Runs one complete platform round: auction → labelling → aggregation →
/// payment.
///
/// Generic over the auction: any [`Mechanism`] producing an
/// [`AuctionOutcome`] from an [`Instance`] (DP-hSRC, the baseline, …)
/// drives the same platform loop.
///
/// # Errors
///
/// Propagates auction errors ([`McsError::Infeasible`],
/// [`McsError::NoFeasiblePrice`]).
pub fn run_round<M, R>(
    instance: &Instance,
    types: &[TrueType],
    mechanism: &M,
    rng: &mut R,
) -> Result<RoundReport, McsError>
where
    M: Mechanism<Input = Instance, Output = AuctionOutcome>,
    R: Rng + ?Sized,
{
    let mut lifecycle = RoundState::batch();
    let outcome = match mechanism.run(instance, rng) {
        Ok(o) => o,
        Err(e) => {
            let _ = lifecycle.advance(RoundPhase::Aborted);
            return Err(e);
        }
    };
    lifecycle
        .advance(RoundPhase::Committed)
        .expect("open rounds commit");

    // Winners execute the bundles they bid.
    let assignment: Vec<(WorkerId, Bundle)> = outcome
        .winners()
        .iter()
        .map(|&w| (w, instance.bids().bid(w).bundle().clone()))
        .collect();
    let truth: Vec<Label> = (0..instance.num_tasks())
        .map(|_| Label::random(rng))
        .collect();
    let labels = generate_labels(instance.skills(), &truth, &assignment, rng);
    let estimates = weighted_aggregate(&labels, instance.skills(), instance.num_tasks());
    let correct: Vec<bool> = estimates
        .iter()
        .zip(&truth)
        .map(|(e, t)| *e == Some(*t))
        .collect();

    let total_paid = outcome.total_payment();
    let utilities: Vec<Price> = (0..instance.num_workers())
        .map(|i| outcome.utility_of(WorkerId(i as u32), &types[i]))
        .collect();
    lifecycle
        .advance(RoundPhase::Settled)
        .expect("committed rounds settle");

    Ok(RoundReport {
        outcome,
        truth,
        labels,
        estimates,
        correct,
        total_paid,
        utilities,
    })
}

/// Runs many rounds and returns the per-task empirical aggregation error,
/// alongside the per-round reports' payment statistics.
///
/// # Errors
///
/// Propagates auction errors from any round.
pub fn empirical_task_error<M, R>(
    instance: &Instance,
    types: &[TrueType],
    mechanism: &M,
    rounds: usize,
    rng: &mut R,
) -> Result<Vec<f64>, McsError>
where
    M: Mechanism<Input = Instance, Output = AuctionOutcome>,
    R: Rng + ?Sized,
{
    let mut errors = vec![0.0f64; instance.num_tasks()];
    for _ in 0..rounds {
        let report = run_round(instance, types, mechanism, rng)?;
        for (j, &ok) in report.correct.iter().enumerate() {
            if !ok {
                errors[j] += 1.0;
            }
        }
    }
    Ok(errors.into_iter().map(|e| e / rounds as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Setting;
    use mcs_num::rng;
    use mcs_types::TaskId;

    fn small() -> (Instance, Vec<TrueType>) {
        let g = Setting::one(80).scaled_down(4).generate(21);
        (g.instance, g.types)
    }

    #[test]
    fn round_pays_only_winners() {
        let (inst, types) = small();
        let mut r = rng::seeded(2);
        let report = run_round(&inst, &types, &DpHsrcAuction::new(0.1).unwrap(), &mut r).unwrap();
        assert_eq!(
            report.total_paid,
            report.outcome.price() * report.outcome.winners().len()
        );
        for i in 0..inst.num_workers() {
            let w = WorkerId(i as u32);
            if !report.outcome.is_winner(w) {
                assert_eq!(report.utilities[i], Price::ZERO);
            } else {
                assert!(report.utilities[i] >= Price::ZERO);
            }
        }
    }

    #[test]
    fn every_task_receives_labels() {
        // Feasibility of the winner set implies positive coverage of every
        // task, hence at least one label each.
        let (inst, types) = small();
        let mut r = rng::seeded(3);
        let report = run_round(&inst, &types, &DpHsrcAuction::new(0.1).unwrap(), &mut r).unwrap();
        for j in 0..inst.num_tasks() {
            assert!(
                !report.labels.for_task(TaskId(j as u32)).is_empty(),
                "task {j} got no labels"
            );
            assert!(report.estimates[j].is_some());
        }
    }

    #[test]
    fn empirical_error_within_delta() {
        let (inst, types) = small();
        let mut r = rng::seeded(4);
        let errors = empirical_task_error(
            &inst,
            &types,
            &DpHsrcAuction::new(0.1).unwrap(),
            300,
            &mut r,
        )
        .unwrap();
        for (j, (&err, &delta)) in errors.iter().zip(inst.deltas()).enumerate() {
            // Allow Monte-Carlo slack on top of δ.
            assert!(
                err <= delta + 0.08,
                "task {j}: error {err} exceeds delta {delta}"
            );
        }
    }

    #[test]
    fn accuracy_is_high_with_tight_deltas() {
        let (inst, types) = small();
        let mut r = rng::seeded(5);
        let report = run_round(&inst, &types, &DpHsrcAuction::new(0.1).unwrap(), &mut r).unwrap();
        assert!(report.accuracy() > 0.5);
    }
}

/// A multi-round sensing campaign: the platform repeatedly auctions the
/// task set, collects labels, and — optionally — replaces its skill record
/// `θ` with Dawid–Skene estimates from the labels gathered so far.
///
/// This closes the loop the paper leaves open in §III-A ("the issue of
/// exactly which method is used by the platform to calculate θ is
/// application dependent"): it shows the auction still performing when the
/// platform's knowledge of `θ` is *learned* rather than given.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Campaign {
    /// Privacy budget per auction round.
    pub epsilon: f64,
    /// Number of rounds.
    pub rounds: usize,
    /// After each round, refit worker accuracies by EM and run the next
    /// auction on the estimated skill matrix.
    pub reestimate_skills: bool,
}

/// The outcome of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Per-round reports, in order.
    pub rounds: Vec<RoundReport>,
    /// Total spend across all rounds.
    pub total_spend: Price,
    /// Mean per-round aggregation accuracy.
    pub mean_accuracy: f64,
    /// Mean absolute error of the final per-worker accuracy estimates
    /// against the true mean skills (only when re-estimating).
    pub final_skill_error: Option<f64>,
    /// Rounds where the estimated skills looked uncoverable and the
    /// auction fell back to the platform's prior skill record.
    pub fallback_rounds: usize,
}

impl Campaign {
    /// Runs the campaign on an instance with known true types.
    ///
    /// Labels are always *generated* from the true skills; when
    /// [`Campaign::reestimate_skills`] is set, the *auction* (winner
    /// selection and error-bound accounting) runs against the platform's
    /// current estimate instead, exactly like a deployed platform that
    /// only observes labels.
    ///
    /// # Errors
    ///
    /// Propagates auction errors from any round; an estimate-driven round
    /// that becomes infeasible (the estimated skills look too weak to
    /// cover) falls back to the true-skill instance for that round rather
    /// than aborting the campaign.
    pub fn run<R: Rng + ?Sized>(
        &self,
        instance: &Instance,
        types: &[TrueType],
        rng: &mut R,
    ) -> Result<CampaignReport, McsError> {
        let mechanism = match DpHsrcAuction::new(self.epsilon) {
            Ok(m) => m,
            // The pre-refactor loop built the auction inside each round,
            // so a zero-round campaign never validated ε at all; keep
            // that observable behaviour.
            Err(_) if self.rounds == 0 => return Ok(self.empty_report(instance)),
            Err(e) => return Err(e),
        };
        let spec = CampaignSpec {
            rounds: self.rounds,
            skills: if self.reestimate_skills {
                SkillSource::RefitEachRound
            } else {
                SkillSource::Known
            },
            ..CampaignSpec::benign(self.rounds)
        };
        let outcome = run_campaign(&spec, &mechanism, instance, types, rng)?;
        Ok(CampaignReport {
            rounds: outcome.rounds,
            total_spend: outcome.total_spend,
            mean_accuracy: outcome.mean_accuracy,
            final_skill_error: outcome.final_skill_error,
            fallback_rounds: outcome.fallback_rounds,
        })
    }

    /// The report of a campaign with no rounds, with the legacy closing
    /// refit (a Dawid–Skene fit over zero observations) when
    /// re-estimating.
    fn empty_report(&self, instance: &Instance) -> CampaignReport {
        let final_skill_error = self.reestimate_skills.then(|| {
            let all_labels = LabelSet::new(instance.num_tasks());
            let fit = DawidSkene::default().fit(&all_labels, instance.num_workers());
            let mut err = 0.0;
            for i in 0..instance.num_workers() {
                let w = WorkerId(i as u32);
                let true_mean: f64 = instance.skills().worker_row(w).iter().sum::<f64>()
                    / instance.num_tasks() as f64;
                let est = fit.accuracies[i];
                err += (est - true_mean).abs().min((1.0 - est - true_mean).abs());
            }
            err / instance.num_workers() as f64
        });
        CampaignReport {
            rounds: Vec::new(),
            total_spend: Price::ZERO,
            mean_accuracy: 1.0,
            final_skill_error,
            fallback_rounds: 0,
        }
    }
}

#[cfg(test)]
mod campaign_tests {
    use super::*;
    use crate::Setting;
    use mcs_num::rng;

    fn small() -> (Instance, Vec<TrueType>) {
        let g = Setting::one(80).scaled_down(4).generate(55);
        (g.instance, g.types)
    }

    #[test]
    fn campaign_accumulates_spend_and_rounds() {
        let (inst, types) = small();
        let mut r = rng::seeded(7);
        let campaign = Campaign {
            epsilon: 0.1,
            rounds: 4,
            reestimate_skills: false,
        };
        let report = campaign.run(&inst, &types, &mut r).unwrap();
        assert_eq!(report.rounds.len(), 4);
        let sum: Price = report
            .rounds
            .iter()
            .map(|rr| rr.outcome.total_payment())
            .sum();
        assert_eq!(report.total_spend, sum);
        assert!(report.final_skill_error.is_none());
        assert!(report.mean_accuracy > 0.5);
    }

    #[test]
    fn reestimation_keeps_the_campaign_running() {
        let (inst, types) = small();
        let mut r = rng::seeded(8);
        let campaign = Campaign {
            epsilon: 0.1,
            rounds: 5,
            reestimate_skills: true,
        };
        let report = campaign.run(&inst, &types, &mut r).unwrap();
        assert_eq!(report.rounds.len(), 5);
        // Skill estimates should land in the right ballpark after five
        // rounds of labels.
        let err = report.final_skill_error.unwrap();
        assert!(err < 0.25, "mean |theta_hat - theta| = {err}");
        assert!(report.mean_accuracy > 0.5);
    }

    #[test]
    fn zero_round_campaign_is_empty() {
        let (inst, types) = small();
        let mut r = rng::seeded(9);
        let report = Campaign {
            epsilon: 0.1,
            rounds: 0,
            reestimate_skills: false,
        }
        .run(&inst, &types, &mut r)
        .unwrap();
        assert!(report.rounds.is_empty());
        assert_eq!(report.total_spend, Price::ZERO);
        assert_eq!(report.mean_accuracy, 1.0);
    }
}

/// Knobs of the fault-tolerant round engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Deadline budget in abstract platform ticks: a straggler arriving
    /// within this many ticks still counts as delivered (and paid).
    pub deadline: u32,
    /// Maximum number of backfill re-auctions after the primary round.
    /// Zero disables backfill entirely: the round degrades immediately.
    pub max_backfill_rounds: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            deadline: 60,
            max_backfill_rounds: 2,
        }
    }
}

/// One backfill re-auction: the residual outcome and what its recruits
/// actually delivered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackfillRound {
    /// The residual auction's clearing price and recruits.
    pub outcome: AuctionOutcome,
    /// Fate of each recruit's submission.
    pub fates: Vec<(WorkerId, WorkerFate)>,
}

/// The report of a fault-tolerant platform round: what a [`RoundReport`]
/// records, plus the fault trace, the backfill history, and the *achieved*
/// (rather than promised) per-task error bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedRoundReport {
    /// The round viewed through the ordinary report lens. `labels`,
    /// `estimates` and `correct` reflect only what was actually delivered
    /// (primary survivors plus backfill recruits); `total_paid` and
    /// `utilities` account every phase's payments.
    pub round: RoundReport,
    /// Fate of each primary winner's submission.
    pub fates: Vec<(WorkerId, WorkerFate)>,
    /// The backfill re-auctions that produced winners, in order.
    pub backfill: Vec<BackfillRound>,
    /// Number of backfill re-auctions *attempted* — at least
    /// `backfill.len()`; one more when the final attempt found no feasible
    /// residual schedule and the round degraded instead.
    pub backfill_attempts: usize,
    /// Exactly who was paid how much, across all phases.
    pub paid: Vec<(WorkerId, Price)>,
    /// Per-task coverage `C_j = Σ q_ij` achieved by delivered labels.
    pub achieved_coverage: Vec<f64>,
    /// Per-task achieved error bound `δ̂_j = exp(−C_j / 2)` — the guarantee
    /// the platform can still honestly claim after faults (Lemma 1
    /// inverted). Equals the promised `δ_j` or better when coverage held.
    pub achieved_deltas: Vec<f64>,
    /// Tasks whose covering constraint is still unmet after backfill.
    /// Empty when the round fully recovered.
    pub shortfalls: Vec<CoverageShortfall>,
}

impl DegradedRoundReport {
    /// Whether the round ended with any task under-covered.
    pub fn degraded(&self) -> bool {
        !self.shortfalls.is_empty()
    }

    /// Tally of worker fates across the primary round *and* every backfill
    /// phase, keeping "never showed" ([`WorkerFate::NoShow`]) separate from
    /// "showed and failed" ([`WorkerFate::ShowedButFailed`]). Reputation
    /// systems treat the two very differently even though payment and
    /// coverage accounting do not.
    pub fn fate_counts(&self) -> FateCounts {
        let mut counts = FateCounts::tally(&self.fates);
        for bf in &self.backfill {
            counts.absorb(&FateCounts::tally(&bf.fates));
        }
        counts
    }

    /// Workers (across all phases) who never showed up at all.
    pub fn no_shows(&self) -> usize {
        self.fate_counts().no_show
    }

    /// Workers (across all phases) who showed up but delivered nothing
    /// usable.
    pub fn showed_but_failed(&self) -> usize {
        self.fate_counts().showed_but_failed
    }
}

/// Tolerance below which a residual requirement counts as satisfied,
/// matching the schedule engine's covering tolerance.
const RESIDUAL_EPS: f64 = 1e-9;

/// Runs one fault-tolerant platform round: auction → labelling under an
/// injected [`FaultPlan`] → bounded backfill re-auctions over the residual
/// covering constraints → aggregation of whatever arrived → payment of
/// workers who delivered.
///
/// The engine proceeds in phases:
///
/// 1. **Primary round** — identical to [`run_round`] up to label
///    generation; the injector then decides each winner's
///    [`WorkerFate`] and only surviving labels reach the platform.
///    Workers whose complete bundle arrived within
///    [`ResilienceConfig::deadline`] are paid the clearing price; no-shows,
///    partial submitters and late stragglers are not paid.
/// 2. **Backfill** — while some task's residual requirement
///    `Q'_j = Q_j − C_j` is positive and attempts remain, the mechanism's
///    [`ScheduledMechanism::reauction`] re-runs Algorithm 1 over the
///    still-unrecruited workers' standing bids against the residual
///    constraints. Recruits label, suffer their own fates (phase ≥ 1 of
///    the same plan), and are paid the backfill clearing price when they
///    deliver in full.
/// 3. **Graceful degradation** — when backfill is exhausted or infeasible,
///    the platform aggregates what arrived and reports the per-task
///    *achieved* error bounds `δ̂_j = exp(−C_j / 2)` plus a typed
///    [`CoverageShortfall`] for every task still below requirement.
///
/// Fault draws come from the plan's own seeded stream, never from `rng`,
/// so under an empty plan this function consumes exactly the randomness
/// [`run_round`] consumes and reproduces its report byte for byte.
///
/// # Errors
///
/// Propagates primary-auction errors ([`McsError::Infeasible`],
/// [`McsError::NoFeasiblePrice`]) and invalid fault plans
/// ([`McsError::Solver`]). Backfill infeasibility is *not* an error — it
/// is the degraded case the report describes.
pub fn run_round_resilient<M, R>(
    instance: &Instance,
    types: &[TrueType],
    mechanism: &M,
    plan: &FaultPlan,
    config: &ResilienceConfig,
    rng: &mut R,
) -> Result<DegradedRoundReport, McsError>
where
    M: ScheduledMechanism,
    R: Rng + ?Sized,
{
    let injector = FaultInjector::new(plan.clone())?;
    let completions = CompletionSampler::new(instance.completion(), plan.seed);
    let cover = instance.sparse_coverage();
    let num_tasks = instance.num_tasks();

    // Phase 0: the primary round, consuming `rng` exactly as `run_round`.
    let outcome = mechanism.run(instance, rng)?;
    let assignment: Vec<(WorkerId, Bundle)> = outcome
        .winners()
        .iter()
        .map(|&w| (w, instance.bids().bid(w).bundle().clone()))
        .collect();
    let truth: Vec<Label> = (0..num_tasks).map(|_| Label::random(rng)).collect();
    let ideal = generate_labels(instance.skills(), &truth, &assignment, rng);

    // Uncertain tasks fail like dropouts: sampled non-completions are
    // folded into the fates before labels are filtered, so coverage
    // accounting, payment gating, and the degradation report all see them
    // exactly as they see no-shows. Deterministic instances skip this
    // (and draw nothing), keeping the pre-uncertainty byte-identity.
    let fates = completions.apply(
        0,
        &assignment,
        injector.fates_for(0, &assignment),
        config.deadline,
    );
    let mut delivered = filter_labels(&ideal, &fates, config.deadline);

    let mut paid: Vec<(WorkerId, Price)> = fates
        .iter()
        .filter(|(_, f)| f.delivered_in_full(config.deadline))
        .map(|(w, _)| (*w, outcome.price()))
        .collect();
    let mut recruited: Vec<WorkerId> = outcome.winners().to_vec();

    let residual_of = |delivered: &LabelSet| -> Vec<f64> {
        (0..num_tasks)
            .map(|j| {
                let t = TaskId(j as u32);
                cover.requirement(t) - achieved_coverage(delivered, instance.skills(), t)
            })
            .collect()
    };
    let mut residual = residual_of(&delivered);

    // Phases 1..: bounded backfill re-auctions over the leftover pool.
    let mut backfill = Vec::new();
    let mut backfill_attempts = 0usize;
    while residual.iter().any(|&r| r > RESIDUAL_EPS)
        && backfill_attempts < config.max_backfill_rounds
    {
        backfill_attempts += 1;
        let eligible: Vec<WorkerId> = (0..instance.num_workers())
            .map(|i| WorkerId(i as u32))
            .filter(|w| !recruited.contains(w))
            .collect();
        let Ok(bf_outcome) = mechanism.reauction(instance, &residual, &eligible, rng) else {
            // The leftover pool cannot close the gap (or no feasible
            // price exists for it): degrade gracefully.
            break;
        };
        let bf_assignment: Vec<(WorkerId, Bundle)> = bf_outcome
            .winners()
            .iter()
            .map(|&w| (w, instance.bids().bid(w).bundle().clone()))
            .collect();
        let bf_labels = generate_labels(instance.skills(), &truth, &bf_assignment, rng);
        let bf_fates = completions.apply(
            backfill_attempts as u32,
            &bf_assignment,
            injector.fates_for(backfill_attempts as u32, &bf_assignment),
            config.deadline,
        );
        for obs in filter_labels(&bf_labels, &bf_fates, config.deadline).iter() {
            delivered.push(obs);
        }
        paid.extend(
            bf_fates
                .iter()
                .filter(|(_, f)| f.delivered_in_full(config.deadline))
                .map(|(w, _)| (*w, bf_outcome.price())),
        );
        recruited.extend(bf_outcome.winners().iter().copied());
        backfill.push(BackfillRound {
            outcome: bf_outcome,
            fates: bf_fates,
        });
        residual = residual_of(&delivered);
    }

    // Aggregate whatever arrived and account the achieved guarantees.
    let estimates = weighted_aggregate(&delivered, instance.skills(), num_tasks);
    let correct: Vec<bool> = estimates
        .iter()
        .zip(&truth)
        .map(|(e, t)| *e == Some(*t))
        .collect();
    let coverage: Vec<f64> = (0..num_tasks)
        .map(|j| achieved_coverage(&delivered, instance.skills(), TaskId(j as u32)))
        .collect();
    let achieved_deltas: Vec<f64> = coverage.iter().map(|&c| achieved_delta(c)).collect();
    let shortfalls: Vec<CoverageShortfall> = (0..num_tasks)
        .filter_map(|j| {
            let t = TaskId(j as u32);
            let required = cover.requirement(t);
            (coverage[j] < required - RESIDUAL_EPS).then(|| CoverageShortfall {
                task: t,
                required,
                achieved: coverage[j],
            })
        })
        .collect();

    let total_paid: Price = paid.iter().map(|&(_, p)| p).sum();
    let mut utilities = vec![Price::ZERO; instance.num_workers()];
    for &(w, amount) in &paid {
        utilities[w.index()] = amount - types[w.index()].cost();
    }

    Ok(DegradedRoundReport {
        round: RoundReport {
            outcome,
            truth,
            labels: delivered,
            estimates,
            correct,
            total_paid,
            utilities,
        },
        fates,
        backfill,
        backfill_attempts,
        paid,
        achieved_coverage: coverage,
        achieved_deltas,
        shortfalls,
    })
}

#[cfg(test)]
mod resilient_tests {
    use super::*;
    use crate::Setting;
    use mcs_num::rng;

    fn small(seed: u64) -> (Instance, Vec<TrueType>) {
        let g = Setting::one(80).scaled_down(4).generate(seed);
        (g.instance, g.types)
    }

    #[test]
    fn empty_plan_reproduces_run_round_exactly() {
        let (inst, types) = small(21);
        let auction = DpHsrcAuction::new(0.1).unwrap();
        let mut r1 = rng::seeded(11);
        let mut r2 = rng::seeded(11);
        let plain = run_round(&inst, &types, &auction, &mut r1).unwrap();
        let resilient = run_round_resilient(
            &inst,
            &types,
            &auction,
            &FaultPlan::none(),
            &ResilienceConfig::default(),
            &mut r2,
        )
        .unwrap();
        assert_eq!(resilient.round, plain);
        assert!(resilient.backfill.is_empty());
        assert_eq!(resilient.backfill_attempts, 0);
        assert!(!resilient.degraded());
        // Both consumed the same randomness: subsequent draws agree.
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn acceptance_thirty_percent_no_shows_seed_42() {
        // The ISSUE acceptance scenario: 30% worker no-shows at seed 42
        // must complete without panic, trigger at least one backfill
        // re-auction, and report achieved deltas consistent with the
        // surviving coverage.
        let (inst, types) = small(42);
        let auction = DpHsrcAuction::new(0.1).unwrap();
        let mut r = rng::seeded(42);
        let report = run_round_resilient(
            &inst,
            &types,
            &auction,
            &FaultPlan::no_show(0.3, 42),
            &ResilienceConfig::default(),
            &mut r,
        )
        .unwrap();
        assert!(
            report.backfill_attempts >= 1,
            "30% no-shows left coverage intact: fates {:?}",
            report.fates
        );
        for (j, &delta_hat) in report.achieved_deltas.iter().enumerate() {
            let c = achieved_coverage(&report.round.labels, inst.skills(), TaskId(j as u32));
            assert!((report.achieved_coverage[j] - c).abs() < 1e-12);
            assert!((delta_hat - (-c / 2.0).exp()).abs() < 1e-12);
        }
        // Every shortfall names a genuinely under-covered task.
        let cover = inst.sparse_coverage();
        for s in &report.shortfalls {
            assert!(s.achieved < cover.requirement(s.task));
        }
    }

    #[test]
    fn no_shows_are_never_paid() {
        let (inst, types) = small(42);
        let auction = DpHsrcAuction::new(0.1).unwrap();
        let mut r = rng::seeded(7);
        let report = run_round_resilient(
            &inst,
            &types,
            &auction,
            &FaultPlan::no_show(0.5, 9),
            &ResilienceConfig::default(),
            &mut r,
        )
        .unwrap();
        for (w, fate) in &report.fates {
            let paid = report.paid.iter().any(|(pw, _)| pw == w);
            assert_eq!(
                paid,
                fate.delivered_in_full(report_deadline()),
                "worker {w}"
            );
        }
        let sum: Price = report.paid.iter().map(|&(_, p)| p).sum();
        assert_eq!(report.round.total_paid, sum);
    }

    fn report_deadline() -> u32 {
        ResilienceConfig::default().deadline
    }

    #[test]
    fn zero_backfill_budget_degrades_immediately() {
        let (inst, types) = small(42);
        let auction = DpHsrcAuction::new(0.1).unwrap();
        let mut r = rng::seeded(5);
        let config = ResilienceConfig {
            deadline: 60,
            max_backfill_rounds: 0,
        };
        let report = run_round_resilient(
            &inst,
            &types,
            &auction,
            &FaultPlan::no_show(0.9, 3),
            &config,
            &mut r,
        )
        .unwrap();
        assert_eq!(report.backfill_attempts, 0);
        assert!(report.backfill.is_empty());
        assert!(report.degraded());
        // Achieved deltas degrade towards 1 as coverage vanishes.
        for (j, s) in report.shortfalls.iter().enumerate() {
            let _ = j;
            assert!(report.achieved_deltas[s.task.index()] > 0.0);
        }
    }

    #[test]
    fn fate_counts_span_primary_and_backfill_phases() {
        // Pin the accounting: "never showed" and "showed but failed" are
        // tallied separately, and backfill phases are absorbed into the
        // same tally as the primary round.
        let round = RoundReport {
            outcome: AuctionOutcome::new(Price::ZERO, vec![]),
            truth: vec![],
            labels: LabelSet::new(0),
            estimates: vec![],
            correct: vec![],
            total_paid: Price::ZERO,
            utilities: vec![],
        };
        let report = DegradedRoundReport {
            round,
            fates: vec![
                (WorkerId(0), WorkerFate::Delivered),
                (WorkerId(1), WorkerFate::NoShow),
                (WorkerId(2), WorkerFate::ShowedButFailed),
                (
                    WorkerId(3),
                    WorkerFate::Partial {
                        dropped: vec![TaskId(0)],
                    },
                ),
            ],
            backfill: vec![BackfillRound {
                outcome: AuctionOutcome::new(Price::ZERO, vec![]),
                fates: vec![
                    (WorkerId(4), WorkerFate::Delivered),
                    (WorkerId(5), WorkerFate::ShowedButFailed),
                    (WorkerId(6), WorkerFate::NoShow),
                ],
            }],
            backfill_attempts: 1,
            paid: vec![],
            achieved_coverage: vec![],
            achieved_deltas: vec![],
            shortfalls: vec![],
        };
        let counts = report.fate_counts();
        assert_eq!(counts.delivered, 2);
        assert_eq!(counts.no_show, 2);
        assert_eq!(counts.showed_but_failed, 2);
        assert_eq!(counts.partial, 1);
        assert_eq!(counts.straggler, 0);
        assert_eq!(counts.corrupted, 0);
        assert_eq!(report.no_shows(), 2);
        assert_eq!(report.showed_but_failed(), 2);
    }

    #[test]
    fn accuracy_counts_missing_estimates_as_wrong() {
        let report = RoundReport {
            outcome: AuctionOutcome::new(Price::ZERO, vec![]),
            truth: vec![Label::Pos, Label::Neg],
            labels: LabelSet::new(2),
            estimates: vec![Some(Label::Pos), None],
            correct: vec![true, false],
            total_paid: Price::ZERO,
            utilities: vec![],
        };
        assert_eq!(report.accuracy(), 0.5);
        let empty = RoundReport {
            outcome: AuctionOutcome::new(Price::ZERO, vec![]),
            truth: vec![],
            labels: LabelSet::new(0),
            estimates: vec![],
            correct: vec![],
            total_paid: Price::ZERO,
            utilities: vec![],
        };
        assert_eq!(empty.accuracy(), 1.0);
    }
}
