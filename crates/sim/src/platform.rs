//! End-to-end MCS platform workflow over the synthetic label model.
//!
//! This module wires the full §III-A loop together: the platform announces
//! tasks, runs the DP-hSRC auction over the workers' bids, the winners
//! execute their bundles under the `θ`-noise model, the platform aggregates
//! with the Lemma 1 weighted rule, and every winner is paid the clearing
//! price. The paper evaluates the auction in isolation; this harness
//! exercises the whole pipeline the auction exists to serve, verifying
//! that the error-bound constraints actually deliver `Pr[l̂ ≠ l] ≤ δ`.

use rand::Rng;

use mcs_agg::{generate_labels, weighted_aggregate, DawidSkene, Label, LabelSet, Observation};
use mcs_types::{Bundle, Instance, McsError, Price, SkillMatrix, TrueType, WorkerId};

use mcs_auction::{AuctionOutcome, DpHsrcAuction, Mechanism};

/// The report of one full platform round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// The auction outcome (clearing price + winners).
    pub outcome: AuctionOutcome,
    /// Ground-truth labels drawn for this round.
    pub truth: Vec<Label>,
    /// Labels collected from the winners.
    pub labels: LabelSet,
    /// The platform's aggregated estimate per task (`None` = no labels).
    pub estimates: Vec<Option<Label>>,
    /// Per-task correctness of the aggregate.
    pub correct: Vec<bool>,
    /// Total amount paid out.
    pub total_paid: Price,
    /// Each worker's realized utility this round.
    pub utilities: Vec<Price>,
}

impl RoundReport {
    /// Fraction of tasks whose aggregate matched the truth.
    pub fn accuracy(&self) -> f64 {
        if self.correct.is_empty() {
            return 1.0;
        }
        self.correct.iter().filter(|&&c| c).count() as f64 / self.correct.len() as f64
    }
}

/// Runs one complete platform round: auction → labelling → aggregation →
/// payment.
///
/// Generic over the auction: any [`Mechanism`] producing an
/// [`AuctionOutcome`] from an [`Instance`] (DP-hSRC, the baseline, …)
/// drives the same platform loop.
///
/// # Errors
///
/// Propagates auction errors ([`McsError::Infeasible`],
/// [`McsError::NoFeasiblePrice`]).
pub fn run_round<M, R>(
    instance: &Instance,
    types: &[TrueType],
    mechanism: &M,
    rng: &mut R,
) -> Result<RoundReport, McsError>
where
    M: Mechanism<Input = Instance, Output = AuctionOutcome>,
    R: Rng + ?Sized,
{
    let outcome = mechanism.run(instance, rng)?;

    // Winners execute the bundles they bid.
    let assignment: Vec<(WorkerId, Bundle)> = outcome
        .winners()
        .iter()
        .map(|&w| (w, instance.bids().bid(w).bundle().clone()))
        .collect();
    let truth: Vec<Label> = (0..instance.num_tasks())
        .map(|_| Label::random(rng))
        .collect();
    let labels = generate_labels(instance.skills(), &truth, &assignment, rng);
    let estimates = weighted_aggregate(&labels, instance.skills(), instance.num_tasks());
    let correct: Vec<bool> = estimates
        .iter()
        .zip(&truth)
        .map(|(e, t)| *e == Some(*t))
        .collect();

    let total_paid = outcome.total_payment();
    let utilities: Vec<Price> = (0..instance.num_workers())
        .map(|i| outcome.utility_of(WorkerId(i as u32), &types[i]))
        .collect();

    Ok(RoundReport {
        outcome,
        truth,
        labels,
        estimates,
        correct,
        total_paid,
        utilities,
    })
}

/// Runs many rounds and returns the per-task empirical aggregation error,
/// alongside the per-round reports' payment statistics.
///
/// # Errors
///
/// Propagates auction errors from any round.
pub fn empirical_task_error<M, R>(
    instance: &Instance,
    types: &[TrueType],
    mechanism: &M,
    rounds: usize,
    rng: &mut R,
) -> Result<Vec<f64>, McsError>
where
    M: Mechanism<Input = Instance, Output = AuctionOutcome>,
    R: Rng + ?Sized,
{
    let mut errors = vec![0.0f64; instance.num_tasks()];
    for _ in 0..rounds {
        let report = run_round(instance, types, mechanism, rng)?;
        for (j, &ok) in report.correct.iter().enumerate() {
            if !ok {
                errors[j] += 1.0;
            }
        }
    }
    Ok(errors.into_iter().map(|e| e / rounds as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Setting;
    use mcs_num::rng;
    use mcs_types::TaskId;

    fn small() -> (Instance, Vec<TrueType>) {
        let g = Setting::one(80).scaled_down(4).generate(21);
        (g.instance, g.types)
    }

    #[test]
    fn round_pays_only_winners() {
        let (inst, types) = small();
        let mut r = rng::seeded(2);
        let report = run_round(&inst, &types, &DpHsrcAuction::new(0.1).unwrap(), &mut r).unwrap();
        assert_eq!(
            report.total_paid,
            report.outcome.price() * report.outcome.winners().len()
        );
        for i in 0..inst.num_workers() {
            let w = WorkerId(i as u32);
            if !report.outcome.is_winner(w) {
                assert_eq!(report.utilities[i], Price::ZERO);
            } else {
                assert!(report.utilities[i] >= Price::ZERO);
            }
        }
    }

    #[test]
    fn every_task_receives_labels() {
        // Feasibility of the winner set implies positive coverage of every
        // task, hence at least one label each.
        let (inst, types) = small();
        let mut r = rng::seeded(3);
        let report = run_round(&inst, &types, &DpHsrcAuction::new(0.1).unwrap(), &mut r).unwrap();
        for j in 0..inst.num_tasks() {
            assert!(
                !report.labels.for_task(TaskId(j as u32)).is_empty(),
                "task {j} got no labels"
            );
            assert!(report.estimates[j].is_some());
        }
    }

    #[test]
    fn empirical_error_within_delta() {
        let (inst, types) = small();
        let mut r = rng::seeded(4);
        let errors = empirical_task_error(
            &inst,
            &types,
            &DpHsrcAuction::new(0.1).unwrap(),
            300,
            &mut r,
        )
        .unwrap();
        for (j, (&err, &delta)) in errors.iter().zip(inst.deltas()).enumerate() {
            // Allow Monte-Carlo slack on top of δ.
            assert!(
                err <= delta + 0.08,
                "task {j}: error {err} exceeds delta {delta}"
            );
        }
    }

    #[test]
    fn accuracy_is_high_with_tight_deltas() {
        let (inst, types) = small();
        let mut r = rng::seeded(5);
        let report = run_round(&inst, &types, &DpHsrcAuction::new(0.1).unwrap(), &mut r).unwrap();
        assert!(report.accuracy() > 0.5);
    }
}

/// A multi-round sensing campaign: the platform repeatedly auctions the
/// task set, collects labels, and — optionally — replaces its skill record
/// `θ` with Dawid–Skene estimates from the labels gathered so far.
///
/// This closes the loop the paper leaves open in §III-A ("the issue of
/// exactly which method is used by the platform to calculate θ is
/// application dependent"): it shows the auction still performing when the
/// platform's knowledge of `θ` is *learned* rather than given.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Campaign {
    /// Privacy budget per auction round.
    pub epsilon: f64,
    /// Number of rounds.
    pub rounds: usize,
    /// After each round, refit worker accuracies by EM and run the next
    /// auction on the estimated skill matrix.
    pub reestimate_skills: bool,
}

/// The outcome of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Per-round reports, in order.
    pub rounds: Vec<RoundReport>,
    /// Total spend across all rounds.
    pub total_spend: Price,
    /// Mean per-round aggregation accuracy.
    pub mean_accuracy: f64,
    /// Mean absolute error of the final per-worker accuracy estimates
    /// against the true mean skills (only when re-estimating).
    pub final_skill_error: Option<f64>,
    /// Rounds where the estimated skills looked uncoverable and the
    /// auction fell back to the platform's prior skill record.
    pub fallback_rounds: usize,
}

impl Campaign {
    /// Runs the campaign on an instance with known true types.
    ///
    /// Labels are always *generated* from the true skills; when
    /// [`Campaign::reestimate_skills`] is set, the *auction* (winner
    /// selection and error-bound accounting) runs against the platform's
    /// current estimate instead, exactly like a deployed platform that
    /// only observes labels.
    ///
    /// # Errors
    ///
    /// Propagates auction errors from any round; an estimate-driven round
    /// that becomes infeasible (the estimated skills look too weak to
    /// cover) falls back to the true-skill instance for that round rather
    /// than aborting the campaign.
    pub fn run<R: Rng + ?Sized>(
        &self,
        instance: &Instance,
        types: &[TrueType],
        rng: &mut R,
    ) -> Result<CampaignReport, McsError> {
        let mut rounds = Vec::with_capacity(self.rounds);
        let mut total_spend = Price::ZERO;
        let mut all_labels = LabelSet::new(instance.num_tasks());
        let mut current = instance.clone();
        let mut fallback_rounds = 0usize;

        for _ in 0..self.rounds {
            // Run the round on the platform's current belief; labels are
            // generated inside run_round from `current`'s skills, so for
            // label generation we always use the true-skill instance and
            // only swap skills for the auction itself.
            let auction = DpHsrcAuction::new(self.epsilon)?;
            let outcome = match auction.run(&current, rng) {
                Ok(o) => o,
                // The estimate may undershoot true skills and make the
                // instance look uncoverable; fall back to the true skills.
                Err(_) if self.reestimate_skills => {
                    fallback_rounds += 1;
                    current = instance.clone();
                    auction.run(&current, rng)?
                }
                Err(e) => return Err(e),
            };

            let assignment: Vec<(WorkerId, Bundle)> = outcome
                .winners()
                .iter()
                .map(|&w| (w, instance.bids().bid(w).bundle().clone()))
                .collect();
            let truth: Vec<Label> = (0..instance.num_tasks())
                .map(|_| Label::random(rng))
                .collect();
            // True skills generate the labels, whatever the platform
            // believes.
            let labels = generate_labels(instance.skills(), &truth, &assignment, rng);
            for obs in labels.iter() {
                all_labels.push(Observation { ..obs });
            }
            let estimates = weighted_aggregate(&labels, current.skills(), instance.num_tasks());
            let correct: Vec<bool> = estimates
                .iter()
                .zip(&truth)
                .map(|(e, t)| *e == Some(*t))
                .collect();
            let round_paid = outcome.total_payment();
            total_spend += round_paid;
            let utilities: Vec<Price> = (0..instance.num_workers())
                .map(|i| outcome.utility_of(WorkerId(i as u32), &types[i]))
                .collect();
            rounds.push(RoundReport {
                outcome,
                truth,
                labels,
                estimates,
                correct,
                total_paid: round_paid,
                utilities,
            });

            if self.reestimate_skills {
                let fit = DawidSkene::default().fit(&all_labels, instance.num_workers());
                let estimated: Vec<Vec<f64>> = fit
                    .accuracies
                    .iter()
                    .map(|&a| vec![a; instance.num_tasks()])
                    .collect();
                let skills =
                    SkillMatrix::from_rows(estimated).expect("EM accuracies are clamped to (0, 1)");
                current = Instance::builder(instance.num_tasks())
                    .bid_profile(instance.bids().clone())
                    .skills(skills)
                    .error_bounds(instance.deltas().to_vec())
                    .price_grid(instance.price_grid().clone())
                    .cost_range(instance.cmin(), instance.cmax())
                    .build()
                    .expect("estimate swap preserves validity");
            }
        }

        let mean_accuracy = if rounds.is_empty() {
            1.0
        } else {
            rounds.iter().map(RoundReport::accuracy).sum::<f64>() / rounds.len() as f64
        };
        let final_skill_error = self.reestimate_skills.then(|| {
            let fit = DawidSkene::default().fit(&all_labels, instance.num_workers());
            let mut err = 0.0;
            for i in 0..instance.num_workers() {
                let w = WorkerId(i as u32);
                let true_mean: f64 = instance.skills().worker_row(w).iter().sum::<f64>()
                    / instance.num_tasks() as f64;
                // EM identifies accuracies up to global label flip; fold
                // the symmetric solution.
                let est = fit.accuracies[i];
                err += (est - true_mean).abs().min((1.0 - est - true_mean).abs());
            }
            err / instance.num_workers() as f64
        });

        Ok(CampaignReport {
            rounds,
            total_spend,
            mean_accuracy,
            final_skill_error,
            fallback_rounds,
        })
    }
}

#[cfg(test)]
mod campaign_tests {
    use super::*;
    use crate::Setting;
    use mcs_num::rng;

    fn small() -> (Instance, Vec<TrueType>) {
        let g = Setting::one(80).scaled_down(4).generate(55);
        (g.instance, g.types)
    }

    #[test]
    fn campaign_accumulates_spend_and_rounds() {
        let (inst, types) = small();
        let mut r = rng::seeded(7);
        let campaign = Campaign {
            epsilon: 0.1,
            rounds: 4,
            reestimate_skills: false,
        };
        let report = campaign.run(&inst, &types, &mut r).unwrap();
        assert_eq!(report.rounds.len(), 4);
        let sum: Price = report
            .rounds
            .iter()
            .map(|rr| rr.outcome.total_payment())
            .sum();
        assert_eq!(report.total_spend, sum);
        assert!(report.final_skill_error.is_none());
        assert!(report.mean_accuracy > 0.5);
    }

    #[test]
    fn reestimation_keeps_the_campaign_running() {
        let (inst, types) = small();
        let mut r = rng::seeded(8);
        let campaign = Campaign {
            epsilon: 0.1,
            rounds: 5,
            reestimate_skills: true,
        };
        let report = campaign.run(&inst, &types, &mut r).unwrap();
        assert_eq!(report.rounds.len(), 5);
        // Skill estimates should land in the right ballpark after five
        // rounds of labels.
        let err = report.final_skill_error.unwrap();
        assert!(err < 0.25, "mean |theta_hat - theta| = {err}");
        assert!(report.mean_accuracy > 0.5);
    }

    #[test]
    fn zero_round_campaign_is_empty() {
        let (inst, types) = small();
        let mut r = rng::seeded(9);
        let report = Campaign {
            epsilon: 0.1,
            rounds: 0,
            reestimate_skills: false,
        }
        .run(&inst, &types, &mut r)
        .unwrap();
        assert!(report.rounds.is_empty());
        assert_eq!(report.total_spend, Price::ZERO);
        assert_eq!(report.mean_accuracy, 1.0);
    }
}
