//! Neighbouring bid-profile generators for the privacy experiments.
//!
//! Definition 7 quantifies over bid profiles differing in one worker's bid.
//! The paper does not pin down *how* the neighbour differs, so the
//! experiments use two generators:
//!
//! * [`resample_neighbour`] — the changed worker redraws her bundle and
//!   cost from the same Table I distributions (an "average-case"
//!   neighbour);
//! * [`price_push_neighbour`] — the changed worker keeps her bundle but
//!   moves her price to an extreme of the cost range (closer to the
//!   worst case for payment shifts).

use rand::seq::SliceRandom;
use rand::Rng;

use mcs_types::{Bid, Bundle, Instance, McsError, Price, TaskId, WorkerId};

use crate::Setting;

/// Which extreme [`price_push_neighbour`] pushes the bid price to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PricePush {
    /// Move the bid to `c_min`.
    ToMin,
    /// Move the bid to `c_max`.
    ToMax,
}

/// Replaces `worker`'s bid with a fresh draw from the setting's bundle and
/// cost distributions.
///
/// # Errors
///
/// Returns [`McsError::WorkerOutOfRange`] when `worker` does not exist.
pub fn resample_neighbour<R: Rng + ?Sized>(
    instance: &Instance,
    setting: &Setting,
    worker: WorkerId,
    r: &mut R,
) -> Result<Instance, McsError> {
    let max_bundle = setting.bundle_size.1.min(instance.num_tasks());
    let min_bundle = setting.bundle_size.0.min(max_bundle);
    let size = r.gen_range(min_bundle..=max_bundle);
    let all_tasks: Vec<TaskId> = (0..instance.num_tasks() as u32).map(TaskId).collect();
    let tasks: Vec<TaskId> = all_tasks.choose_multiple(r, size).copied().collect();
    let lo = Price::from_f64(setting.cmin).tenths();
    let hi = Price::from_f64(setting.cmax).tenths();
    let price = Price::from_tenths(r.gen_range(lo..=hi));
    instance.with_bid(worker, Bid::new(Bundle::new(tasks), price))
}

/// Moves `worker`'s bid price to an extreme of the cost range, keeping her
/// bundle.
///
/// # Errors
///
/// Returns [`McsError::WorkerOutOfRange`] when `worker` does not exist.
pub fn price_push_neighbour(
    instance: &Instance,
    worker: WorkerId,
    push: PricePush,
) -> Result<Instance, McsError> {
    let bid = instance
        .bids()
        .get(worker)
        .ok_or(McsError::WorkerOutOfRange {
            worker,
            num_workers: instance.num_workers(),
        })?;
    let price = match push {
        PricePush::ToMin => instance.cmin(),
        PricePush::ToMax => instance.cmax(),
    };
    instance.with_bid(worker, bid.with_price(price))
}

/// Picks a uniformly random worker id.
pub fn random_worker<R: Rng + ?Sized>(instance: &Instance, r: &mut R) -> WorkerId {
    WorkerId(r.gen_range(0..instance.num_workers() as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_num::rng;

    fn generated() -> (Instance, Setting) {
        let setting = Setting::one(80).scaled_down(4);
        (setting.generate(2).instance, setting)
    }

    #[test]
    fn resample_changes_exactly_one_bid() {
        let (inst, setting) = generated();
        let mut r = rng::seeded(3);
        let nb = resample_neighbour(&inst, &setting, WorkerId(5), &mut r).unwrap();
        let d = inst.bids().hamming_distance(nb.bids()).unwrap();
        assert!(d <= 1, "changed {d} bids");
        assert_eq!(inst.skills(), nb.skills());
    }

    #[test]
    fn price_push_hits_extremes() {
        let (inst, _) = generated();
        let lo = price_push_neighbour(&inst, WorkerId(0), PricePush::ToMin).unwrap();
        assert_eq!(lo.bids().bid(WorkerId(0)).price(), inst.cmin());
        let hi = price_push_neighbour(&inst, WorkerId(0), PricePush::ToMax).unwrap();
        assert_eq!(hi.bids().bid(WorkerId(0)).price(), inst.cmax());
        // Bundle untouched.
        assert_eq!(
            hi.bids().bid(WorkerId(0)).bundle(),
            inst.bids().bid(WorkerId(0)).bundle()
        );
    }

    #[test]
    fn out_of_range_worker_rejected() {
        let (inst, setting) = generated();
        let mut r = rng::seeded(1);
        let w = WorkerId(inst.num_workers() as u32);
        assert!(resample_neighbour(&inst, &setting, w, &mut r).is_err());
        assert!(price_push_neighbour(&inst, w, PricePush::ToMin).is_err());
    }

    #[test]
    fn random_worker_in_range() {
        let (inst, _) = generated();
        let mut r = rng::seeded(8);
        for _ in 0..50 {
            let w = random_worker(&inst, &mut r);
            assert!(w.index() < inst.num_workers());
        }
    }
}
