//! Simulation framework reproducing the paper's evaluation (§VII).
//!
//! * [`Setting`] — the four parameter regimes of Table I, with exact
//!   generators for workers, bundles, costs, skills and error bounds.
//! * [`experiments`] — one runner per figure/table:
//!   [`experiments::payment_sweep`] (Figures 1–4),
//!   [`experiments::timing_sweep`] (Table II),
//!   [`experiments::tradeoff_sweep`] (Figure 5),
//!   [`experiments::deviation_experiment`] (Theorem 3 check), and
//!   [`experiments::approx_ratio_experiment`] (Theorem 6 check).
//! * [`neighbour`] — neighbouring-bid-profile generators for the privacy
//!   experiments.
//! * [`online`] — streaming online auctions: seeded arrival/departure
//!   timelines, the OMG-style stage-sampling threshold mechanism and the
//!   greedy pay-as-bid baseline, with competitive-ratio accounting
//!   against the offline `ScheduleEngine` optimum.
//! * [`adversary`] — the optimal honest-but-curious attacker
//!   (likelihood-ratio inference over repeated rounds) and its DP
//!   composition bound.
//! * [`platform`] — an end-to-end MCS platform loop (announce → auction →
//!   label → aggregate → pay) over the synthetic label model, including
//!   the fault-tolerant round engine
//!   ([`platform::run_round_resilient`]).
//! * [`faults`] — the worker fault model: reproducible no-show, partial
//!   dropout, straggler, and corrupted-report injection.
//! * [`output`] — plain-text table and CSV rendering for the experiment
//!   binaries.
//! * [`io`] — JSON workload snapshots for pinning experiment inputs.
//!
//! Everything is deterministic given a `u64` seed: instance generation,
//! mechanism sampling and adversary choices each draw from independent
//! derived streams (see [`mcs_num::rng`]).
//!
//! # Examples
//!
//! ```
//! use mcs_sim::Setting;
//!
//! // A miniature Setting-I-style workload (paper: N ∈ [80, 140], K = 30).
//! let setting = Setting::one(80).scaled_down(8);
//! let gen = setting.generate(7);
//! assert_eq!(gen.instance.num_workers(), 10);
//! assert!(gen.instance.num_tasks() >= 1);
//! assert_eq!(gen.types.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Fault-injected rounds exercise arbitrary partial-coverage states, so the
// simulation path must degrade gracefully, never panic on a stray unwrap.
// Tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod adversary;
pub mod campaign;
pub mod experiments;
pub mod faults;
pub mod io;
pub mod neighbour;
pub mod online;
pub mod output;
pub mod platform;
mod settings;

pub use settings::{GeneratedInstance, Setting};
