//! Streaming-session integration tests: a long-lived online round held
//! open across requests over loopback TCP, killed mid-stream, and
//! resumed — not aborted — by recovery on the same WAL directory.

use std::path::PathBuf;

use ed25519::{hex_encode, SigningKey};
use mcs_service::{
    BidEnvelope, DurabilityConfig, Request, Response, RosterEntry, RoundSpec, Service,
    ServiceConfig, StreamSpec, TcpClient, TcpServer,
};
use mcs_types::{Bid, Bundle, Price, TaskId, WorkerId};

fn key_for(worker: u32) -> SigningKey {
    let mut seed = [0u8; 32];
    seed[..4].copy_from_slice(&worker.to_le_bytes());
    seed[31] = 0x3D;
    SigningKey::from_seed(seed)
}

fn stream_spec(round_id: u64, workers: u32, sample_target: usize) -> StreamSpec {
    StreamSpec {
        round: RoundSpec {
            round_id,
            num_tasks: 3,
            error_bounds: vec![0.8, 0.8, 0.8],
            price_min: Price::from_f64(1.0),
            price_max: Price::from_f64(30.0),
            price_step: Price::from_f64(1.0),
            cost_min: Price::from_f64(1.0),
            cost_max: Price::from_f64(30.0),
            epsilon: 0.5,
            roster: (0..workers)
                .map(|w| RosterEntry {
                    worker: WorkerId(w),
                    public_key: hex_encode(&key_for(w).verifying_key().to_bytes()),
                    skills: vec![0.9, 0.9, 0.9],
                })
                .collect(),
        },
        sample_target,
        seed: 17,
    }
}

fn envelope(round_id: u64, worker: u32, nonce: u64) -> BidEnvelope {
    let bid = Bid::new(
        Bundle::new(vec![TaskId(worker % 3), TaskId((worker + 1) % 3)]),
        // Stay inside the spec's cost range for any roster size.
        Price::from_f64(2.0 + f64::from(worker % 25)),
    );
    BidEnvelope::sign(
        round_id,
        WorkerId(worker),
        bid,
        nonce,
        u64::MAX,
        &key_for(worker),
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mcs-service-stream-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &std::path::Path) -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        durability: Some(DurabilityConfig::new(dir.to_path_buf())),
        ..ServiceConfig::default()
    }
}

/// The headline streaming property end-to-end: a stream opened over TCP
/// keeps its per-session state alive across a service kill. Decisions
/// taken before the kill stay binding after recovery — same posted
/// price, same accepted set — and the stream keeps admitting arrivals
/// where it left off instead of aborting like an in-flight round would.
#[test]
fn streams_resume_across_a_service_restart() {
    let dir = temp_dir("resume");
    let service = Service::start(durable_config(&dir));
    let tcp = TcpServer::bind(service.client(), "127.0.0.1:0").expect("bind loopback");
    let mut conn = TcpClient::connect(tcp.local_addr()).expect("connect");

    let opened = conn
        .call(&Request::OpenStream {
            spec: stream_spec(1, 8, 3),
        })
        .expect("answered");
    assert!(
        matches!(
            opened,
            Response::StreamOpened {
                round_id: 1,
                sample_target: 3,
                ..
            }
        ),
        "{opened:?}"
    );

    // The sample phase: the first three arrivals are observed, never
    // paid, and each says so in its typed reason.
    for w in 0..3u32 {
        let response = conn
            .call(&Request::Arrive {
                envelope: envelope(1, w, 100 + u64::from(w)),
            })
            .expect("answered");
        let Response::ArrivalDecided {
            accepted,
            payment,
            ref reason,
            posted_price,
            ..
        } = response
        else {
            panic!("expected a decision, got {response:?}");
        };
        assert!(!accepted, "sample arrivals are never admitted");
        assert_eq!(payment, Price::ZERO);
        assert_eq!(reason, "sample_observed");
        assert!(posted_price.is_none(), "no price is posted mid-sample");
    }

    // First post-sample arrival: a price is now posted.
    let response = conn
        .call(&Request::Arrive {
            envelope: envelope(1, 3, 103),
        })
        .expect("answered");
    let Response::ArrivalDecided {
        posted_price: Some(posted),
        accepted: first_accepted,
        payment: first_payment,
        ..
    } = response
    else {
        panic!("expected a posted-price decision, got {response:?}");
    };
    if first_accepted {
        assert_eq!(first_payment, posted, "admits pay the posted price");
    } else {
        assert_eq!(first_payment, Price::ZERO);
    }

    // Kill the service mid-stream. Every decided arrival was acked, so
    // recovery must honour all of them.
    tcp.shutdown();
    service.shutdown();

    let service = Service::start(durable_config(&dir));
    let recovery = service.recovery().expect("durability enabled");
    assert_eq!(recovery.resumed_streams, 1, "the stream resumes");
    assert_eq!(recovery.aborted_in_flight, 0, "streams are not aborted");
    let tcp = TcpServer::bind(service.client(), "127.0.0.1:0").expect("rebind");
    let mut conn = TcpClient::connect(tcp.local_addr()).expect("reconnect");

    // A status probe on the shared id namespace answers the stream view:
    // still streaming, same posted price, nothing forgotten.
    let Ok(Response::StreamStatus(status)) = conn.call(&Request::RoundStatus { round_id: 1 })
    else {
        panic!("stream status probe failed");
    };
    assert_eq!(status.phase, "streaming");
    assert_eq!(status.arrivals, 4);
    assert_eq!(status.sample_target, 3);
    assert_eq!(status.posted_price, Some(posted));

    // A pre-kill nonce replayed after recovery is still a typed refusal:
    // the nonce set survived the restart.
    let response = conn
        .call(&Request::Arrive {
            envelope: envelope(1, 3, 103),
        })
        .expect("answered");
    assert!(
        matches!(response, Response::Rejected { ref code, .. } if code == "replayed_nonce"),
        "{response:?}"
    );

    // The stream keeps going: feed the rest of the roster.
    let mut accepted = Vec::new();
    if first_accepted {
        accepted.push(WorkerId(3));
    }
    for w in 4..8u32 {
        let response = conn
            .call(&Request::Arrive {
                envelope: envelope(1, w, 100 + u64::from(w)),
            })
            .expect("answered");
        let Response::ArrivalDecided {
            accepted: admit,
            payment,
            posted_price,
            ..
        } = response
        else {
            panic!("expected a decision, got {response:?}");
        };
        assert_eq!(
            posted_price,
            Some(posted),
            "the posted price never moves once learned"
        );
        if admit {
            assert_eq!(payment, posted, "bid-independent posted-price payment");
            accepted.push(WorkerId(w));
        } else {
            assert_eq!(payment, Price::ZERO);
        }
    }

    // Close: the receipt's arithmetic follows from the decisions above.
    let Ok(Response::StreamClosed(receipt)) = conn.call(&Request::CloseStream { round_id: 1 })
    else {
        panic!("close failed");
    };
    assert_eq!(receipt.round_id, 1);
    assert_eq!(receipt.arrivals, 8);
    assert_eq!(receipt.accepted, accepted);
    assert_eq!(receipt.posted_price, Some(posted));
    assert_eq!(
        receipt.total_paid,
        Price::from_tenths(posted.tenths() * accepted.len() as i64)
    );
    assert!(!receipt.already_closed);

    // Closing again is an idempotent replay.
    let Ok(Response::StreamClosed(replay)) = conn.call(&Request::CloseStream { round_id: 1 })
    else {
        panic!("re-close failed");
    };
    assert!(replay.already_closed);
    assert_eq!(replay.total_paid, receipt.total_paid);
    assert_eq!(replay.accepted, receipt.accepted);

    // Arrivals into the closed stream are typed refusals.
    let response = conn
        .call(&Request::Arrive {
            envelope: envelope(1, 0, 999),
        })
        .expect("answered");
    assert!(
        matches!(response, Response::Rejected { ref code, .. } if code == "round_closed"),
        "{response:?}"
    );

    tcp.shutdown();
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A seeded 200-arrival stream driven entirely through the service
/// endpoints, with a kill-and-recover in the middle — the CI smoke
/// workload. Also the determinism check at service scale: replaying the
/// same prefix into a fresh directory reproduces every receipt field.
#[test]
fn two_hundred_arrival_stream_with_mid_stream_recovery() {
    const WORKERS: u32 = 200;
    const SAMPLE: usize = 50;
    const KILL_AFTER: u32 = 90;

    let run = |tag: &str, kill: bool| {
        let dir = temp_dir(tag);
        let mut service = Service::start(durable_config(&dir));
        let mut client = service.client();

        let response = client.call(Request::OpenStream {
            spec: stream_spec(2, WORKERS, SAMPLE),
        });
        assert!(matches!(response, Response::StreamOpened { .. }));

        for w in 0..WORKERS {
            if kill && w == KILL_AFTER {
                service.shutdown();
                service = Service::start(durable_config(&dir));
                assert_eq!(
                    service.recovery().expect("durable").resumed_streams,
                    1,
                    "the stream must survive the mid-stream kill"
                );
                client = service.client();
            }
            let response = client.call(Request::Arrive {
                envelope: envelope(2, w, 1_000 + u64::from(w)),
            });
            assert!(
                matches!(response, Response::ArrivalDecided { .. }),
                "arrival {w}: {response:?}"
            );
        }

        let Response::StreamClosed(receipt) = client.call(Request::CloseStream { round_id: 2 })
        else {
            panic!("close failed");
        };
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        receipt
    };

    let killed = run("smoke-kill", true);
    let straight = run("smoke-straight", false);

    assert_eq!(killed.arrivals, WORKERS as usize);
    // The kill is invisible in the outcome: decisions are a pure fold
    // over the arrival prefix, so both runs settle identically.
    assert_eq!(killed.accepted, straight.accepted);
    assert_eq!(killed.posted_price, straight.posted_price);
    assert_eq!(killed.total_paid, straight.total_paid);
    assert_eq!(killed.covered, straight.covered);
    assert!(
        !killed.accepted.is_empty(),
        "a 200-worker stream must admit someone"
    );
}

/// Stream endpoints without a durability directory are typed errors,
/// mirroring the round endpoints.
#[test]
fn stream_endpoints_without_durability_are_typed_errors() {
    let service = Service::start(ServiceConfig::default());
    let client = service.client();
    let response = client.call(Request::OpenStream {
        spec: stream_spec(1, 4, 2),
    });
    assert!(matches!(response, Response::Error { .. }), "{response:?}");
    let response = client.call(Request::Arrive {
        envelope: envelope(1, 0, 1),
    });
    assert!(matches!(response, Response::Error { .. }), "{response:?}");
    let response = client.call(Request::CloseStream { round_id: 1 });
    assert!(matches!(response, Response::Error { .. }), "{response:?}");
    service.shutdown();
}
