//! Crash-point recovery suite: a seeded 50-round run is killed at every
//! WAL write boundary (plus seeded mid-frame offsets), and each prefix
//! must recover with zero lost payments, zero double-payments, and
//! byte-identical replay idempotence.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ed25519::{hex_encode, SigningKey};
use mcs_service::{
    scan_bytes, BidEnvelope, CrashPlan, DurabilityConfig, DurableLedger, FsyncPolicy, RosterEntry,
    RoundSpec, WalEvent, WAL_FILE,
};
use mcs_types::{Bid, Bundle, Price, TaskId, WorkerId};

const ROUNDS: u64 = 50;

fn key_for(worker: u32) -> SigningKey {
    let mut seed = [0u8; 32];
    seed[..4].copy_from_slice(&worker.to_le_bytes());
    seed[31] = 0x5E;
    SigningKey::from_seed(seed)
}

fn spec(round_id: u64) -> RoundSpec {
    RoundSpec {
        round_id,
        num_tasks: 3,
        // Q_j = 2 ln(1/0.8) ≈ 0.45, coverable by any single bidder with
        // q = (2·0.9 − 1)² = 0.64 per bundled task.
        error_bounds: vec![0.8, 0.8, 0.8],
        price_min: Price::from_f64(1.0),
        price_max: Price::from_f64(30.0),
        price_step: Price::from_f64(1.0),
        cost_min: Price::from_f64(1.0),
        cost_max: Price::from_f64(30.0),
        epsilon: 0.5,
        roster: (0..3)
            .map(|w| RosterEntry {
                worker: WorkerId(w),
                public_key: hex_encode(&key_for(w).verifying_key().to_bytes()),
                skills: vec![0.9, 0.9, 0.9],
            })
            .collect(),
    }
}

fn envelope(round_id: u64, worker: u32) -> BidEnvelope {
    let bid = Bid::new(
        Bundle::new(vec![TaskId(worker % 3), TaskId((worker + 1) % 3)]),
        Price::from_f64(2.0 + f64::from(worker) + (round_id % 5) as f64),
    );
    BidEnvelope::sign(
        round_id,
        WorkerId(worker),
        bid,
        round_id * 100 + u64::from(worker),
        u64::MAX,
        &key_for(worker),
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mcs-wal-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the golden 50-round history: every round opens and takes three
/// signed bids; every 7th aborts, the last stays open (in flight), the
/// rest commit. One log file, no rotation, so every byte of history is
/// in `wal.log`.
fn run_golden(dir: &Path) {
    let config = DurabilityConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Always,
        snapshot_every: u64::MAX,
    };
    let mut ledger = DurableLedger::open(&config).expect("create golden log");
    for round_id in 1..=ROUNDS {
        ledger.open_round(spec(round_id)).expect("open round");
        for worker in 0..3 {
            ledger
                .submit_bid(&envelope(round_id, worker), 0)
                .expect("admit signed bid");
        }
        if round_id == ROUNDS {
            break; // left open: the in-flight round the crash orphans
        }
        if round_id % 7 == 0 {
            ledger.abort_round(round_id).expect("abort round");
        } else {
            ledger
                .commit_round(round_id, round_id * 31)
                .expect("commit round");
        }
    }
}

/// Per-round ground truth extracted by decoding the golden log directly:
/// the byte offset at which each round's commit became durable, its
/// committed price, and its winner count.
struct CommitFact {
    durable_at: u64,
    price: Price,
    winners: usize,
}

fn golden_facts(bytes: &[u8]) -> (BTreeMap<u64, CommitFact>, BTreeMap<u64, u64>, Vec<u64>) {
    let scan = scan_bytes(bytes).expect("golden log scans clean");
    assert!(scan.defect.is_none(), "golden log has no defect");
    let mut commits = BTreeMap::new();
    let mut opens = BTreeMap::new();
    for (i, frame) in scan.frames.iter().enumerate() {
        // boundaries[0] is the header end; frame i ends at boundaries[i+1].
        let end = scan.boundaries[i + 1];
        match WalEvent::decode(&frame.payload).expect("golden frames decode") {
            WalEvent::RoundOpened { spec } => {
                opens.insert(spec.round_id, end);
            }
            WalEvent::AuctionCommitted {
                round_id,
                price,
                winners,
                ..
            } => {
                commits.insert(
                    round_id,
                    CommitFact {
                        durable_at: end,
                        price,
                        winners: winners.len(),
                    },
                );
            }
            _ => {}
        }
    }
    (commits, opens, scan.boundaries)
}

fn recover_at(golden: &[u8], prefix_len: u64, dir: &Path) -> DurableLedger {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create crash dir");
    let take = (prefix_len as usize).min(golden.len());
    std::fs::write(dir.join(WAL_FILE), &golden[..take]).expect("write crash prefix");
    DurableLedger::open(&DurabilityConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Always,
        snapshot_every: u64::MAX,
    })
    .expect("recovery never fails on a prefix")
}

#[test]
fn every_crash_point_recovers_without_losing_or_doubling_payments() {
    let golden_dir = temp_dir("golden");
    run_golden(&golden_dir);
    let golden = std::fs::read(golden_dir.join(WAL_FILE)).expect("read golden log");
    let (commits, opens, boundaries) = golden_facts(&golden);
    assert_eq!(opens.len(), ROUNDS as usize);
    assert_eq!(commits.len(), (1..ROUNDS).filter(|r| r % 7 != 0).count());

    let offsets = CrashPlan::new(0xC0FF_EE00).crash_offsets(&boundaries);
    assert!(
        offsets.len() > boundaries.len(),
        "plan covers every boundary plus torn offsets"
    );

    let crash_dir = temp_dir("crash");
    for &offset in &offsets {
        let ledger = recover_at(&golden, offset, &crash_dir);

        for (&round_id, fact) in &commits {
            let status = ledger.round_status(round_id);
            if fact.durable_at <= offset {
                // The commit fsync completed before the crash: the round
                // is an obligation, and recovery must have settled it in
                // full at the committed price — nothing lost.
                let status = status.unwrap_or_else(|| {
                    panic!(
                        "round {round_id} committed at {} lost at offset {offset}",
                        fact.durable_at
                    )
                });
                assert_eq!(
                    status.phase, "settled",
                    "round {round_id} at offset {offset}"
                );
                assert_eq!(status.winners.len(), fact.winners);
                // Exactly one payment of exactly `price` per winner —
                // a double payment would inflate this total (and the
                // ledger fold would have rejected the frame anyway).
                assert_eq!(
                    status.total_paid,
                    Price::from_tenths(fact.price.tenths() * fact.winners as i64),
                    "round {round_id} paid wrong total at offset {offset}"
                );
            } else if let Some(status) = status {
                // Commit not yet durable: the round must NOT be settled
                // or committed — recovery aborts it, owing nothing.
                assert_eq!(
                    status.phase, "aborted",
                    "round {round_id} at offset {offset}"
                );
                assert_eq!(status.total_paid, Price::ZERO);
            }
        }
        // Any opened round without a durable commit (including the
        // always-in-flight last round) is aborted, never left open.
        for (&round_id, &opened_at) in &opens {
            if opened_at <= offset && commits.get(&round_id).is_none_or(|c| c.durable_at > offset) {
                let status = ledger
                    .round_status(round_id)
                    .expect("opened round survives");
                assert_eq!(
                    status.phase, "aborted",
                    "round {round_id} at offset {offset}"
                );
            }
        }
        drop(ledger);

        // Idempotence: recovering the recovered directory appends
        // nothing — the log is byte-identical after a second open.
        let after_first = std::fs::read(crash_dir.join(WAL_FILE)).expect("read recovered log");
        let second = DurableLedger::open(&DurabilityConfig {
            dir: crash_dir.clone(),
            fsync: FsyncPolicy::Always,
            snapshot_every: u64::MAX,
        })
        .expect("second recovery");
        assert_eq!(second.recovery().completed_payments, 0, "offset {offset}");
        assert_eq!(second.recovery().aborted_in_flight, 0, "offset {offset}");
        drop(second);
        let after_second = std::fs::read(crash_dir.join(WAL_FILE)).expect("re-read recovered log");
        assert_eq!(
            after_first, after_second,
            "replay not idempotent at offset {offset}"
        );
    }

    let _ = std::fs::remove_dir_all(&golden_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

/// A crash mid-rotation (snapshot written, log not yet reset) must not
/// double-apply: frames the snapshot already covers are skipped.
#[test]
fn recovery_skips_frames_already_covered_by_the_snapshot() {
    let dir = temp_dir("rotation");
    let config = DurabilityConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::Always,
        snapshot_every: u64::MAX,
    };
    let mut ledger = DurableLedger::open(&config).expect("create");
    ledger.open_round(spec(1)).expect("open");
    for w in 0..3 {
        ledger.submit_bid(&envelope(1, w), 0).expect("bid");
    }
    let receipt = ledger.commit_round(1, 77).expect("commit");
    // Snapshot the full state but leave the old log in place, exactly
    // the on-disk picture of a crash between rename and log reset.
    ledger.force_snapshot().expect("snapshot");
    drop(ledger);
    std::fs::remove_file(dir.join(WAL_FILE)).expect("simulate unrotated log");
    // Recreate the pre-rotation log image: snapshot + stale frames is
    // what force_snapshot guards against; here the log is simply gone,
    // the stronger case (snapshot alone carries everything).
    let recovered = DurableLedger::open(&config).expect("recover from snapshot");
    let status = recovered
        .round_status(1)
        .expect("round survives in snapshot");
    assert_eq!(status.phase, "settled");
    assert_eq!(
        status.total_paid,
        Price::from_tenths(receipt.price.tenths() * receipt.winners.len() as i64)
    );
    assert_eq!(recovered.recovery().completed_payments, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
