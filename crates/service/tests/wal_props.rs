//! Property tests over the WAL image: any prefix truncation and any
//! single-byte corruption of a valid log recovers cleanly — no panic,
//! the valid prefix ends at the damaged frame, and damage is reported
//! as a typed [`mcs_service::WalError`] or a typed tail defect.

use ed25519::{hex_encode, SigningKey};
use mcs_service::{
    encode_frame, recover_from_bytes, scan_bytes, BidEnvelope, RosterEntry, RoundSpec, WalEvent,
    WAL_HEADER_LEN,
};
use mcs_types::{Bid, Bundle, Price, TaskId, WorkerId};
use proptest::prelude::*;

fn key_for(worker: u32) -> SigningKey {
    let mut seed = [0u8; 32];
    seed[..4].copy_from_slice(&worker.to_le_bytes());
    seed[31] = 0x9B;
    SigningKey::from_seed(seed)
}

fn spec(round_id: u64) -> RoundSpec {
    RoundSpec {
        round_id,
        num_tasks: 2,
        error_bounds: vec![0.8, 0.8],
        price_min: Price::from_f64(1.0),
        price_max: Price::from_f64(10.0),
        price_step: Price::from_f64(1.0),
        cost_min: Price::from_f64(1.0),
        cost_max: Price::from_f64(10.0),
        epsilon: 0.5,
        roster: (0..2)
            .map(|w| RosterEntry {
                worker: WorkerId(w),
                public_key: hex_encode(&key_for(w).verifying_key().to_bytes()),
                skills: vec![0.9, 0.9],
            })
            .collect(),
    }
}

/// A valid multi-round log image built frame by frame: opened rounds,
/// admitted bids, a committed+paid+settled round, and an aborted one.
fn golden_image() -> Vec<u8> {
    let mut events = Vec::new();
    for round_id in [1u64, 2] {
        events.push(WalEvent::RoundOpened {
            spec: spec(round_id),
        });
        for worker in 0..2u32 {
            let bid = Bid::new(
                Bundle::new(vec![TaskId(worker % 2), TaskId((worker + 1) % 2)]),
                Price::from_f64(2.0 + f64::from(worker)),
            );
            let envelope = BidEnvelope::sign(
                round_id,
                WorkerId(worker),
                bid.clone(),
                round_id * 10 + u64::from(worker),
                u64::MAX,
                &key_for(worker),
            );
            events.push(WalEvent::BidAdmitted {
                round_id,
                worker: WorkerId(worker),
                nonce: round_id * 10 + u64::from(worker),
                expires_at_ms: u64::MAX,
                bid,
                signature: envelope.signature_bytes().expect("signed envelope"),
            });
        }
    }
    events.push(WalEvent::AuctionCommitted {
        round_id: 1,
        seed: 7,
        price: Price::from_f64(4.0),
        winners: vec![WorkerId(0), WorkerId(1)],
    });
    for worker in 0..2u32 {
        events.push(WalEvent::PaymentIssued {
            round_id: 1,
            worker: WorkerId(worker),
            amount: Price::from_f64(4.0),
        });
    }
    events.push(WalEvent::RoundSettled { round_id: 1 });
    events.push(WalEvent::RoundAborted {
        round_id: 2,
        reason: mcs_service::AbortReason::Requested,
    });

    let mut image = Vec::new();
    image.extend_from_slice(b"MCSWAL01");
    image.extend_from_slice(&1u64.to_le_bytes());
    for (i, event) in events.iter().enumerate() {
        image.extend_from_slice(&encode_frame(1 + i as u64, &event.encode()));
    }
    image
}

/// The index of the frame containing byte `offset`, if any.
fn frame_containing(boundaries: &[u64], offset: u64) -> Option<usize> {
    if offset < WAL_HEADER_LEN {
        return None;
    }
    boundaries
        .windows(2)
        .position(|w| w[0] <= offset && offset < w[1])
}

proptest! {
    /// Truncating a valid log at ANY byte length recovers cleanly: a
    /// sub-header image is a typed error, anything else folds exactly
    /// the wholly-contained frames and reports the torn tail.
    #[test]
    fn any_prefix_truncation_recovers_to_the_last_whole_frame(cut_permille in 0u64..=1000) {
        let golden = golden_image();
        let full = scan_bytes(&golden).expect("golden image scans");
        prop_assert!(full.defect.is_none());
        let cut = (golden.len() as u64 * cut_permille / 1000) as usize;
        let prefix = &golden[..cut];

        if cut < WAL_HEADER_LEN as usize {
            prop_assert!(recover_from_bytes(prefix).is_err(), "sub-header image is typed damage");
            return Ok(());
        }
        let (ledger, scan) = recover_from_bytes(prefix).expect("prefix recovers");
        let whole = full
            .boundaries
            .iter()
            .filter(|&&b| b > WAL_HEADER_LEN && b <= cut as u64)
            .count();
        prop_assert_eq!(scan.frames.len(), whole, "cut {}", cut);
        // A torn tail is reported exactly when the cut left partial
        // frame bytes behind; a cut on a frame boundary is clean.
        prop_assert_eq!(scan.defect.is_some(), (cut as u64) > scan.valid_len);
        // Applying the surviving events never fails on a prefix of a
        // valid history, and never over-counts rounds.
        prop_assert!(ledger.total_rounds() <= 2);
    }

    /// Flipping ANY single byte of a valid log recovers cleanly: frames
    /// before the flipped one survive untouched, the flipped frame (and
    /// everything after) is cut, and header damage is a typed error.
    #[test]
    fn any_single_byte_flip_ends_the_valid_prefix_at_that_frame(
        pos_permille in 0u64..1000, flip in 1u8..=255
    ) {
        let golden = golden_image();
        let full = scan_bytes(&golden).expect("golden image scans");
        let pos = (golden.len() as u64 * pos_permille / 1000) as usize;
        let mut mutated = golden.clone();
        mutated[pos] ^= flip;

        match recover_from_bytes(&mutated) {
            Err(_) => {
                // Typed damage; only header bytes (magic/base LSN) can
                // refuse the whole image.
                prop_assert!(pos < WAL_HEADER_LEN as usize, "typed error only for header damage, got one at {}", pos);
            }
            Ok((ledger, scan)) => {
                match frame_containing(&full.boundaries, pos as u64) {
                    // A flip inside frame i: everything before i is
                    // untouched and valid; the CRC catches the flip (or
                    // the length field tears the tail) at frame i.
                    Some(i) => prop_assert_eq!(scan.frames.len(), i, "flip at {}", pos),
                    // Base-LSN flips surface as a non-monotonic first
                    // frame: an empty valid prefix.
                    None => prop_assert_eq!(scan.frames.len(), 0, "flip at {}", pos),
                }
                prop_assert!(ledger.total_rounds() <= 2);
            }
        }
    }

    /// Scanning is deterministic: the same damaged image always yields
    /// the same prefix and defect (recovery replayed twice is identical).
    #[test]
    fn damaged_scans_are_deterministic(pos_permille in 0u64..1000, flip in 1u8..=255) {
        let golden = golden_image();
        let pos = (golden.len() as u64 * pos_permille / 1000) as usize;
        let mut mutated = golden;
        mutated[pos] ^= flip;
        let a = scan_bytes(&mutated);
        let b = scan_bytes(&mutated);
        match (a, b) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "one scan failed, the other did not"),
        }
    }
}
