//! Retry-accounting regression tests for [`TcpClient`]: an exhausted
//! [`RetryPolicy`] must surface the *last typed* `Busy` answer — hint
//! intact — never a generic error, and `busy_retries()` must count
//! exactly the attempts the budget paid for.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mcs_service::{Request, Response, RetryPolicy, TcpClient};

/// A server that answers every request line with `busy`, counting the
/// lines it saw. Returns the address and the shared line counter.
fn always_busy_server(hint_ms: u64) -> (std::net::SocketAddr, Arc<AtomicU64>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let seen = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&seen);
    thread::spawn(move || {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut writer = stream;
        let busy = serde_json::to_string(&Response::Busy {
            retry_after_hint_ms: hint_ms,
        })
        .expect("serialize busy");
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            counter.fetch_add(1, Ordering::SeqCst);
            if writer
                .write_all(format!("{busy}\n").as_bytes())
                .and_then(|()| writer.flush())
                .is_err()
            {
                return;
            }
        }
    });
    (addr, seen)
}

/// The whole retry budget is spent, and what comes back is the typed
/// `Busy` with its hint — the caller can keep backing off on its own
/// instead of treating the overload as an I/O failure.
#[test]
fn exhausted_retry_budget_surfaces_the_last_typed_busy() {
    let (addr, seen) = always_busy_server(7);
    let policy = RetryPolicy {
        max_retries: 3,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(2),
    };
    let mut client = TcpClient::connect_with(addr, policy).expect("connect");

    let response = client.call(&Request::Health).expect("typed, not an error");
    assert_eq!(
        response,
        Response::Busy {
            retry_after_hint_ms: 7
        },
        "the final busy answer is surfaced as-is, hint intact"
    );
    assert_eq!(
        client.busy_retries(),
        3,
        "every retry the budget paid for is accounted"
    );
    assert_eq!(
        seen.load(Ordering::SeqCst),
        4,
        "one initial attempt plus max_retries retries hit the wire"
    );

    // A second call on the same connection keeps accumulating.
    let response = client.call(&Request::Health).expect("typed, not an error");
    assert!(matches!(response, Response::Busy { .. }));
    assert_eq!(client.busy_retries(), 6);
}

/// `RetryPolicy::none()` surfaces the very first busy raw: no sleeps, no
/// hidden attempts, a zero retry counter.
#[test]
fn none_policy_never_retries() {
    let (addr, seen) = always_busy_server(11);
    let mut client = TcpClient::connect_with(addr, RetryPolicy::none()).expect("connect");
    let response = client.call(&Request::Health).expect("typed, not an error");
    assert_eq!(
        response,
        Response::Busy {
            retry_after_hint_ms: 11
        }
    );
    assert_eq!(client.busy_retries(), 0);
    assert_eq!(seen.load(Ordering::SeqCst), 1);
}
