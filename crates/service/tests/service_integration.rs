//! End-to-end service tests: mixed loopback traffic, backpressure,
//! drain-on-shutdown, cache identity, and batching.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mcs_service::{Request, Response, Service, ServiceConfig, TcpClient, TcpServer};
use mcs_sim::faults::FaultPlan;
use mcs_sim::platform::ResilienceConfig;
use mcs_sim::Setting;
use mcs_types::{Instance, TrueType};

fn small(seed: u64) -> (Instance, Vec<TrueType>) {
    let g = Setting::one(80).scaled_down(8).generate(seed);
    (g.instance, g.types)
}

/// The acceptance workload: ≥5k mixed requests over loopback TCP from
/// several concurrent connections; every request gets exactly one
/// response and nothing panics, hangs, or resets.
#[test]
fn five_thousand_mixed_requests_over_loopback() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 1_300; // 5 200 total

    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_depth: 256,
        ..ServiceConfig::default()
    });
    let tcp = TcpServer::bind(service.client(), "127.0.0.1:0").expect("bind loopback");
    let addr = tcp.local_addr();

    let answered = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let answered = Arc::clone(&answered);
            thread::spawn(move || {
                let mut conn = TcpClient::connect(addr).expect("connect");
                // A handful of distinct instances so the cache is
                // exercised in both directions.
                let instances: Vec<(Instance, Vec<TrueType>)> =
                    (0..4).map(|i| small(100 + i)).collect();
                for i in 0..PER_CLIENT {
                    let (instance, types) = &instances[i % instances.len()];
                    let request = match i % 13 {
                        0 => Request::Health,
                        1 => Request::Metrics,
                        2 if i % 650 == 2 => Request::RunResilientRound {
                            instance: instance.clone(),
                            types: types.clone(),
                            epsilon: 0.1,
                            plan: FaultPlan::no_show(0.2, i as u64),
                            config: ResilienceConfig::default(),
                            seed: i as u64,
                        },
                        3..=5 => Request::QueryPmf {
                            instance: instance.clone(),
                            epsilon: 0.1,
                        },
                        _ => Request::RunAuction {
                            instance: instance.clone(),
                            epsilon: 0.1,
                            seed: (c * PER_CLIENT + i) as u64,
                        },
                    };
                    let response = conn.call(&request).expect("every request is answered");
                    match (&request, &response) {
                        (Request::Health, Response::Health(_))
                        | (Request::Metrics, Response::Metrics(_))
                        | (Request::QueryPmf { .. }, Response::Pmf(_))
                        | (Request::RunAuction { .. }, Response::Outcome(_))
                        | (Request::RunResilientRound { .. }, Response::Round(_)) => {}
                        (_, Response::Busy { .. }) => {
                            panic!("queue_depth 256 should never report Busy here")
                        }
                        (req, resp) => panic!("unexpected answer {resp:?} for {req:?}"),
                    }
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }
    assert_eq!(
        answered.load(Ordering::Relaxed),
        (CLIENTS * PER_CLIENT) as u64
    );

    // The cache must have taken the bulk of the auction/PMF load: only a
    // few distinct (instance, ε) keys ever existed.
    let client = service.client();
    let Response::Metrics(metrics) = client.call(Request::Metrics) else {
        panic!("metrics request failed");
    };
    assert!(metrics.cache_hits > 1_000, "hits: {}", metrics.cache_hits);
    assert!(
        metrics.cache_misses < 50,
        "misses: {}",
        metrics.cache_misses
    );
    let total: u64 = metrics.endpoints.iter().map(|e| e.count).sum();
    assert!(total >= (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(metrics.endpoints.iter().map(|e| e.errors).sum::<u64>(), 0);

    tcp.shutdown();
    service.shutdown();
}

/// An undersized queue answers typed `Busy` — it never hangs a caller or
/// resets a connection — and everything accepted still completes.
#[test]
fn undersized_queue_reports_busy() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_depth: 1,
        batch_window: Duration::from_millis(0),
        retry_after_hint_ms: 7,
        ..ServiceConfig::default()
    });
    let client = service.client();

    const THREADS: usize = 8;
    const PER_THREAD: usize = 4;
    let busy = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let client = client.clone();
            let busy = Arc::clone(&busy);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Distinct instances: every request is a cold build,
                    // keeping the single worker busy enough to back up
                    // the one-slot queue.
                    let (instance, _) = small((t * PER_THREAD + i) as u64);
                    match client.call(Request::RunAuction {
                        instance,
                        epsilon: 0.1,
                        seed: i as u64,
                    }) {
                        Response::Outcome(_) => {
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                        Response::Busy {
                            retry_after_hint_ms,
                        } => {
                            assert_eq!(retry_after_hint_ms, 7);
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no caller may hang or panic");
    }
    let busy = busy.load(Ordering::Relaxed);
    let done = done.load(Ordering::Relaxed);
    assert_eq!(busy + done, (THREADS * PER_THREAD) as u64);
    assert!(
        busy >= 1,
        "an 8-way stampede on a 1-slot queue must shed load"
    );
    assert!(done >= 1, "accepted requests must still complete");

    let Response::Metrics(metrics) = client.call(Request::Metrics) else {
        panic!("metrics request failed");
    };
    assert_eq!(metrics.rejected_busy, busy);
    service.shutdown();
}

/// Shutdown answers every accepted request before returning, and later
/// calls get a typed `ShuttingDown`.
#[test]
fn shutdown_drains_accepted_requests() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_depth: 64,
        ..ServiceConfig::default()
    });
    let client = service.client();

    const THREADS: usize = 12;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let client = client.clone();
            thread::spawn(move || {
                let (instance, _) = small(t as u64);
                client.call(Request::RunAuction {
                    instance,
                    epsilon: 0.1,
                    seed: t as u64,
                })
            })
        })
        .collect();
    // Let the stampede enqueue, then pull the plug while work is queued.
    thread::sleep(Duration::from_millis(20));
    service.shutdown();

    for h in handles {
        match h.join().expect("caller thread panicked") {
            // Accepted before the drain flag: must carry a real answer.
            Response::Outcome(_) => {}
            // Raced the flag or the queue: typed refusals, not hangs.
            Response::ShuttingDown | Response::Busy { .. } => {}
            other => panic!("dropped or mangled response: {other:?}"),
        }
    }
    // The service is gone; the surviving client handle learns that.
    assert_eq!(client.call(Request::Health), Response::ShuttingDown);
}

/// A cache-hit answer is byte-identical to the cold-path answer, for both
/// the sampled auction and the exact PMF.
#[test]
fn cached_responses_are_byte_identical_to_cold() {
    let (instance, _) = small(5);

    // Cold reference: a cache-less service builds from scratch each time.
    let uncached = Service::start(ServiceConfig {
        cache_capacity: 0,
        ..ServiceConfig::default()
    });
    let cold_client = uncached.client();

    // Cached service: first call is the cold build, second call hits.
    let cached = Service::start(ServiceConfig::default());
    let warm_client = cached.client();

    let auction_req = Request::RunAuction {
        instance: instance.clone(),
        epsilon: 0.1,
        seed: 42,
    };
    let pmf_req = Request::QueryPmf {
        instance,
        epsilon: 0.1,
    };

    let cold_outcome = cold_client.call(auction_req.clone());
    let cold_pmf = cold_client.call(pmf_req.clone());
    let warm_first_outcome = warm_client.call(auction_req.clone());
    let warm_first_pmf = warm_client.call(pmf_req.clone());
    let warm_second_outcome = warm_client.call(auction_req);
    let warm_second_pmf = warm_client.call(pmf_req);

    // The warm service must actually have hit its cache by now.
    let Response::Metrics(metrics) = warm_client.call(Request::Metrics) else {
        panic!("metrics request failed");
    };
    assert!(metrics.cache_hits >= 1, "hits: {}", metrics.cache_hits);

    let bytes = |r: &Response| serde_json::to_string(r).expect("serialize response");
    assert_eq!(bytes(&cold_outcome), bytes(&warm_first_outcome));
    assert_eq!(bytes(&cold_outcome), bytes(&warm_second_outcome));
    assert_eq!(bytes(&cold_pmf), bytes(&warm_first_pmf));
    assert_eq!(bytes(&cold_pmf), bytes(&warm_second_pmf));
    assert!(matches!(cold_outcome, Response::Outcome(_)));
    assert!(matches!(cold_pmf, Response::Pmf(_)));

    uncached.shutdown();
    cached.shutdown();
}

/// Concurrent same-instance requests coalesce into one schedule build.
#[test]
fn same_key_burst_coalesces_into_batches() {
    // No cache, one worker: every *batch* is exactly one build, so the
    // miss counter counts builds directly.
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_depth: 64,
        cache_capacity: 0,
        batch_window: Duration::from_millis(100),
        max_batch: 16,
        ..ServiceConfig::default()
    });
    let client = service.client();

    // Occupy the single worker so the burst piles up behind it.
    let blocker = {
        let client = client.clone();
        thread::spawn(move || {
            let (instance, types) = small(999);
            client.call(Request::RunResilientRound {
                instance,
                types,
                epsilon: 0.1,
                plan: FaultPlan::no_show(0.3, 1),
                config: ResilienceConfig::default(),
                seed: 1,
            })
        })
    };
    thread::sleep(Duration::from_millis(10));

    const BURST: usize = 6;
    let (instance, _) = small(7);
    let handles: Vec<_> = (0..BURST)
        .map(|i| {
            let client = client.clone();
            let instance = instance.clone();
            thread::spawn(move || {
                client.call(Request::RunAuction {
                    instance,
                    epsilon: 0.1,
                    seed: i as u64,
                })
            })
        })
        .collect();
    for h in handles {
        assert!(matches!(
            h.join().expect("burst caller panicked"),
            Response::Outcome(_)
        ));
    }
    assert!(matches!(
        blocker.join().expect("blocker panicked"),
        Response::Round(_)
    ));

    let Response::Metrics(metrics) = client.call(Request::Metrics) else {
        panic!("metrics request failed");
    };
    // Without coalescing (and with the cache off) the burst alone would
    // cost BURST builds; batching must have merged most of them.
    assert!(
        metrics.cache_misses <= 1 + (BURST as u64) / 2,
        "builds: {} for {} same-key requests",
        metrics.cache_misses,
        BURST
    );
    let batched: u64 = metrics.endpoints.iter().map(|e| e.batched).sum();
    assert!(batched >= 2, "batched: {batched}");
    service.shutdown();
}

/// Malformed TCP lines get an `error` line back; the connection stays up.
#[test]
fn malformed_tcp_line_answers_error_and_keeps_connection() {
    use std::io::{BufRead, BufReader, Write};

    let service = Service::start(ServiceConfig::default());
    let tcp = TcpServer::bind(service.client(), "127.0.0.1:0").expect("bind loopback");
    let stream = std::net::TcpStream::connect(tcp.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;

    writer.write_all(b"this is not json\n").expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read error line");
    let response: Response = serde_json::from_str(line.trim()).expect("parse error line");
    assert!(matches!(response, Response::Error { .. }));

    // Same connection still serves real requests afterwards.
    let request = serde_json::to_string(&Request::Health).expect("serialize");
    writer.write_all(request.as_bytes()).expect("write");
    writer.write_all(b"\n").expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read health line");
    let response: Response = serde_json::from_str(line.trim()).expect("parse health line");
    assert!(matches!(response, Response::Health(_)));

    tcp.shutdown();
    service.shutdown();
}

/// Infeasible or invalid inputs surface as typed `Error` responses.
#[test]
fn invalid_epsilon_is_a_typed_error() {
    let service = Service::start(ServiceConfig::default());
    let client = service.client();
    let (instance, _) = small(3);
    match client.call(Request::RunAuction {
        instance,
        epsilon: -1.0,
        seed: 0,
    }) {
        Response::Error { message } => assert!(message.contains("epsilon"), "{message}"),
        other => panic!("expected a typed error, got {other:?}"),
    }
    service.shutdown();
}

/// The configured winner-determination strategy changes only the cost
/// profile of schedule builds, never the mechanism output: a service
/// pinned to the indexed engine answers with the identical PMF and the
/// identical seeded outcomes as a default-strategy service.
#[test]
fn indexed_strategy_service_matches_default() {
    let default_service = Service::start(ServiceConfig::default());
    let indexed_service = Service::start(ServiceConfig {
        strategy: mcs_auction::Strategy::Indexed,
        ..ServiceConfig::default()
    });
    let (instance, _) = small(17);
    let query = |service: &Service| {
        let client = service.client();
        match client.call(Request::QueryPmf {
            instance: instance.clone(),
            epsilon: 0.3,
        }) {
            Response::Pmf(summary) => summary,
            other => panic!("expected a PMF, got {other:?}"),
        }
    };
    let a = query(&default_service);
    let b = query(&indexed_service);
    assert_eq!(a.prices, b.prices);
    assert_eq!(a.probs, b.probs);

    let run = |service: &Service| {
        let client = service.client();
        match client.call(Request::RunAuction {
            instance: instance.clone(),
            epsilon: 0.3,
            seed: 42,
        }) {
            Response::Outcome(outcome) => outcome,
            other => panic!("expected an outcome, got {other:?}"),
        }
    };
    assert_eq!(run(&default_service), run(&indexed_service));

    default_service.shutdown();
    indexed_service.shutdown();
}

// ---------------------------------------------------------------------------
// Durable rounds over TCP

mod durable {
    use super::*;
    use std::path::PathBuf;

    use ed25519::{hex_encode, SigningKey};
    use mcs_service::{BidEnvelope, DurabilityConfig, RosterEntry, RoundSpec};
    use mcs_types::{Bid, Bundle, Price, TaskId, WorkerId};

    fn key_for(worker: u32) -> SigningKey {
        let mut seed = [0u8; 32];
        seed[..4].copy_from_slice(&worker.to_le_bytes());
        seed[31] = 0x1C;
        SigningKey::from_seed(seed)
    }

    fn spec(round_id: u64) -> RoundSpec {
        RoundSpec {
            round_id,
            num_tasks: 2,
            error_bounds: vec![0.8, 0.8],
            price_min: Price::from_f64(1.0),
            price_max: Price::from_f64(10.0),
            price_step: Price::from_f64(1.0),
            cost_min: Price::from_f64(1.0),
            cost_max: Price::from_f64(10.0),
            epsilon: 0.5,
            roster: (0..2)
                .map(|w| RosterEntry {
                    worker: WorkerId(w),
                    public_key: hex_encode(&key_for(w).verifying_key().to_bytes()),
                    skills: vec![0.9, 0.9],
                })
                .collect(),
        }
    }

    fn envelope(round_id: u64, worker: u32, nonce: u64) -> BidEnvelope {
        let bid = Bid::new(
            Bundle::new(vec![TaskId(0), TaskId(1)]),
            Price::from_f64(2.0 + f64::from(worker)),
        );
        BidEnvelope::sign(
            round_id,
            WorkerId(worker),
            bid,
            nonce,
            u64::MAX,
            &key_for(worker),
        )
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mcs-service-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_config(dir: &std::path::Path) -> ServiceConfig {
        ServiceConfig {
            workers: 1,
            durability: Some(DurabilityConfig::new(dir.to_path_buf())),
            ..ServiceConfig::default()
        }
    }

    /// The full durable lifecycle over loopback TCP: open, signed bids,
    /// typed rejections for forged and replayed envelopes, idempotent
    /// commit, WAL-aware health/metrics — then a restart that recovers
    /// the settled round and aborts the in-flight one.
    #[test]
    fn durable_rounds_over_tcp_with_restart_recovery() {
        let dir = temp_dir("tcp");
        let service = Service::start(durable_config(&dir));
        let tcp = TcpServer::bind(service.client(), "127.0.0.1:0").expect("bind loopback");
        let mut conn = TcpClient::connect(tcp.local_addr()).expect("connect");

        let opened = conn
            .call(&Request::OpenRound { spec: spec(1) })
            .expect("answered");
        assert!(
            matches!(opened, Response::Opened { round_id: 1, .. }),
            "{opened:?}"
        );

        let response = conn
            .call(&Request::SubmitBid {
                envelope: envelope(1, 0, 100),
            })
            .expect("answered");
        assert!(
            matches!(response, Response::BidAccepted { round_id: 1, .. }),
            "{response:?}"
        );

        // A replayed envelope: valid signature, reused nonce.
        let response = conn
            .call(&Request::SubmitBid {
                envelope: envelope(1, 0, 100),
            })
            .expect("answered");
        let Response::Rejected { code, .. } = response else {
            panic!("replayed envelope must be rejected, got {response:?}");
        };
        assert_eq!(code, "replayed_nonce");

        // A forged envelope: signed fields mutated after signing.
        let mut forged = envelope(1, 1, 555);
        forged.nonce = 556;
        let response = conn
            .call(&Request::SubmitBid { envelope: forged })
            .expect("answered");
        let Response::Rejected { code, .. } = response else {
            panic!("forged envelope must be rejected, got {response:?}");
        };
        assert_eq!(code, "bad_signature");

        let response = conn
            .call(&Request::SubmitBid {
                envelope: envelope(1, 1, 101),
            })
            .expect("answered");
        assert!(
            matches!(response, Response::BidAccepted { round_id: 1, .. }),
            "{response:?}"
        );

        let committed = conn
            .call(&Request::CommitRound {
                round_id: 1,
                seed: 7,
            })
            .expect("answered");
        let Response::Committed(receipt) = committed else {
            panic!("expected a receipt, got {committed:?}");
        };
        assert!(!receipt.winners.is_empty());
        assert!(!receipt.already_committed);
        let expected_paid =
            Price::from_tenths(receipt.price.tenths() * receipt.winners.len() as i64);

        // Committing again is an idempotent replay, seed ignored.
        let again = conn
            .call(&Request::CommitRound {
                round_id: 1,
                seed: 999,
            })
            .expect("answered");
        let Response::Committed(replay) = again else {
            panic!("expected a replayed receipt, got {again:?}");
        };
        assert!(replay.already_committed);
        assert_eq!(replay.price, receipt.price);
        assert_eq!(replay.winners, receipt.winners);

        // A second round left open across the restart.
        let opened = conn
            .call(&Request::OpenRound { spec: spec(2) })
            .expect("answered");
        assert!(matches!(opened, Response::Opened { round_id: 2, .. }));
        let response = conn
            .call(&Request::SubmitBid {
                envelope: envelope(2, 1, 777),
            })
            .expect("answered");
        assert!(matches!(
            response,
            Response::BidAccepted { round_id: 2, .. }
        ));

        let Ok(Response::Metrics(metrics)) = conn.call(&Request::Metrics) else {
            panic!("metrics request failed");
        };
        assert_eq!(metrics.envelope_rejections, 2);
        assert!(metrics.wal_frames > 0);
        assert!(metrics.wal_fsyncs > 0);

        let Ok(Response::Health(health)) = conn.call(&Request::Health) else {
            panic!("health request failed");
        };
        assert!(health.last_synced_lsn > 0);
        assert!(health.wal_size_bytes > 0);

        tcp.shutdown();
        service.shutdown();

        // Restart on the same directory: the settled round survives in
        // full, the in-flight one is aborted, and health reports what
        // recovery did.
        let service = Service::start(durable_config(&dir));
        let recovery = service.recovery().expect("durability enabled");
        assert_eq!(recovery.recovered_rounds, 1, "round 2 was live at shutdown");
        assert_eq!(recovery.aborted_in_flight, 1);
        let tcp = TcpServer::bind(service.client(), "127.0.0.1:0").expect("rebind");
        let mut conn = TcpClient::connect(tcp.local_addr()).expect("reconnect");

        let Ok(Response::Health(health)) = conn.call(&Request::Health) else {
            panic!("health request failed");
        };
        assert_eq!(health.recovered_rounds, 1);
        assert!(health.last_synced_lsn > 0);

        let Ok(Response::RoundStatus(settled)) = conn.call(&Request::RoundStatus { round_id: 1 })
        else {
            panic!("round 1 status failed");
        };
        assert_eq!(settled.phase, "settled");
        assert_eq!(settled.total_paid, expected_paid);

        let Ok(Response::RoundStatus(aborted)) = conn.call(&Request::RoundStatus { round_id: 2 })
        else {
            panic!("round 2 status failed");
        };
        assert_eq!(aborted.phase, "aborted");
        assert_eq!(aborted.total_paid, Price::ZERO);

        // Bidding into the aborted round is a typed refusal.
        let response = conn
            .call(&Request::SubmitBid {
                envelope: envelope(2, 0, 888),
            })
            .expect("answered");
        assert!(
            matches!(response, Response::Rejected { ref code, .. } if code == "round_closed"),
            "{response:?}"
        );

        tcp.shutdown();
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Without a durability directory the round endpoints answer a plain
    /// typed error instead of panicking or hanging.
    #[test]
    fn round_endpoints_without_durability_are_typed_errors() {
        let service = Service::start(ServiceConfig::default());
        let client = service.client();
        let response = client.call(Request::OpenRound { spec: spec(1) });
        assert!(matches!(response, Response::Error { .. }), "{response:?}");
        service.shutdown();
    }
}
