//! LRU cache of built price schedules / PMFs.
//!
//! The expensive step of every auction request is building the per-price
//! winner schedule and the exponential-mechanism PMF; the cheap step is
//! the seeded price draw. The cache keys the expensive artifact by the
//! *content* of `(Instance, ε)` — the instance's stable FNV-1a digest
//! (see `mcs_types::Instance::digest`) plus the raw bits of ε — so two
//! structurally identical requests share one build regardless of which
//! client sent them.
//!
//! Digest collisions are possible in principle (64-bit hash) but the
//! digest is versioned and covers every field that influences the
//! schedule, so a collision requires adversarial input; the service
//! trades that remote risk for not holding full instances in the key.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mcs_auction::PricePmf;
use mcs_types::{Instance, McsError};

/// Cache key: instance content digest + the exact bits of ε.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    digest: u64,
    eps_bits: u64,
}

impl CacheKey {
    /// Derives the key for an `(instance, ε)` pair.
    pub fn new(instance: &Instance, epsilon: f64) -> Self {
        CacheKey {
            digest: instance.digest(),
            eps_bits: epsilon.to_bits(),
        }
    }
}

struct Entry {
    pmf: Arc<PricePmf>,
    last_used: u64,
}

/// A bounded LRU map from [`CacheKey`] to a shared, immutable PMF.
pub struct PmfCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct Inner {
    entries: HashMap<CacheKey, Entry>,
    tick: u64,
}

impl PmfCache {
    /// Creates a cache holding at most `capacity` schedules.
    ///
    /// A zero capacity disables caching: every lookup misses and nothing
    /// is retained.
    pub fn new(capacity: usize) -> Self {
        PmfCache {
            capacity,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, building the PMF with `build` on a miss.
    ///
    /// The build runs *outside* the cache lock, so a slow build never
    /// blocks readers of other keys; two threads racing on the same cold
    /// key may both build, and the second insert simply wins (both builds
    /// are deterministic and identical). The dispatcher's batching keeps
    /// that race rare.
    ///
    /// Returns the PMF and whether this call was a cache hit.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error (infeasible instance, invalid ε).
    /// Errors are not cached: a later retry re-runs the build.
    pub fn get_or_build<F>(
        &self,
        key: CacheKey,
        build: F,
    ) -> Result<(Arc<PricePmf>, bool), McsError>
    where
        F: FnOnce() -> Result<PricePmf, McsError>,
    {
        {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(&key) {
                entry.last_used = tick;
                let pmf = Arc::clone(&entry.pmf);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((pmf, true));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let pmf = Arc::new(build()?);
        if self.capacity > 0 {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            inner.entries.insert(
                key,
                Entry {
                    pmf: Arc::clone(&pmf),
                    last_used: tick,
                },
            );
            while inner.entries.len() > self.capacity {
                if let Some(oldest) = inner
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                {
                    inner.entries.remove(&oldest);
                }
            }
        }
        Ok((pmf, false))
    }

    /// Number of schedules currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("cache lock poisoned")
            .entries
            .len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum resident schedules.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cold builds since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_auction::{DpHsrcAuction, ScheduledMechanism};
    use mcs_sim::Setting;

    fn instance(seed: u64) -> Instance {
        Setting::one(80).scaled_down(4).generate(seed).instance
    }

    fn build(inst: &Instance, eps: f64) -> Result<PricePmf, McsError> {
        DpHsrcAuction::new(eps)?.pmf(inst)
    }

    #[test]
    fn second_lookup_hits() {
        let cache = PmfCache::new(4);
        let inst = instance(1);
        let key = CacheKey::new(&inst, 0.1);
        let (_, hit) = cache.get_or_build(key, || build(&inst, 0.1)).unwrap();
        assert!(!hit);
        let (_, hit) = cache
            .get_or_build(key, || panic!("must not rebuild"))
            .unwrap();
        assert!(hit);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_epsilon_is_a_distinct_key() {
        let inst = instance(1);
        assert_ne!(CacheKey::new(&inst, 0.1), CacheKey::new(&inst, 0.2));
        assert_eq!(CacheKey::new(&inst, 0.1), CacheKey::new(&inst.clone(), 0.1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PmfCache::new(2);
        let insts: Vec<Instance> = (0..3).map(instance).collect();
        let keys: Vec<CacheKey> = insts.iter().map(|i| CacheKey::new(i, 0.1)).collect();
        cache
            .get_or_build(keys[0], || build(&insts[0], 0.1))
            .unwrap();
        cache
            .get_or_build(keys[1], || build(&insts[1], 0.1))
            .unwrap();
        // Touch key 0 so key 1 becomes the LRU victim.
        cache.get_or_build(keys[0], || panic!("cached")).unwrap();
        cache
            .get_or_build(keys[2], || build(&insts[2], 0.1))
            .unwrap();
        assert_eq!(cache.len(), 2);
        let (_, hit0) = cache
            .get_or_build(keys[0], || build(&insts[0], 0.1))
            .unwrap();
        assert!(hit0, "recently used key survived eviction");
        let (_, hit1) = cache
            .get_or_build(keys[1], || build(&insts[1], 0.1))
            .unwrap();
        assert!(!hit1, "LRU key was evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PmfCache::new(0);
        let inst = instance(1);
        let key = CacheKey::new(&inst, 0.1);
        cache.get_or_build(key, || build(&inst, 0.1)).unwrap();
        let (_, hit) = cache.get_or_build(key, || build(&inst, 0.1)).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = PmfCache::new(2);
        let inst = instance(1);
        let key = CacheKey::new(&inst, -1.0);
        assert!(cache.get_or_build(key, || build(&inst, -1.0)).is_err());
        assert_eq!(cache.len(), 0);
        // A later retry with a fixed builder succeeds.
        let (_, hit) = cache.get_or_build(key, || build(&inst, 0.1)).unwrap();
        assert!(!hit);
    }
}
