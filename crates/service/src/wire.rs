//! The service wire protocol: request and response types.
//!
//! Both transports speak the same types. In-process callers hand a
//! [`Request`] to [`crate::Client::call`] and get a [`Response`] back;
//! the TCP transport ships the same values as one line of JSON per
//! message (externally tagged on a `"type"` field).
//!
//! The enums' serde impls are hand-written because the vendored derive
//! only handles structs; the encoding is the conventional externally
//! tagged object, e.g. `{"type": "run_auction", "instance": …,
//! "epsilon": 0.1, "seed": 7}`.

use std::fmt;

use serde::{DeError, Deserialize, Number, Serialize, Value};

use mcs_auction::AuctionOutcome;
use mcs_sim::faults::FaultPlan;
use mcs_sim::platform::{DegradedRoundReport, ResilienceConfig};
use mcs_types::{Instance, McsError, Price, TrueType, WorkerId};

use crate::envelope::BidEnvelope;
use crate::ledger::{CommitReceipt, RoundSpec, RoundStatusView};
use crate::stream::{StreamReceipt, StreamSpec, StreamStatusView};

/// A request to the auction service.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one DP-hSRC auction: build (or fetch) the price schedule and
    /// PMF for `(instance, epsilon)`, then sample a clearing price with
    /// the seeded RNG. Identical `(instance, epsilon, seed)` triples give
    /// identical outcomes whether the PMF came from the cache or a cold
    /// build.
    RunAuction {
        /// The auction input (bids, skills, error bounds, price grid).
        instance: Instance,
        /// Privacy budget ε of the exponential mechanism.
        epsilon: f64,
        /// Seed of the price-draw RNG.
        seed: u64,
    },
    /// Return the exact output distribution over feasible prices for
    /// `(instance, epsilon)` without sampling.
    QueryPmf {
        /// The auction input.
        instance: Instance,
        /// Privacy budget ε.
        epsilon: f64,
    },
    /// Run one fault-tolerant platform round (auction → faults →
    /// backfill re-auctions → aggregation) and return the full report.
    RunResilientRound {
        /// The auction input.
        instance: Instance,
        /// True worker types (bundle + cost) used for labelling and
        /// utility accounting.
        types: Vec<TrueType>,
        /// Privacy budget ε.
        epsilon: f64,
        /// The fault model to inject.
        plan: FaultPlan,
        /// Deadline and backfill knobs.
        config: ResilienceConfig,
        /// Seed of the round RNG.
        seed: u64,
    },
    /// Liveness / readiness probe; answered without touching the cache.
    Health,
    /// Snapshot of per-endpoint counters and latency quantiles.
    Metrics,
    /// Open a durable round: the spec is validated, written to the WAL,
    /// and survives restarts. Requires the service to be started with a
    /// durability directory.
    OpenRound {
        /// The round specification (roster, grid, ε, …).
        spec: RoundSpec,
    },
    /// Submit one signed bid to a durable round. The envelope's
    /// signature, expiry, and nonce are verified before the bid is
    /// admitted, and the admission is on the WAL before the ack.
    SubmitBid {
        /// The signed envelope.
        envelope: BidEnvelope,
    },
    /// Run and durably commit a durable round's auction. Idempotent:
    /// committing a settled round replays the recorded receipt.
    CommitRound {
        /// The round to commit.
        round_id: u64,
        /// Seed of the price draw.
        seed: u64,
    },
    /// Abort an open durable round.
    AbortRound {
        /// The round to abort.
        round_id: u64,
    },
    /// The current phase and totals of a durable round (or stream —
    /// streams share the id namespace and answer with
    /// [`Response::StreamStatus`]).
    RoundStatus {
        /// The round to inspect.
        round_id: u64,
    },
    /// Open a long-lived streaming session: arrivals are decided one by
    /// one at a posted price learned from the first `sample_target` of
    /// them. The session lives on the WAL and *resumes* (rather than
    /// aborts) after a crash.
    OpenStream {
        /// The stream specification (round spec + sample size + seed).
        spec: StreamSpec,
    },
    /// Submit one signed arrival to a streaming session. The response
    /// carries the immediate, irrevocable admit/reject decision; an
    /// accepted arrival's payment is on the WAL before the ack.
    Arrive {
        /// The signed envelope.
        envelope: BidEnvelope,
    },
    /// Close a streaming session, finalising its accepted set.
    /// Idempotent: re-closing replays the recorded receipt.
    CloseStream {
        /// The stream to close.
        round_id: u64,
    },
}

impl Request {
    /// The stable endpoint name used in metrics and logs.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::RunAuction { .. } => "run_auction",
            Request::QueryPmf { .. } => "query_pmf",
            Request::RunResilientRound { .. } => "run_resilient_round",
            Request::Health => "health",
            Request::Metrics => "metrics",
            Request::OpenRound { .. } => "open_round",
            Request::SubmitBid { .. } => "submit_bid",
            Request::CommitRound { .. } => "commit_round",
            Request::AbortRound { .. } => "abort_round",
            Request::RoundStatus { .. } => "round_status",
            Request::OpenStream { .. } => "open_stream",
            Request::Arrive { .. } => "arrive",
            Request::CloseStream { .. } => "close_stream",
        }
    }
}

/// A response from the auction service.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The sampled auction outcome for a [`Request::RunAuction`].
    Outcome(AuctionOutcome),
    /// The exact price distribution for a [`Request::QueryPmf`].
    Pmf(PmfSummary),
    /// The round report for a [`Request::RunResilientRound`].
    Round(Box<DegradedRoundReport>),
    /// Service liveness snapshot.
    Health(HealthReport),
    /// Metrics snapshot.
    Metrics(MetricsReport),
    /// The bounded accept queue was full: the request was *not* accepted.
    /// Retry after roughly the hinted number of milliseconds.
    Busy {
        /// Suggested client back-off before retrying.
        retry_after_hint_ms: u64,
    },
    /// The service is draining and no longer accepts new requests.
    ShuttingDown,
    /// The request was accepted but failed (infeasible instance, invalid
    /// ε, malformed wire input, …).
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// A durable round was opened; its spec is on stable storage.
    Opened {
        /// The opened round.
        round_id: u64,
        /// LSN of the `RoundOpened` frame.
        lsn: u64,
    },
    /// A signed bid passed every admission check and is on the WAL.
    BidAccepted {
        /// The admitting round.
        round_id: u64,
        /// LSN of the `BidAdmitted` frame.
        lsn: u64,
    },
    /// A durable round committed (or replayed its recorded commit).
    Committed(Box<CommitReceipt>),
    /// A durable round was aborted on request.
    Aborted {
        /// The aborted round.
        round_id: u64,
        /// LSN of the `RoundAborted` frame.
        lsn: u64,
    },
    /// The phase and totals of a durable round.
    RoundStatus(RoundStatusView),
    /// A durable-round request was refused with a typed reason.
    Rejected {
        /// Stable snake_case code (see [`crate::RoundError::code`]),
        /// e.g. `"bad_signature"`, `"replayed_nonce"`, `"expired"`.
        code: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A streaming session was opened; its spec is on stable storage.
    StreamOpened {
        /// The opened stream.
        round_id: u64,
        /// LSN of the `StreamOpened` frame.
        lsn: u64,
        /// Arrivals that will be observed before the price is posted.
        sample_target: usize,
    },
    /// One stream arrival was decided.
    ArrivalDecided {
        /// The deciding stream.
        round_id: u64,
        /// The arriving worker.
        worker: WorkerId,
        /// Whether the worker was admitted (and paid).
        accepted: bool,
        /// The payment made (zero when rejected).
        payment: Price,
        /// Stable snake_case decision reason (see
        /// [`crate::StreamDecision::reason`]).
        reason: String,
        /// The posted price, once the sample completed.
        posted_price: Option<Price>,
        /// LSN of the `StreamArrival` frame.
        lsn: u64,
    },
    /// A streaming session closed (or replayed its recorded close).
    StreamClosed(Box<StreamReceipt>),
    /// The phase and totals of a streaming session.
    StreamStatus(StreamStatusView),
}

/// The exact exponential-mechanism output distribution, price by price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PmfSummary {
    /// Feasible candidate prices, ascending.
    pub prices: Vec<Price>,
    /// Probability of drawing each price; sums to 1.
    pub probs: Vec<f64>,
}

/// Liveness snapshot returned by [`Request::Health`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Number of worker threads serving requests.
    pub workers: usize,
    /// Capacity of the bounded accept queue.
    pub queue_capacity: usize,
    /// Schedules currently resident in the PMF cache.
    pub cache_entries: usize,
    /// Maximum schedules the cache will hold.
    pub cache_capacity: usize,
    /// Whether the service is draining (shutdown requested).
    pub draining: bool,
    /// Rounds that were live (open or committed) when the durable ledger
    /// last recovered; 0 when durability is disabled.
    pub recovered_rounds: u64,
    /// Highest WAL LSN known to be on stable storage; 0 when durability
    /// is disabled.
    pub last_synced_lsn: u64,
    /// Current size of `wal.log` in bytes; 0 when durability is
    /// disabled.
    pub wal_size_bytes: u64,
}

/// Latency quantiles of one endpoint, in microseconds.
///
/// Quantiles are bucket upper bounds from a geometric histogram
/// (ratio 1.25), so each figure overstates the true quantile by at most
/// 25%.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median, as the containing bucket's upper bound (µs).
    pub p50_us: u64,
    /// 95th percentile bucket upper bound (µs).
    pub p95_us: u64,
    /// 99th percentile bucket upper bound (µs).
    pub p99_us: u64,
    /// Exact maximum observed latency (µs).
    pub max_us: u64,
}

/// Counters and latency for one endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointMetrics {
    /// Endpoint name (see [`Request::endpoint`]).
    pub endpoint: String,
    /// Requests answered, including errored ones.
    pub count: u64,
    /// Requests that returned [`Response::Error`].
    pub errors: u64,
    /// Requests answered as part of a coalesced batch of two or more.
    pub batched: u64,
    /// Attempts aimed at this endpoint that were turned away with
    /// [`Response::Busy`] at the accept queue. Every attempt counts —
    /// a client that retries its full [`crate::RetryPolicy`] budget
    /// shows up here once per attempt, so the counter exposes retry
    /// pressure per endpoint, not just unique requests.
    pub busy: u64,
    /// Latency quantiles; `None` until the endpoint has served a request.
    pub latency: Option<LatencySummary>,
}

/// Whole-service metrics snapshot returned by [`Request::Metrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Per-endpoint counters, in a stable endpoint order.
    pub endpoints: Vec<EndpointMetrics>,
    /// PMF cache hits since start.
    pub cache_hits: u64,
    /// PMF cache misses (cold builds) since start.
    pub cache_misses: u64,
    /// Requests rejected with [`Response::Busy`] at the accept queue.
    pub rejected_busy: u64,
    /// WAL frames appended since the durable ledger opened.
    pub wal_frames: u64,
    /// WAL fsyncs since the durable ledger opened.
    pub wal_fsyncs: u64,
    /// Bid envelopes refused at admission (any [`Response::Rejected`]
    /// with an envelope-class code).
    pub envelope_rejections: u64,
}

/// A typed wire-decoding failure.
///
/// The transport used to accept two classes of malformed input silently:
/// non-finite floats (the grammar has no `Infinity`/`NaN` literals, but
/// `1e999` overflows to `+inf` during parsing) and duplicate object keys
/// (the value tree keeps every pair and lookups return the first, so a
/// second `"epsilon"` was carried along unread). Both now fail decoding
/// with a variant naming the offending path, before any typed
/// deserialization runs.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The input is not syntactically valid JSON.
    Syntax(String),
    /// A number in the document is `inf`, `-inf`, or NaN.
    NonFinite {
        /// JSONPath-style location of the offending number.
        path: String,
    },
    /// An object repeats a key.
    DuplicateKey {
        /// JSONPath-style location of the object holding the repeat.
        path: String,
        /// The repeated key.
        key: String,
    },
    /// The JSON was valid and clean but did not match the target type.
    Shape(String),
    /// An embedded completion model carries a probability `p_ij` outside
    /// the half-open interval `(0, 1]`.
    ///
    /// Wire decoding bypasses [`Instance`]'s builder, so the builder's
    /// model validation is re-run here: a request that smuggles `p = 0`
    /// (a task that can never complete) or `p > 1` must fail typed at the
    /// transport, not panic deep inside the schedule engine.
    InvalidProbability {
        /// Worker of the offending entry.
        worker: u32,
        /// Task of the offending entry.
        task: u32,
        /// The offending value.
        value: f64,
    },
    /// An embedded completion model carries a per-task shortfall bound
    /// `gamma_j` outside the open interval `(0, 1)`.
    InvalidShortfallBound {
        /// The task whose bound is invalid.
        task: u32,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Syntax(msg) => write!(f, "invalid JSON: {msg}"),
            WireError::NonFinite { path } => {
                write!(f, "non-finite number at {path}")
            }
            WireError::DuplicateKey { path, key } => {
                write!(f, "duplicate key `{key}` in object at {path}")
            }
            WireError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
            WireError::InvalidProbability {
                worker,
                task,
                value,
            } => write!(
                f,
                "completion probability p[{worker}][{task}] = {value} is outside (0, 1]"
            ),
            WireError::InvalidShortfallBound { task, value } => write!(
                f,
                "shortfall bound gamma[{task}] = {value} is outside the open interval (0, 1)"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Rejects non-finite numbers and duplicate object keys anywhere in a
/// parsed value tree, reporting the first offence with its path.
fn validate_tree(v: &Value, path: &mut String) -> Result<(), WireError> {
    match v {
        Value::Number(Number::Float(f)) if !f.is_finite() => {
            Err(WireError::NonFinite { path: path.clone() })
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                let mark = path.len();
                path.push_str(&format!("[{i}]"));
                validate_tree(item, path)?;
                path.truncate(mark);
            }
            Ok(())
        }
        Value::Object(fields) => {
            for (i, (key, _)) in fields.iter().enumerate() {
                if fields[..i].iter().any(|(earlier, _)| earlier == key) {
                    return Err(WireError::DuplicateKey {
                        path: path.clone(),
                        key: key.clone(),
                    });
                }
            }
            for (key, value) in fields {
                let mark = path.len();
                path.push_str(&format!(".{key}"));
                validate_tree(value, path)?;
                path.truncate(mark);
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn decode_checked<T: Deserialize>(text: &str) -> Result<T, WireError> {
    let value: Value = serde_json::from_str(text).map_err(|e| WireError::Syntax(e.to_string()))?;
    let mut path = String::from("$");
    validate_tree(&value, &mut path)?;
    T::from_value(&value).map_err(|e| WireError::Shape(e.to_string()))
}

/// Re-runs the completion-model validation the [`Instance`] builder would
/// have performed, mapping the typed model errors onto wire errors.
///
/// Everything else about a decoded instance is structurally enforced by
/// the grammar, but completion probabilities and shortfall bounds are
/// plain floats whose legal ranges the type system cannot see.
fn validate_completion(instance: &Instance) -> Result<(), WireError> {
    instance
        .completion()
        .validate(instance.num_workers(), instance.num_tasks())
        .map_err(|e| match e {
            McsError::InvalidCompletionProb {
                worker,
                task,
                value,
            } => WireError::InvalidProbability {
                worker: worker.0,
                task: task.0,
                value,
            },
            McsError::InvalidShortfallBound { task, value } => WireError::InvalidShortfallBound {
                task: task.0,
                value,
            },
            other => WireError::Shape(other.to_string()),
        })
}

/// Decodes one request line, rejecting syntactically valid but unsound
/// documents (non-finite numbers, duplicate keys, out-of-range completion
/// probabilities) with typed errors.
///
/// # Errors
///
/// Returns the [`WireError`] variant describing the first problem found.
pub fn decode_request(text: &str) -> Result<Request, WireError> {
    let request: Request = decode_checked(text)?;
    match &request {
        Request::RunAuction { instance, .. }
        | Request::QueryPmf { instance, .. }
        | Request::RunResilientRound { instance, .. } => validate_completion(instance)?,
        _ => {}
    }
    Ok(request)
}

/// Decodes one response line under the same validation as
/// [`decode_request`].
///
/// # Errors
///
/// Returns the [`WireError`] variant describing the first problem found.
pub fn decode_response(text: &str) -> Result<Response, WireError> {
    decode_checked(text)
}

fn obj(tag: &str, mut fields: Vec<(String, Value)>) -> Value {
    let mut all = vec![("type".to_string(), Value::String(tag.to_string()))];
    all.append(&mut fields);
    Value::Object(all)
}

fn req_field<'v>(v: &'v Value, name: &'static str) -> Result<&'v Value, DeError> {
    v.get(name).ok_or_else(|| DeError::missing_field(name))
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::RunAuction {
                instance,
                epsilon,
                seed,
            } => obj(
                "run_auction",
                vec![
                    ("instance".to_string(), instance.to_value()),
                    ("epsilon".to_string(), epsilon.to_value()),
                    ("seed".to_string(), seed.to_value()),
                ],
            ),
            Request::QueryPmf { instance, epsilon } => obj(
                "query_pmf",
                vec![
                    ("instance".to_string(), instance.to_value()),
                    ("epsilon".to_string(), epsilon.to_value()),
                ],
            ),
            Request::RunResilientRound {
                instance,
                types,
                epsilon,
                plan,
                config,
                seed,
            } => obj(
                "run_resilient_round",
                vec![
                    ("instance".to_string(), instance.to_value()),
                    ("types".to_string(), types.to_value()),
                    ("epsilon".to_string(), epsilon.to_value()),
                    ("plan".to_string(), plan.to_value()),
                    ("config".to_string(), config.to_value()),
                    ("seed".to_string(), seed.to_value()),
                ],
            ),
            Request::Health => obj("health", Vec::new()),
            Request::Metrics => obj("metrics", Vec::new()),
            Request::OpenRound { spec } => {
                obj("open_round", vec![("spec".to_string(), spec.to_value())])
            }
            Request::SubmitBid { envelope } => obj(
                "submit_bid",
                vec![("envelope".to_string(), envelope.to_value())],
            ),
            Request::CommitRound { round_id, seed } => obj(
                "commit_round",
                vec![
                    ("round_id".to_string(), round_id.to_value()),
                    ("seed".to_string(), seed.to_value()),
                ],
            ),
            Request::AbortRound { round_id } => obj(
                "abort_round",
                vec![("round_id".to_string(), round_id.to_value())],
            ),
            Request::RoundStatus { round_id } => obj(
                "round_status",
                vec![("round_id".to_string(), round_id.to_value())],
            ),
            Request::OpenStream { spec } => {
                obj("open_stream", vec![("spec".to_string(), spec.to_value())])
            }
            Request::Arrive { envelope } => obj(
                "arrive",
                vec![("envelope".to_string(), envelope.to_value())],
            ),
            Request::CloseStream { round_id } => obj(
                "close_stream",
                vec![("round_id".to_string(), round_id.to_value())],
            ),
        }
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let tag = String::from_value(req_field(v, "type")?)?;
        match tag.as_str() {
            "run_auction" => Ok(Request::RunAuction {
                instance: Instance::from_value(req_field(v, "instance")?)?,
                epsilon: f64::from_value(req_field(v, "epsilon")?)?,
                seed: u64::from_value(req_field(v, "seed")?)?,
            }),
            "query_pmf" => Ok(Request::QueryPmf {
                instance: Instance::from_value(req_field(v, "instance")?)?,
                epsilon: f64::from_value(req_field(v, "epsilon")?)?,
            }),
            "run_resilient_round" => Ok(Request::RunResilientRound {
                instance: Instance::from_value(req_field(v, "instance")?)?,
                types: Vec::<TrueType>::from_value(req_field(v, "types")?)?,
                epsilon: f64::from_value(req_field(v, "epsilon")?)?,
                plan: FaultPlan::from_value(req_field(v, "plan")?)?,
                config: ResilienceConfig::from_value(req_field(v, "config")?)?,
                seed: u64::from_value(req_field(v, "seed")?)?,
            }),
            "health" => Ok(Request::Health),
            "metrics" => Ok(Request::Metrics),
            "open_round" => Ok(Request::OpenRound {
                spec: RoundSpec::from_value(req_field(v, "spec")?)?,
            }),
            "submit_bid" => Ok(Request::SubmitBid {
                envelope: BidEnvelope::from_value(req_field(v, "envelope")?)?,
            }),
            "commit_round" => Ok(Request::CommitRound {
                round_id: u64::from_value(req_field(v, "round_id")?)?,
                seed: u64::from_value(req_field(v, "seed")?)?,
            }),
            "abort_round" => Ok(Request::AbortRound {
                round_id: u64::from_value(req_field(v, "round_id")?)?,
            }),
            "round_status" => Ok(Request::RoundStatus {
                round_id: u64::from_value(req_field(v, "round_id")?)?,
            }),
            "open_stream" => Ok(Request::OpenStream {
                spec: StreamSpec::from_value(req_field(v, "spec")?)?,
            }),
            "arrive" => Ok(Request::Arrive {
                envelope: BidEnvelope::from_value(req_field(v, "envelope")?)?,
            }),
            "close_stream" => Ok(Request::CloseStream {
                round_id: u64::from_value(req_field(v, "round_id")?)?,
            }),
            other => Err(DeError::custom(format!("unknown request type `{other}`"))),
        }
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Response::Outcome(o) => obj("outcome", vec![("outcome".to_string(), o.to_value())]),
            Response::Pmf(p) => obj("pmf", vec![("pmf".to_string(), p.to_value())]),
            Response::Round(r) => obj("round", vec![("round".to_string(), r.to_value())]),
            Response::Health(h) => obj("health", vec![("health".to_string(), h.to_value())]),
            Response::Metrics(m) => obj("metrics", vec![("metrics".to_string(), m.to_value())]),
            Response::Busy {
                retry_after_hint_ms,
            } => obj(
                "busy",
                vec![(
                    "retry_after_hint_ms".to_string(),
                    retry_after_hint_ms.to_value(),
                )],
            ),
            Response::ShuttingDown => obj("shutting_down", Vec::new()),
            Response::Error { message } => {
                obj("error", vec![("message".to_string(), message.to_value())])
            }
            Response::Opened { round_id, lsn } => obj(
                "opened",
                vec![
                    ("round_id".to_string(), round_id.to_value()),
                    ("lsn".to_string(), lsn.to_value()),
                ],
            ),
            Response::BidAccepted { round_id, lsn } => obj(
                "bid_accepted",
                vec![
                    ("round_id".to_string(), round_id.to_value()),
                    ("lsn".to_string(), lsn.to_value()),
                ],
            ),
            Response::Committed(receipt) => obj(
                "committed",
                vec![("receipt".to_string(), receipt.to_value())],
            ),
            Response::Aborted { round_id, lsn } => obj(
                "aborted",
                vec![
                    ("round_id".to_string(), round_id.to_value()),
                    ("lsn".to_string(), lsn.to_value()),
                ],
            ),
            Response::RoundStatus(view) => obj(
                "round_status",
                vec![("status".to_string(), view.to_value())],
            ),
            Response::Rejected { code, detail } => obj(
                "rejected",
                vec![
                    ("code".to_string(), code.to_value()),
                    ("detail".to_string(), detail.to_value()),
                ],
            ),
            Response::StreamOpened {
                round_id,
                lsn,
                sample_target,
            } => obj(
                "stream_opened",
                vec![
                    ("round_id".to_string(), round_id.to_value()),
                    ("lsn".to_string(), lsn.to_value()),
                    ("sample_target".to_string(), sample_target.to_value()),
                ],
            ),
            Response::ArrivalDecided {
                round_id,
                worker,
                accepted,
                payment,
                reason,
                posted_price,
                lsn,
            } => obj(
                "arrival_decided",
                vec![
                    ("round_id".to_string(), round_id.to_value()),
                    ("worker".to_string(), worker.to_value()),
                    ("accepted".to_string(), accepted.to_value()),
                    ("payment".to_string(), payment.to_value()),
                    ("reason".to_string(), reason.to_value()),
                    ("posted_price".to_string(), posted_price.to_value()),
                    ("lsn".to_string(), lsn.to_value()),
                ],
            ),
            Response::StreamClosed(receipt) => obj(
                "stream_closed",
                vec![("receipt".to_string(), receipt.to_value())],
            ),
            Response::StreamStatus(view) => obj(
                "stream_status",
                vec![("status".to_string(), view.to_value())],
            ),
        }
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let tag = String::from_value(req_field(v, "type")?)?;
        match tag.as_str() {
            "outcome" => Ok(Response::Outcome(AuctionOutcome::from_value(req_field(
                v, "outcome",
            )?)?)),
            "pmf" => Ok(Response::Pmf(PmfSummary::from_value(req_field(v, "pmf")?)?)),
            "round" => Ok(Response::Round(Box::new(DegradedRoundReport::from_value(
                req_field(v, "round")?,
            )?))),
            "health" => Ok(Response::Health(HealthReport::from_value(req_field(
                v, "health",
            )?)?)),
            "metrics" => Ok(Response::Metrics(MetricsReport::from_value(req_field(
                v, "metrics",
            )?)?)),
            "busy" => Ok(Response::Busy {
                retry_after_hint_ms: u64::from_value(req_field(v, "retry_after_hint_ms")?)?,
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error {
                message: String::from_value(req_field(v, "message")?)?,
            }),
            "opened" => Ok(Response::Opened {
                round_id: u64::from_value(req_field(v, "round_id")?)?,
                lsn: u64::from_value(req_field(v, "lsn")?)?,
            }),
            "bid_accepted" => Ok(Response::BidAccepted {
                round_id: u64::from_value(req_field(v, "round_id")?)?,
                lsn: u64::from_value(req_field(v, "lsn")?)?,
            }),
            "committed" => Ok(Response::Committed(Box::new(CommitReceipt::from_value(
                req_field(v, "receipt")?,
            )?))),
            "aborted" => Ok(Response::Aborted {
                round_id: u64::from_value(req_field(v, "round_id")?)?,
                lsn: u64::from_value(req_field(v, "lsn")?)?,
            }),
            "round_status" => Ok(Response::RoundStatus(RoundStatusView::from_value(
                req_field(v, "status")?,
            )?)),
            "rejected" => Ok(Response::Rejected {
                code: String::from_value(req_field(v, "code")?)?,
                detail: String::from_value(req_field(v, "detail")?)?,
            }),
            "stream_opened" => Ok(Response::StreamOpened {
                round_id: u64::from_value(req_field(v, "round_id")?)?,
                lsn: u64::from_value(req_field(v, "lsn")?)?,
                sample_target: usize::from_value(req_field(v, "sample_target")?)?,
            }),
            "arrival_decided" => Ok(Response::ArrivalDecided {
                round_id: u64::from_value(req_field(v, "round_id")?)?,
                worker: WorkerId::from_value(req_field(v, "worker")?)?,
                accepted: bool::from_value(req_field(v, "accepted")?)?,
                payment: Price::from_value(req_field(v, "payment")?)?,
                reason: String::from_value(req_field(v, "reason")?)?,
                posted_price: Option::<Price>::from_value(req_field(v, "posted_price")?)?,
                lsn: u64::from_value(req_field(v, "lsn")?)?,
            }),
            "stream_closed" => Ok(Response::StreamClosed(Box::new(StreamReceipt::from_value(
                req_field(v, "receipt")?,
            )?))),
            "stream_status" => Ok(Response::StreamStatus(StreamStatusView::from_value(
                req_field(v, "status")?,
            )?)),
            other => Err(DeError::custom(format!("unknown response type `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{PaymentRecord, RosterEntry};
    use mcs_sim::Setting;
    use mcs_types::{Bid, Bundle, Price, TaskId, WorkerId};

    fn instance() -> Instance {
        Setting::one(80).scaled_down(4).generate(3).instance
    }

    fn round_spec() -> RoundSpec {
        RoundSpec {
            round_id: 17,
            num_tasks: 2,
            error_bounds: vec![0.4, 0.3],
            price_min: Price::from_f64(1.0),
            price_max: Price::from_f64(9.0),
            price_step: Price::from_f64(0.5),
            cost_min: Price::from_f64(1.0),
            cost_max: Price::from_f64(9.0),
            epsilon: 0.25,
            roster: vec![RosterEntry {
                worker: WorkerId(0),
                public_key: "ab".repeat(32),
                skills: vec![0.5, 0.6],
            }],
        }
    }

    fn bid_envelope() -> BidEnvelope {
        BidEnvelope {
            round_id: 17,
            worker: WorkerId(0),
            bid: Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(2.5)),
            nonce: 42,
            expires_at_ms: 99_000,
            signature: "cd".repeat(64),
        }
    }

    #[test]
    fn request_variants_round_trip() {
        let inst = instance();
        let g = Setting::one(80).scaled_down(4).generate(3);
        let requests = vec![
            Request::RunAuction {
                instance: inst.clone(),
                epsilon: 0.1,
                seed: 7,
            },
            Request::QueryPmf {
                instance: inst.clone(),
                epsilon: 0.5,
            },
            Request::RunResilientRound {
                instance: inst,
                types: g.types,
                epsilon: 0.1,
                plan: FaultPlan::no_show(0.2, 9),
                config: ResilienceConfig::default(),
                seed: 11,
            },
            Request::Health,
            Request::Metrics,
            Request::OpenRound { spec: round_spec() },
            Request::SubmitBid {
                envelope: bid_envelope(),
            },
            Request::CommitRound {
                round_id: 17,
                seed: 3,
            },
            Request::AbortRound { round_id: 17 },
            Request::RoundStatus { round_id: 17 },
            Request::OpenStream {
                spec: StreamSpec {
                    round: round_spec(),
                    sample_target: 3,
                    seed: 9,
                },
            },
            Request::Arrive {
                envelope: bid_envelope(),
            },
            Request::CloseStream { round_id: 17 },
        ];
        for req in requests {
            let json = serde_json::to_string(&req).expect("serialize");
            let back: Request = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, req);
        }
    }

    /// An uncertain instance whose probability (`2^-7`) and shortfall
    /// bound (`2^-10`) render to digit strings that appear nowhere else in
    /// the encoded document, so tests can corrupt exactly one field by
    /// textual substitution.
    fn uncertain_instance() -> Instance {
        let inst = instance();
        let rows = (0..inst.num_workers())
            .map(|_| vec![(TaskId(0), 0.0078125)])
            .collect();
        let model = mcs_types::CompletionModel::Bernoulli(mcs_types::BernoulliCompletion::new(
            rows,
            vec![0.0009765625; inst.num_tasks()],
        ));
        inst.with_completion(model)
            .expect("in-range completion model")
    }

    #[test]
    fn uncertain_request_round_trips() {
        let req = Request::QueryPmf {
            instance: uncertain_instance(),
            epsilon: 0.1,
        };
        let json = serde_json::to_string(&req).expect("serialize");
        assert_eq!(decode_request(&json).expect("decode"), req);
    }

    #[test]
    fn out_of_range_probability_is_rejected_typed() {
        let req = Request::QueryPmf {
            instance: uncertain_instance(),
            epsilon: 0.1,
        };
        let json = serde_json::to_string(&req).expect("serialize");
        for (bad, expect) in [("2.0078125", 2.0078125), ("0.0", 0.0), ("-0.5", -0.5)] {
            let line = json.replace("0.0078125", bad);
            match decode_request(&line) {
                Err(WireError::InvalidProbability {
                    worker,
                    task,
                    value,
                }) => {
                    assert_eq!((worker, task), (0, 0));
                    assert_eq!(value, expect);
                }
                other => panic!("p = {bad} must fail typed, got {other:?}"),
            }
        }
    }

    #[test]
    fn out_of_range_shortfall_bound_is_rejected_typed() {
        let req = Request::RunAuction {
            instance: uncertain_instance(),
            epsilon: 0.1,
            seed: 7,
        };
        let json = serde_json::to_string(&req).expect("serialize");
        let line = json.replace("0.0009765625", "1.0009765625");
        match decode_request(&line) {
            Err(WireError::InvalidShortfallBound { task, value }) => {
                assert_eq!(task, 0);
                assert_eq!(value, 1.0009765625);
            }
            other => panic!("gamma > 1 must fail typed, got {other:?}"),
        }
    }

    #[test]
    fn response_variants_round_trip() {
        let responses = vec![
            Response::Outcome(AuctionOutcome::new(
                Price::from_f64(40.0),
                vec![WorkerId(2), WorkerId(0)],
            )),
            Response::Pmf(PmfSummary {
                prices: vec![Price::from_f64(10.0), Price::from_f64(20.0)],
                probs: vec![0.25, 0.75],
            }),
            Response::Health(HealthReport {
                workers: 2,
                queue_capacity: 64,
                cache_entries: 1,
                cache_capacity: 32,
                draining: false,
                recovered_rounds: 3,
                last_synced_lsn: 41,
                wal_size_bytes: 2048,
            }),
            Response::Metrics(MetricsReport {
                endpoints: vec![EndpointMetrics {
                    endpoint: "run_auction".to_string(),
                    count: 3,
                    errors: 1,
                    batched: 2,
                    busy: 7,
                    latency: Some(LatencySummary {
                        p50_us: 100,
                        p95_us: 200,
                        p99_us: 300,
                        max_us: 280,
                    }),
                }],
                cache_hits: 2,
                cache_misses: 1,
                rejected_busy: 4,
                wal_frames: 12,
                wal_fsyncs: 9,
                envelope_rejections: 5,
            }),
            Response::Busy {
                retry_after_hint_ms: 10,
            },
            Response::ShuttingDown,
            Response::Error {
                message: "infeasible".to_string(),
            },
            Response::Opened {
                round_id: 17,
                lsn: 1,
            },
            Response::BidAccepted {
                round_id: 17,
                lsn: 2,
            },
            Response::Committed(Box::new(CommitReceipt {
                round_id: 17,
                price: Price::from_f64(4.0),
                winners: vec![WorkerId(0), WorkerId(2)],
                payments: vec![
                    PaymentRecord {
                        worker: WorkerId(0),
                        amount: Price::from_f64(4.0),
                    },
                    PaymentRecord {
                        worker: WorkerId(2),
                        amount: Price::from_f64(4.0),
                    },
                ],
                lsn: 6,
                already_committed: false,
            })),
            Response::Aborted {
                round_id: 18,
                lsn: 7,
            },
            Response::RoundStatus(RoundStatusView {
                round_id: 17,
                phase: "settled".to_string(),
                bids_admitted: 3,
                winners: vec![WorkerId(0)],
                total_paid: Price::from_f64(4.0),
            }),
            Response::Rejected {
                code: "bad_signature".to_string(),
                detail: "signature rejected: verification failed".to_string(),
            },
            Response::StreamOpened {
                round_id: 21,
                lsn: 1,
                sample_target: 3,
            },
            Response::ArrivalDecided {
                round_id: 21,
                worker: WorkerId(4),
                accepted: true,
                payment: Price::from_f64(6.0),
                reason: "accepted".to_string(),
                posted_price: Some(Price::from_f64(6.0)),
                lsn: 5,
            },
            Response::ArrivalDecided {
                round_id: 21,
                worker: WorkerId(5),
                accepted: false,
                payment: Price::ZERO,
                reason: "sample_observed".to_string(),
                posted_price: None,
                lsn: 6,
            },
            Response::StreamClosed(Box::new(StreamReceipt {
                round_id: 21,
                arrivals: 9,
                accepted: vec![WorkerId(2), WorkerId(4)],
                posted_price: Some(Price::from_f64(6.0)),
                total_paid: Price::from_f64(12.0),
                covered: true,
                lsn: 11,
                already_closed: false,
            })),
            Response::StreamStatus(StreamStatusView {
                round_id: 21,
                phase: "streaming".to_string(),
                arrivals: 4,
                sample_target: 3,
                accepted: vec![WorkerId(2)],
                posted_price: Some(Price::from_f64(6.0)),
                total_paid: Price::from_f64(6.0),
                covered: false,
            }),
        ];
        for resp in responses {
            let json = serde_json::to_string(&resp).expect("serialize");
            let back: Response = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(serde_json::from_str::<Request>(r#"{"type": "emit_tokens"}"#).is_err());
        assert!(serde_json::from_str::<Response>(r#"{"type": "teapot"}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"{"seed": 1}"#).is_err());
    }

    #[test]
    fn checked_decode_accepts_clean_lines() {
        let req = Request::RunAuction {
            instance: instance(),
            epsilon: 0.1,
            seed: 7,
        };
        let json = serde_json::to_string(&req).expect("serialize");
        assert_eq!(decode_request(&json).expect("decode"), req);
        let resp = Response::Busy {
            retry_after_hint_ms: 5,
        };
        let json = serde_json::to_string(&resp).expect("serialize");
        assert_eq!(decode_response(&json).expect("decode"), resp);
    }

    #[test]
    fn non_finite_floats_are_rejected_with_path() {
        // `1e999` overflows to +inf in the parser; the unchecked decode
        // path would happily build a Request carrying an infinite ε.
        let line = r#"{"type": "query_pmf", "instance": null, "epsilon": 1e999}"#;
        match decode_request(line) {
            Err(WireError::NonFinite { path }) => assert_eq!(path, "$.epsilon"),
            other => panic!("expected NonFinite, got {other:?}"),
        }
        // Nested occurrences are found and located too.
        let line = r#"{"type": "error", "message": "x", "extra": [1.0, [-1e999]]}"#;
        match decode_response(line) {
            Err(WireError::NonFinite { path }) => assert_eq!(path, "$.extra[1][0]"),
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_keys_are_rejected_with_path() {
        let line = r#"{"type": "health", "type": "metrics"}"#;
        match decode_request(line) {
            Err(WireError::DuplicateKey { path, key }) => {
                assert_eq!(path, "$");
                assert_eq!(key, "type");
            }
            other => panic!("expected DuplicateKey, got {other:?}"),
        }
        // A duplicate buried in a nested object is still caught, even
        // though `Value::get` would silently resolve to the first value.
        let line = r#"{"type": "run_auction", "instance": {"num_tasks": 1, "num_tasks": 2}, "epsilon": 0.1, "seed": 1}"#;
        match decode_request(line) {
            Err(WireError::DuplicateKey { path, key }) => {
                assert_eq!(path, "$.instance");
                assert_eq!(key, "num_tasks");
            }
            other => panic!("expected DuplicateKey, got {other:?}"),
        }
    }

    #[test]
    fn syntax_and_shape_errors_stay_typed() {
        assert!(matches!(
            decode_request("{not json"),
            Err(WireError::Syntax(_))
        ));
        assert!(matches!(
            decode_request(r#"{"type": "emit_tokens"}"#),
            Err(WireError::Shape(_))
        ));
        assert!(matches!(
            decode_response(r#"{"type": "busy"}"#),
            Err(WireError::Shape(_))
        ));
    }

    #[test]
    fn endpoint_names_are_stable() {
        assert_eq!(Request::Health.endpoint(), "health");
        assert_eq!(Request::Metrics.endpoint(), "metrics");
        let inst = instance();
        assert_eq!(
            Request::QueryPmf {
                instance: inst,
                epsilon: 0.1
            }
            .endpoint(),
            "query_pmf"
        );
    }
}
