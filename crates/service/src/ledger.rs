//! Durable round state: typed WAL events, the round ledger state
//! machine, and the recovering [`DurableLedger`] that backs the
//! service's durable endpoints.
//!
//! # Round lifecycle
//!
//! ```text
//! RoundOpened ──▶ BidAdmitted* ──▶ AuctionCommitted ──▶ PaymentIssued* ──▶ RoundSettled
//!      │                │
//!      └────────────────┴──▶ RoundAborted (requested, or recovered in flight)
//! ```
//!
//! Every transition is one WAL event; the in-memory [`Ledger`] is a pure
//! fold over the event stream, so replaying the log after a crash
//! reconstructs exactly the state the events describe. The commit
//! protocol's invariant is payment atomicity:
//!
//! * `AuctionCommitted` is fsync'd **before** the commit is acknowledged
//!   — it is the commit point. Once it is on disk the platform owes every
//!   winner its payment, crash or no crash.
//! * Recovery **rolls forward** committed rounds: any winner without a
//!   `PaymentIssued` event gets one appended, at the committed clearing
//!   price, before the service answers its first request.
//! * Rounds that were still open (no `AuctionCommitted` on disk) are
//!   **aborted** on recovery — the client never got a commit ack, so no
//!   obligation exists.
//!
//! Together: zero lost payments, zero double-payments (replay is a state
//! machine — a second `PaymentIssued` for the same worker is an
//! [`WalError::InvalidSequence`], and roll-forward only appends what is
//! missing, so recovering twice leaves the log byte-identical).
//!
//! Bid signatures are verified at admission, before the `BidAdmitted`
//! event is written; replay trusts the log (its CRCs detect corruption)
//! and does not re-run signature verification.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use mcs_auction::{DpHsrcAuction, ScheduledMechanism};
use mcs_num::rng;
use mcs_sim::campaign::RoundPhase as LifecyclePhase;
use mcs_types::{Bid, Bundle, Instance, Price, PriceGrid, SkillMatrix, TaskId, WorkerId};

use crate::envelope::{decode_public_key, BidEnvelope, EnvelopeError};
use crate::stream::{StreamDecision, StreamReceipt, StreamSession, StreamSpec, StreamStatusView};
use crate::wal::{self, WalError, WalOpenMode, WalWriter, WAL_FILE};

// ---------------------------------------------------------------------------
// Round specifications

/// One worker's registration in a round: identity, signing key, skills.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RosterEntry {
    /// The worker's identity, unique within the roster.
    pub worker: WorkerId,
    /// Hex-encoded 32-byte ed25519 public key bid envelopes must verify
    /// against.
    pub public_key: String,
    /// Per-task sensing quality θ_{ij}, one entry per task.
    pub skills: Vec<f64>,
}

/// Everything a durable round needs before bids arrive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundSpec {
    /// The round's identity; must be globally unused.
    pub round_id: u64,
    /// Number of sensing tasks.
    pub num_tasks: usize,
    /// Per-task aggregation error bounds δ_j ∈ (0, 1).
    pub error_bounds: Vec<f64>,
    /// Minimum candidate price of the grid.
    pub price_min: Price,
    /// Maximum candidate price of the grid.
    pub price_max: Price,
    /// Grid spacing.
    pub price_step: Price,
    /// Lower end of the admissible cost range.
    pub cost_min: Price,
    /// Upper end of the admissible cost range.
    pub cost_max: Price,
    /// Privacy budget ε of the exponential mechanism.
    pub epsilon: f64,
    /// Registered workers; only roster members may bid.
    pub roster: Vec<RosterEntry>,
}

impl RoundSpec {
    /// Structural validation, run before the spec enters the log.
    ///
    /// # Errors
    ///
    /// [`RoundError::InvalidSpec`] naming the first problem found.
    pub fn validate(&self) -> Result<(), RoundError> {
        let fail = |msg: String| Err(RoundError::InvalidSpec(msg));
        if self.num_tasks == 0 {
            return fail("num_tasks is zero".to_string());
        }
        if self.error_bounds.len() != self.num_tasks {
            return fail(format!(
                "{} error bounds for {} tasks",
                self.error_bounds.len(),
                self.num_tasks
            ));
        }
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return fail(format!(
                "epsilon {} is not positive and finite",
                self.epsilon
            ));
        }
        PriceGrid::new(self.price_min, self.price_max, self.price_step)
            .map_err(|e| RoundError::InvalidSpec(format!("price grid: {e}")))?;
        if self.cost_max < self.cost_min {
            return fail(format!(
                "cost range [{}, {}] is inverted",
                self.cost_min, self.cost_max
            ));
        }
        if self.roster.is_empty() {
            return fail("roster is empty".to_string());
        }
        let mut seen = BTreeSet::new();
        for entry in &self.roster {
            if !seen.insert(entry.worker.0) {
                return fail(format!(
                    "worker {} appears twice in the roster",
                    entry.worker.0
                ));
            }
            if entry.skills.len() != self.num_tasks {
                return fail(format!(
                    "worker {} has {} skills for {} tasks",
                    entry.worker.0,
                    entry.skills.len(),
                    self.num_tasks
                ));
            }
            decode_public_key(&entry.public_key).map_err(|e| {
                RoundError::InvalidSpec(format!("worker {} key: {e}", entry.worker.0))
            })?;
        }
        Ok(())
    }

    pub(crate) fn roster_entry(&self, worker: WorkerId) -> Option<&RosterEntry> {
        self.roster.iter().find(|e| e.worker == worker)
    }
}

// ---------------------------------------------------------------------------
// Events and their binary codec

/// Why a round ended without committing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// A client asked for the abort.
    Requested,
    /// Recovery found the round open with no commit on disk.
    RecoveredInFlight,
}

/// One typed entry of the write-ahead round log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEvent {
    /// A round was opened under `spec`.
    RoundOpened {
        /// The round's full specification.
        spec: RoundSpec,
    },
    /// A bid passed signature, expiry, replay, and roster checks.
    BidAdmitted {
        /// The round admitting the bid.
        round_id: u64,
        /// The bidding worker.
        worker: WorkerId,
        /// The envelope nonce (kept for the replay window).
        nonce: u64,
        /// The envelope expiry (Unix ms).
        expires_at_ms: u64,
        /// The bid itself.
        bid: Bid,
        /// The verified ed25519 signature (audit trail).
        signature: [u8; 64],
    },
    /// The auction ran; this fsync'd frame *is* the commit point.
    AuctionCommitted {
        /// The committed round.
        round_id: u64,
        /// Seed of the price draw (for audit replay).
        seed: u64,
        /// The sampled clearing price.
        price: Price,
        /// Winning workers, by roster identity.
        winners: Vec<WorkerId>,
    },
    /// One winner's payment obligation was discharged.
    PaymentIssued {
        /// The paying round.
        round_id: u64,
        /// The paid worker.
        worker: WorkerId,
        /// The amount paid.
        amount: Price,
    },
    /// The round ended without committing.
    RoundAborted {
        /// The aborted round.
        round_id: u64,
        /// Why it ended.
        reason: AbortReason,
    },
    /// Every winner of a committed round has been paid.
    RoundSettled {
        /// The settled round.
        round_id: u64,
    },
    /// A streaming session was opened under `spec`. Streams share the
    /// round id namespace.
    StreamOpened {
        /// The stream's full specification.
        spec: StreamSpec,
    },
    /// One stream arrival was decided. The recorded `(accepted, payment)`
    /// pair is an audit check: replay recomputes the decision from the
    /// deterministic session fold and refuses the log on a mismatch.
    StreamArrival {
        /// The stream deciding the arrival.
        round_id: u64,
        /// The arriving worker.
        worker: WorkerId,
        /// The envelope nonce (kept for the replay window).
        nonce: u64,
        /// The envelope expiry (Unix ms).
        expires_at_ms: u64,
        /// The bid itself.
        bid: Bid,
        /// The verified ed25519 signature (audit trail).
        signature: [u8; 64],
        /// Whether the worker was admitted.
        accepted: bool,
        /// The posted-price payment made (zero when rejected). An
        /// accepted arrival's frame is fsync'd before the ack — it is the
        /// payment's commit point.
        payment: Price,
    },
    /// The stream closed normally; its accepted set is final.
    StreamClosed {
        /// The closed stream.
        round_id: u64,
    },
    /// The stream was aborted on request. Posted-price payments already
    /// made stand — an abort only stops further arrivals.
    StreamAborted {
        /// The aborted stream.
        round_id: u64,
    },
}

const TAG_ROUND_OPENED: u8 = 1;
const TAG_BID_ADMITTED: u8 = 2;
const TAG_AUCTION_COMMITTED: u8 = 3;
const TAG_PAYMENT_ISSUED: u8 = 4;
const TAG_ROUND_ABORTED: u8 = 5;
const TAG_ROUND_SETTLED: u8 = 6;
const TAG_STREAM_OPENED: u8 = 7;
const TAG_STREAM_ARRIVAL: u8 = 8;
const TAG_STREAM_CLOSED: u8 = 9;
const TAG_STREAM_ABORTED: u8 = 10;

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| format!("truncated: wanted {n} bytes at offset {}", self.pos))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn finish(self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after the event",
                self.bytes.len() - self.pos
            ))
        }
    }
}

impl WalEvent {
    /// Encodes the event as a WAL frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalEvent::RoundOpened { spec } => {
                out.push(TAG_ROUND_OPENED);
                // The spec is a plain struct; its JSON form is reused as
                // the payload (field order is fixed, so it is
                // deterministic) under a length prefix.
                let json = serde_json::to_string(spec).expect("spec serializes");
                out.extend_from_slice(&(json.len() as u32).to_le_bytes());
                out.extend_from_slice(json.as_bytes());
            }
            WalEvent::BidAdmitted {
                round_id,
                worker,
                nonce,
                expires_at_ms,
                bid,
                signature,
            } => {
                out.push(TAG_BID_ADMITTED);
                out.extend_from_slice(&round_id.to_le_bytes());
                out.extend_from_slice(&worker.0.to_le_bytes());
                out.extend_from_slice(&nonce.to_le_bytes());
                out.extend_from_slice(&expires_at_ms.to_le_bytes());
                out.extend_from_slice(&bid.price().tenths().to_le_bytes());
                let tasks = bid.bundle().as_slice();
                out.extend_from_slice(&(tasks.len() as u32).to_le_bytes());
                for task in tasks {
                    out.extend_from_slice(&task.0.to_le_bytes());
                }
                out.extend_from_slice(signature);
            }
            WalEvent::AuctionCommitted {
                round_id,
                seed,
                price,
                winners,
            } => {
                out.push(TAG_AUCTION_COMMITTED);
                out.extend_from_slice(&round_id.to_le_bytes());
                out.extend_from_slice(&seed.to_le_bytes());
                out.extend_from_slice(&price.tenths().to_le_bytes());
                out.extend_from_slice(&(winners.len() as u32).to_le_bytes());
                for w in winners {
                    out.extend_from_slice(&w.0.to_le_bytes());
                }
            }
            WalEvent::PaymentIssued {
                round_id,
                worker,
                amount,
            } => {
                out.push(TAG_PAYMENT_ISSUED);
                out.extend_from_slice(&round_id.to_le_bytes());
                out.extend_from_slice(&worker.0.to_le_bytes());
                out.extend_from_slice(&amount.tenths().to_le_bytes());
            }
            WalEvent::RoundAborted { round_id, reason } => {
                out.push(TAG_ROUND_ABORTED);
                out.extend_from_slice(&round_id.to_le_bytes());
                out.push(match reason {
                    AbortReason::Requested => 0,
                    AbortReason::RecoveredInFlight => 1,
                });
            }
            WalEvent::RoundSettled { round_id } => {
                out.push(TAG_ROUND_SETTLED);
                out.extend_from_slice(&round_id.to_le_bytes());
            }
            WalEvent::StreamOpened { spec } => {
                out.push(TAG_STREAM_OPENED);
                let json = serde_json::to_string(spec).expect("spec serializes");
                out.extend_from_slice(&(json.len() as u32).to_le_bytes());
                out.extend_from_slice(json.as_bytes());
            }
            WalEvent::StreamArrival {
                round_id,
                worker,
                nonce,
                expires_at_ms,
                bid,
                signature,
                accepted,
                payment,
            } => {
                out.push(TAG_STREAM_ARRIVAL);
                out.extend_from_slice(&round_id.to_le_bytes());
                out.extend_from_slice(&worker.0.to_le_bytes());
                out.extend_from_slice(&nonce.to_le_bytes());
                out.extend_from_slice(&expires_at_ms.to_le_bytes());
                out.extend_from_slice(&bid.price().tenths().to_le_bytes());
                let tasks = bid.bundle().as_slice();
                out.extend_from_slice(&(tasks.len() as u32).to_le_bytes());
                for task in tasks {
                    out.extend_from_slice(&task.0.to_le_bytes());
                }
                out.extend_from_slice(signature);
                out.push(u8::from(*accepted));
                out.extend_from_slice(&payment.tenths().to_le_bytes());
            }
            WalEvent::StreamClosed { round_id } => {
                out.push(TAG_STREAM_CLOSED);
                out.extend_from_slice(&round_id.to_le_bytes());
            }
            WalEvent::StreamAborted { round_id } => {
                out.push(TAG_STREAM_ABORTED);
                out.extend_from_slice(&round_id.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a WAL frame payload.
    ///
    /// # Errors
    ///
    /// A description of the first structural problem (unknown tag,
    /// truncation, trailing bytes, undecodable spec).
    pub fn decode(bytes: &[u8]) -> Result<WalEvent, String> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let event = match tag {
            TAG_ROUND_OPENED => {
                let len = r.u32()? as usize;
                let json = std::str::from_utf8(r.take(len)?)
                    .map_err(|e| format!("spec is not UTF-8: {e}"))?;
                let spec: RoundSpec =
                    serde_json::from_str(json).map_err(|e| format!("spec does not parse: {e}"))?;
                WalEvent::RoundOpened { spec }
            }
            TAG_BID_ADMITTED => {
                let round_id = r.u64()?;
                let worker = WorkerId(r.u32()?);
                let nonce = r.u64()?;
                let expires_at_ms = r.u64()?;
                let price = Price::from_tenths(r.i64()?);
                let task_count = r.u32()? as usize;
                if task_count > bytes.len() {
                    return Err(format!("bundle claims {task_count} tasks"));
                }
                let mut tasks = Vec::with_capacity(task_count);
                for _ in 0..task_count {
                    tasks.push(TaskId(r.u32()?));
                }
                let signature: [u8; 64] = r.take(64)?.try_into().expect("64 bytes");
                WalEvent::BidAdmitted {
                    round_id,
                    worker,
                    nonce,
                    expires_at_ms,
                    bid: Bid::new(Bundle::new(tasks), price),
                    signature,
                }
            }
            TAG_AUCTION_COMMITTED => {
                let round_id = r.u64()?;
                let seed = r.u64()?;
                let price = Price::from_tenths(r.i64()?);
                let count = r.u32()? as usize;
                if count > bytes.len() {
                    return Err(format!("winner list claims {count} entries"));
                }
                let mut winners = Vec::with_capacity(count);
                for _ in 0..count {
                    winners.push(WorkerId(r.u32()?));
                }
                WalEvent::AuctionCommitted {
                    round_id,
                    seed,
                    price,
                    winners,
                }
            }
            TAG_PAYMENT_ISSUED => WalEvent::PaymentIssued {
                round_id: r.u64()?,
                worker: WorkerId(r.u32()?),
                amount: Price::from_tenths(r.i64()?),
            },
            TAG_ROUND_ABORTED => {
                let round_id = r.u64()?;
                let reason = match r.u8()? {
                    0 => AbortReason::Requested,
                    1 => AbortReason::RecoveredInFlight,
                    other => return Err(format!("unknown abort reason {other}")),
                };
                WalEvent::RoundAborted { round_id, reason }
            }
            TAG_ROUND_SETTLED => WalEvent::RoundSettled { round_id: r.u64()? },
            TAG_STREAM_OPENED => {
                let len = r.u32()? as usize;
                let json = std::str::from_utf8(r.take(len)?)
                    .map_err(|e| format!("stream spec is not UTF-8: {e}"))?;
                let spec: StreamSpec = serde_json::from_str(json)
                    .map_err(|e| format!("stream spec does not parse: {e}"))?;
                WalEvent::StreamOpened { spec }
            }
            TAG_STREAM_ARRIVAL => {
                let round_id = r.u64()?;
                let worker = WorkerId(r.u32()?);
                let nonce = r.u64()?;
                let expires_at_ms = r.u64()?;
                let price = Price::from_tenths(r.i64()?);
                let task_count = r.u32()? as usize;
                if task_count > bytes.len() {
                    return Err(format!("bundle claims {task_count} tasks"));
                }
                let mut tasks = Vec::with_capacity(task_count);
                for _ in 0..task_count {
                    tasks.push(TaskId(r.u32()?));
                }
                let signature: [u8; 64] = r.take(64)?.try_into().expect("64 bytes");
                let accepted = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(format!("bad accepted flag {other}")),
                };
                let payment = Price::from_tenths(r.i64()?);
                WalEvent::StreamArrival {
                    round_id,
                    worker,
                    nonce,
                    expires_at_ms,
                    bid: Bid::new(Bundle::new(tasks), price),
                    signature,
                    accepted,
                    payment,
                }
            }
            TAG_STREAM_CLOSED => WalEvent::StreamClosed { round_id: r.u64()? },
            TAG_STREAM_ABORTED => WalEvent::StreamAborted { round_id: r.u64()? },
            other => return Err(format!("unknown event tag {other}")),
        };
        r.finish()?;
        Ok(event)
    }
}

// ---------------------------------------------------------------------------
// Wire-facing results

/// One payment the platform made (or owes) to a worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaymentRecord {
    /// The paid worker.
    pub worker: WorkerId,
    /// The amount.
    pub amount: Price,
}

/// The durable result of committing a round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommitReceipt {
    /// The committed round.
    pub round_id: u64,
    /// The sampled clearing price.
    pub price: Price,
    /// Winning workers, by roster identity, ascending.
    pub winners: Vec<WorkerId>,
    /// One record per winner, in winner order.
    pub payments: Vec<PaymentRecord>,
    /// LSN of the settling frame — everything at or below it is durable.
    pub lsn: u64,
    /// `true` when the round was already committed and this receipt is a
    /// replay of the recorded result (idempotent commit).
    pub already_committed: bool,
}

/// A point-in-time view of one round, as served over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStatusView {
    /// The round.
    pub round_id: u64,
    /// `"open"`, `"committed"`, `"settled"`, or `"aborted"`.
    pub phase: String,
    /// Bids admitted so far.
    pub bids_admitted: usize,
    /// Winners, once committed (empty before).
    pub winners: Vec<WorkerId>,
    /// Sum of payments issued so far.
    pub total_paid: Price,
}

// ---------------------------------------------------------------------------
// Errors

/// Why a durable-round request was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundError {
    /// The bid envelope failed an admission check.
    Envelope(EnvelopeError),
    /// No round with this id exists.
    UnknownRound(u64),
    /// A round with this id already exists (ids are never reused).
    DuplicateRound(u64),
    /// The round exists but its phase forbids the operation.
    RoundClosed {
        /// The round.
        round_id: u64,
        /// The phase it is in.
        phase: String,
    },
    /// The round specification failed validation.
    InvalidSpec(String),
    /// The auction could not produce an outcome (e.g. no feasible price).
    Infeasible(String),
    /// The write-ahead log failed underneath the operation.
    Wal(WalError),
}

impl RoundError {
    /// Stable snake_case rejection code carried on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            RoundError::Envelope(e) => e.code(),
            RoundError::UnknownRound(_) => "unknown_round",
            RoundError::DuplicateRound(_) => "duplicate_round",
            RoundError::RoundClosed { .. } => "round_closed",
            RoundError::InvalidSpec(_) => "invalid_spec",
            RoundError::Infeasible(_) => "infeasible",
            RoundError::Wal(_) => "wal",
        }
    }
}

impl fmt::Display for RoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoundError::Envelope(e) => write!(f, "{e}"),
            RoundError::UnknownRound(id) => write!(f, "round {id} does not exist"),
            RoundError::DuplicateRound(id) => write!(f, "round {id} already exists"),
            RoundError::RoundClosed { round_id, phase } => {
                write!(f, "round {round_id} is {phase}")
            }
            RoundError::InvalidSpec(msg) => write!(f, "invalid round spec: {msg}"),
            RoundError::Infeasible(msg) => write!(f, "auction infeasible: {msg}"),
            RoundError::Wal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RoundError {}

impl From<EnvelopeError> for RoundError {
    fn from(e: EnvelopeError) -> Self {
        RoundError::Envelope(e)
    }
}

impl From<WalError> for RoundError {
    fn from(e: WalError) -> Self {
        RoundError::Wal(e)
    }
}

// ---------------------------------------------------------------------------
// The in-memory ledger (a pure fold over events)

/// One bid after admission.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmittedBid {
    /// The bidding worker.
    pub worker: WorkerId,
    /// The bid.
    pub bid: Bid,
    /// The envelope nonce.
    pub nonce: u64,
    /// The envelope expiry (Unix ms).
    pub expires_at_ms: u64,
    /// The verified signature.
    pub signature: [u8; 64],
}

#[derive(Debug, Clone, PartialEq)]
enum Phase {
    Open,
    Committed {
        seed: u64,
        price: Price,
        winners: Vec<WorkerId>,
        paid: BTreeMap<u32, Price>,
    },
    Settled {
        seed: u64,
        receipt: CommitReceipt,
    },
    Aborted {
        reason: AbortReason,
    },
}

impl Phase {
    /// Projects the payload-carrying variant onto the shared round
    /// lifecycle. All legality questions (wire names, which transitions
    /// the fold may take) are answered by that machine, so the ledger
    /// cannot drift from the simulator's definition of a round.
    fn lifecycle(&self) -> LifecyclePhase {
        match self {
            Phase::Open => LifecyclePhase::Open,
            Phase::Committed { .. } => LifecyclePhase::Committed,
            Phase::Settled { .. } => LifecyclePhase::Settled,
            Phase::Aborted { .. } => LifecyclePhase::Aborted,
        }
    }

    fn name(&self) -> &'static str {
        self.lifecycle().name()
    }

    /// Whether the shared lifecycle admits the transition `self → to`.
    fn may_advance_to(&self, to: LifecyclePhase) -> bool {
        self.lifecycle().can_advance_to(to)
    }
}

/// One round's full state.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundState {
    spec: RoundSpec,
    bids: Vec<AdmittedBid>,
    nonces: BTreeSet<(u32, u64)>,
    phase: Phase,
}

impl RoundState {
    /// The round's specification.
    pub fn spec(&self) -> &RoundSpec {
        &self.spec
    }

    /// Bids admitted so far, in admission order.
    pub fn bids(&self) -> &[AdmittedBid] {
        &self.bids
    }

    /// The wire view of this round.
    pub fn view(&self) -> RoundStatusView {
        let (winners, total_paid) = match &self.phase {
            Phase::Open | Phase::Aborted { .. } => (Vec::new(), Price::ZERO),
            Phase::Committed { winners, paid, .. } => (
                winners.clone(),
                Price::from_tenths(paid.values().map(|p| p.tenths()).sum()),
            ),
            Phase::Settled { receipt, .. } => (
                receipt.winners.clone(),
                Price::from_tenths(receipt.payments.iter().map(|p| p.amount.tenths()).sum()),
            ),
        };
        RoundStatusView {
            round_id: self.spec.round_id,
            phase: self.phase.name().to_string(),
            bids_admitted: self.bids.len(),
            winners,
            total_paid,
        }
    }
}

/// The platform's round state, reconstructed by folding WAL events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    rounds: BTreeMap<u64, RoundState>,
    streams: BTreeMap<u64, StreamSession>,
}

impl Ledger {
    /// A round's state, if the round exists.
    pub fn round(&self, round_id: u64) -> Option<&RoundState> {
        self.rounds.get(&round_id)
    }

    /// A stream's session, if the stream exists.
    pub fn stream(&self, round_id: u64) -> Option<&StreamSession> {
        self.streams.get(&round_id)
    }

    /// Rounds that are open or committed-but-unsettled.
    pub fn live_rounds(&self) -> usize {
        self.rounds
            .values()
            .filter(|r| matches!(r.phase, Phase::Open | Phase::Committed { .. }))
            .count()
    }

    /// Streams still accepting arrivals.
    pub fn live_streams(&self) -> usize {
        self.streams.values().filter(|s| s.is_streaming()).count()
    }

    /// Total rounds ever seen (any phase).
    pub fn total_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total streams ever seen (any phase).
    pub fn total_streams(&self) -> usize {
        self.streams.len()
    }

    fn sequence_error(lsn: u64, detail: String) -> WalError {
        WalError::InvalidSequence { lsn, detail }
    }

    /// Folds one event into the state.
    ///
    /// # Errors
    ///
    /// [`WalError::InvalidSequence`] when the event is illegal in the
    /// current state; the state is unchanged in that case.
    pub fn apply(&mut self, event: &WalEvent, lsn: u64) -> Result<(), WalError> {
        let err = |detail: String| Err(Self::sequence_error(lsn, detail));
        match event {
            WalEvent::RoundOpened { spec } => {
                if self.rounds.contains_key(&spec.round_id)
                    || self.streams.contains_key(&spec.round_id)
                {
                    return err(format!("round {} reopened", spec.round_id));
                }
                self.rounds.insert(
                    spec.round_id,
                    RoundState {
                        spec: spec.clone(),
                        bids: Vec::new(),
                        nonces: BTreeSet::new(),
                        phase: Phase::Open,
                    },
                );
            }
            WalEvent::BidAdmitted {
                round_id,
                worker,
                nonce,
                expires_at_ms,
                bid,
                signature,
            } => {
                let Some(round) = self.rounds.get_mut(round_id) else {
                    return err(format!("bid for unknown round {round_id}"));
                };
                if !matches!(round.phase, Phase::Open) {
                    return err(format!("bid for {} round {round_id}", round.phase.name()));
                }
                if round.spec.roster_entry(*worker).is_none() {
                    return err(format!("bid from worker {} not on the roster", worker.0));
                }
                if round.bids.iter().any(|b| b.worker == *worker) {
                    return err(format!("second bid from worker {}", worker.0));
                }
                if !round.nonces.insert((worker.0, *nonce)) {
                    return err(format!("replayed nonce {nonce} from worker {}", worker.0));
                }
                round.bids.push(AdmittedBid {
                    worker: *worker,
                    bid: bid.clone(),
                    nonce: *nonce,
                    expires_at_ms: *expires_at_ms,
                    signature: *signature,
                });
            }
            WalEvent::AuctionCommitted {
                round_id,
                seed,
                price,
                winners,
            } => {
                let Some(round) = self.rounds.get_mut(round_id) else {
                    return err(format!("commit of unknown round {round_id}"));
                };
                if !round.phase.may_advance_to(LifecyclePhase::Committed) {
                    return err(format!("commit of {} round {round_id}", round.phase.name()));
                }
                round.phase = Phase::Committed {
                    seed: *seed,
                    price: *price,
                    winners: winners.clone(),
                    paid: BTreeMap::new(),
                };
            }
            WalEvent::PaymentIssued {
                round_id,
                worker,
                amount,
            } => {
                let Some(round) = self.rounds.get_mut(round_id) else {
                    return err(format!("payment in unknown round {round_id}"));
                };
                let Phase::Committed { winners, paid, .. } = &mut round.phase else {
                    return err(format!(
                        "payment in {} round {round_id}",
                        round.phase.name()
                    ));
                };
                if !winners.contains(worker) {
                    return err(format!("payment to non-winner {}", worker.0));
                }
                if paid.contains_key(&worker.0) {
                    return err(format!("double payment to worker {}", worker.0));
                }
                paid.insert(worker.0, *amount);
            }
            WalEvent::RoundAborted { round_id, reason } => {
                let Some(round) = self.rounds.get_mut(round_id) else {
                    return err(format!("abort of unknown round {round_id}"));
                };
                // The shared machine rules out aborting a committed round:
                // its payments are already durable.
                if !round.phase.may_advance_to(LifecyclePhase::Aborted) {
                    return err(format!("abort of {} round {round_id}", round.phase.name()));
                }
                round.phase = Phase::Aborted { reason: *reason };
            }
            WalEvent::RoundSettled { round_id } => {
                let Some(round) = self.rounds.get_mut(round_id) else {
                    return err(format!("settle of unknown round {round_id}"));
                };
                // `Settled` is reachable only from `Committed` in the
                // shared lifecycle, so the guard and the payload
                // destructure are one check.
                if !round.phase.may_advance_to(LifecyclePhase::Settled) {
                    return err(format!("settle of {} round {round_id}", round.phase.name()));
                }
                let Phase::Committed {
                    seed,
                    price,
                    winners,
                    paid,
                } = &round.phase
                else {
                    return err(format!("settle of {} round {round_id}", round.phase.name()));
                };
                if let Some(unpaid) = winners.iter().find(|w| !paid.contains_key(&w.0)) {
                    return err(format!("settle with winner {} unpaid", unpaid.0));
                }
                let receipt = CommitReceipt {
                    round_id: *round_id,
                    price: *price,
                    winners: winners.clone(),
                    payments: winners
                        .iter()
                        .map(|w| PaymentRecord {
                            worker: *w,
                            amount: paid[&w.0],
                        })
                        .collect(),
                    lsn,
                    already_committed: false,
                };
                round.phase = Phase::Settled {
                    seed: *seed,
                    receipt,
                };
            }
            WalEvent::StreamOpened { spec } => {
                let id = spec.round.round_id;
                if self.rounds.contains_key(&id) || self.streams.contains_key(&id) {
                    return err(format!("stream {id} reopened"));
                }
                self.streams.insert(id, StreamSession::new(spec.clone()));
            }
            WalEvent::StreamArrival {
                round_id,
                worker,
                nonce,
                expires_at_ms,
                bid,
                signature,
                accepted,
                payment,
            } => {
                let Some(stream) = self.streams.get(round_id) else {
                    return err(format!("arrival for unknown stream {round_id}"));
                };
                stream
                    .check_admissible(*worker, *nonce)
                    .map_err(|e| Self::sequence_error(lsn, format!("stream arrival: {e}")))?;
                // Replay the deterministic decision and hold the log to it:
                // a frame that disagrees with the fold is corruption (or
                // tampering), not state.
                let decision = stream
                    .evaluate(*worker, bid)
                    .map_err(|e| Self::sequence_error(lsn, format!("stream arrival: {e}")))?;
                if decision.accepted != *accepted || decision.payment != *payment {
                    return err(format!(
                        "stream {round_id} arrival of worker {} replays as \
                         (accepted={}, payment={}) but the log recorded \
                         (accepted={accepted}, payment={payment})",
                        worker.0, decision.accepted, decision.payment,
                    ));
                }
                self.streams
                    .get_mut(round_id)
                    .expect("stream fetched above")
                    .apply_arrival(
                        *worker,
                        *nonce,
                        *expires_at_ms,
                        bid.clone(),
                        *signature,
                        &decision,
                    );
            }
            WalEvent::StreamClosed { round_id } => {
                let Some(stream) = self.streams.get_mut(round_id) else {
                    return err(format!("close of unknown stream {round_id}"));
                };
                stream
                    .close()
                    .map_err(|e| Self::sequence_error(lsn, format!("stream close: {e}")))?;
            }
            WalEvent::StreamAborted { round_id } => {
                let Some(stream) = self.streams.get_mut(round_id) else {
                    return err(format!("abort of unknown stream {round_id}"));
                };
                stream
                    .abort()
                    .map_err(|e| Self::sequence_error(lsn, format!("stream abort: {e}")))?;
            }
        }
        Ok(())
    }

    /// Re-expresses the whole state as an event stream (what the
    /// snapshot stores; folding it from empty reproduces `self` up to
    /// receipt LSNs).
    pub fn to_events(&self) -> Vec<WalEvent> {
        let mut out = Vec::new();
        for (&round_id, round) in &self.rounds {
            out.push(WalEvent::RoundOpened {
                spec: round.spec.clone(),
            });
            for bid in &round.bids {
                out.push(WalEvent::BidAdmitted {
                    round_id,
                    worker: bid.worker,
                    nonce: bid.nonce,
                    expires_at_ms: bid.expires_at_ms,
                    bid: bid.bid.clone(),
                    signature: bid.signature,
                });
            }
            match &round.phase {
                Phase::Open => {}
                Phase::Committed {
                    seed,
                    price,
                    winners,
                    paid,
                } => {
                    out.push(WalEvent::AuctionCommitted {
                        round_id,
                        seed: *seed,
                        price: *price,
                        winners: winners.clone(),
                    });
                    for (&worker, &amount) in paid {
                        out.push(WalEvent::PaymentIssued {
                            round_id,
                            worker: WorkerId(worker),
                            amount,
                        });
                    }
                }
                Phase::Settled { seed, receipt } => {
                    out.push(WalEvent::AuctionCommitted {
                        round_id,
                        seed: *seed,
                        price: receipt.price,
                        winners: receipt.winners.clone(),
                    });
                    for payment in &receipt.payments {
                        out.push(WalEvent::PaymentIssued {
                            round_id,
                            worker: payment.worker,
                            amount: payment.amount,
                        });
                    }
                    out.push(WalEvent::RoundSettled { round_id });
                }
                Phase::Aborted { reason } => {
                    out.push(WalEvent::RoundAborted {
                        round_id,
                        reason: *reason,
                    });
                }
            }
        }
        for (&round_id, stream) in &self.streams {
            out.push(WalEvent::StreamOpened {
                spec: stream.spec().clone(),
            });
            for (worker, nonce, expires_at_ms, bid, signature, accepted, payment) in
                stream.arrival_events()
            {
                out.push(WalEvent::StreamArrival {
                    round_id,
                    worker,
                    nonce,
                    expires_at_ms,
                    bid,
                    signature,
                    accepted,
                    payment,
                });
            }
            match stream.phase_name() {
                "streaming" => {}
                "closed" => out.push(WalEvent::StreamClosed { round_id }),
                _ => out.push(WalEvent::StreamAborted { round_id }),
            }
        }
        out
    }

    /// Serializes the state for a snapshot payload.
    pub fn encode_snapshot(&self) -> Vec<u8> {
        let events = self.to_events();
        let mut out = Vec::new();
        out.extend_from_slice(&(events.len() as u32).to_le_bytes());
        for event in &events {
            let bytes = event.encode();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Rebuilds a ledger from a snapshot payload.
    ///
    /// # Errors
    ///
    /// [`WalError::BadSnapshot`] on structural damage and
    /// [`WalError::InvalidSequence`] (with `lsn = 0`) if the decoded
    /// events do not fold cleanly.
    pub fn decode_snapshot(bytes: &[u8]) -> Result<Ledger, WalError> {
        let mut r = Reader::new(bytes);
        let bad = |msg: String| WalError::BadSnapshot(msg);
        let count = r.u32().map_err(bad)? as usize;
        let mut ledger = Ledger::default();
        for _ in 0..count {
            let len = r.u32().map_err(bad)? as usize;
            let event_bytes = r.take(len).map_err(bad)?;
            let event = WalEvent::decode(event_bytes).map_err(bad)?;
            ledger.apply(&event, 0)?;
        }
        r.finish().map_err(bad)?;
        Ok(ledger)
    }
}

// ---------------------------------------------------------------------------
// Durability configuration

/// When the WAL is fsync'd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// After every appended event — strongest guarantee; admitted bids
    /// survive a crash too.
    Always,
    /// Only at commit points (`AuctionCommitted`, payments, aborts).
    /// Admitted-but-uncommitted bids may be lost in a crash, which is
    /// safe: the round recovers as aborted and no ack promised more.
    CommitOnly,
}

/// Where and how durable state is kept.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `snapshot.bin` (created if absent).
    pub dir: PathBuf,
    /// Fsync policy for non-commit events.
    pub fsync: FsyncPolicy,
    /// Rotate the log into a snapshot once it holds this many frames.
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// A config with [`FsyncPolicy::Always`] and snapshot every 256
    /// frames.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 256,
        }
    }
}

/// What recovery found and did while opening a [`DurableLedger`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN covered by the snapshot that seeded replay (`None` if no
    /// snapshot existed).
    pub snapshot_lsn: Option<u64>,
    /// WAL frames replayed on top of the snapshot.
    pub replayed_frames: u64,
    /// Invalid tail bytes physically truncated from the log.
    pub truncated_tail_bytes: u64,
    /// Rounds that were live (open or committed) at the crash.
    pub recovered_rounds: u64,
    /// Open rounds recovery aborted (no commit on disk → no obligation).
    pub aborted_in_flight: u64,
    /// Missing payments recovery issued for committed rounds.
    pub completed_payments: u64,
    /// Streaming sessions found live and resumed in place. Unlike open
    /// rounds, a stream is *not* aborted on recovery: every decided
    /// arrival was acked (accepted ones fsync'd), so the session fold
    /// reconstructs the exact pre-crash state and keeps streaming.
    pub resumed_streams: u64,
}

// ---------------------------------------------------------------------------
// The durable ledger

/// The [`Ledger`] plus its write-ahead log: every mutation is validated,
/// appended to the WAL, fsync'd per policy, and only then folded into
/// memory — so the in-memory state never runs ahead of what recovery
/// could rebuild.
pub struct DurableLedger {
    ledger: Ledger,
    wal: WalWriter,
    dir: PathBuf,
    fsync: FsyncPolicy,
    snapshot_every: u64,
    snapshot_lsn: u64,
    recovery: RecoveryReport,
    rotated_frames: u64,
    rotated_fsyncs: u64,
}

impl DurableLedger {
    /// Opens (or creates) the durable state in `config.dir`, running
    /// full crash recovery: snapshot load, torn-tail truncation, replay,
    /// payment roll-forward, and in-flight-round abort.
    ///
    /// # Errors
    ///
    /// Any [`WalError`]; damage beyond a torn tail (bad magic, corrupt
    /// snapshot, events that do not fold) is surfaced, never papered
    /// over.
    pub fn open(config: &DurabilityConfig) -> Result<DurableLedger, WalError> {
        std::fs::create_dir_all(&config.dir)?;
        let (mut ledger, snapshot_lsn) = match wal::read_snapshot(&config.dir)? {
            Some((lsn, payload)) => (Ledger::decode_snapshot(&payload)?, Some(lsn)),
            None => (Ledger::default(), None),
        };
        let base = snapshot_lsn.unwrap_or(0) + 1;
        let wal_path = config.dir.join(WAL_FILE);
        let (mut wal, scan, mode) = WalWriter::open_recovering(&wal_path, base)?;
        let mut report = RecoveryReport {
            snapshot_lsn,
            truncated_tail_bytes: match mode {
                WalOpenMode::Created => 0,
                WalOpenMode::Recovered { truncated_bytes } => truncated_bytes,
            },
            ..RecoveryReport::default()
        };
        for frame in &scan.frames {
            if frame.lsn <= snapshot_lsn.unwrap_or(0) {
                // A crash between snapshot rename and log rotation leaves
                // frames the snapshot already covers; skip them.
                continue;
            }
            let event = WalEvent::decode(&frame.payload).map_err(|detail| WalError::BadEvent {
                lsn: frame.lsn,
                detail,
            })?;
            ledger.apply(&event, frame.lsn)?;
            report.replayed_frames += 1;
        }
        report.recovered_rounds = ledger.live_rounds() as u64;

        // Roll forward: a committed round is an obligation. Issue every
        // missing payment at the committed price, then settle.
        let committed: Vec<u64> = ledger
            .rounds
            .iter()
            .filter(|(_, r)| matches!(r.phase, Phase::Committed { .. }))
            .map(|(&id, _)| id)
            .collect();
        for round_id in committed {
            report.completed_payments += Self::settle_committed(&mut ledger, &mut wal, round_id)?;
        }

        // Abort what was still open: no commit on disk means no client
        // ever saw an ack, so the round carries no obligation.
        let open: Vec<u64> = ledger
            .rounds
            .iter()
            .filter(|(_, r)| matches!(r.phase, Phase::Open))
            .map(|(&id, _)| id)
            .collect();
        for round_id in &open {
            let event = WalEvent::RoundAborted {
                round_id: *round_id,
                reason: AbortReason::RecoveredInFlight,
            };
            let lsn = wal.append(&event.encode())?;
            ledger.apply(&event, lsn)?;
        }
        report.aborted_in_flight = open.len() as u64;
        report.resumed_streams = ledger.live_streams() as u64;
        wal.sync()?;

        Ok(DurableLedger {
            ledger,
            wal,
            dir: config.dir.clone(),
            fsync: config.fsync,
            snapshot_every: config.snapshot_every.max(1),
            snapshot_lsn: snapshot_lsn.unwrap_or(0),
            recovery: report,
            rotated_frames: 0,
            rotated_fsyncs: 0,
        })
    }

    /// Appends every missing `PaymentIssued` for a committed round and
    /// settles it, returning how many payments were issued. Shared by
    /// recovery roll-forward and the normal commit path.
    fn settle_committed(
        ledger: &mut Ledger,
        wal: &mut WalWriter,
        round_id: u64,
    ) -> Result<u64, WalError> {
        let round = ledger.rounds.get(&round_id).ok_or_else(|| {
            Ledger::sequence_error(
                wal.next_lsn(),
                format!("settle of unknown round {round_id}"),
            )
        })?;
        let Phase::Committed {
            price,
            winners,
            paid,
            ..
        } = &round.phase
        else {
            return Err(Ledger::sequence_error(
                wal.next_lsn(),
                format!("settle of {} round {round_id}", round.phase.name()),
            ));
        };
        let price = *price;
        let missing: Vec<WorkerId> = winners
            .iter()
            .filter(|w| !paid.contains_key(&w.0))
            .copied()
            .collect();
        let mut issued = 0;
        for worker in missing {
            let event = WalEvent::PaymentIssued {
                round_id,
                worker,
                amount: price,
            };
            let lsn = wal.append(&event.encode())?;
            ledger.apply(&event, lsn)?;
            issued += 1;
        }
        let event = WalEvent::RoundSettled { round_id };
        let lsn = wal.append(&event.encode())?;
        ledger.apply(&event, lsn)?;
        Ok(issued)
    }

    fn sync_if(&mut self, commit_point: bool) -> Result<(), WalError> {
        if commit_point || self.fsync == FsyncPolicy::Always {
            self.wal.sync()?;
        }
        Ok(())
    }

    /// Opens a new round.
    ///
    /// # Errors
    ///
    /// [`RoundError::InvalidSpec`], [`RoundError::DuplicateRound`], or a
    /// wrapped [`WalError`].
    pub fn open_round(&mut self, spec: RoundSpec) -> Result<u64, RoundError> {
        spec.validate()?;
        if self.ledger.rounds.contains_key(&spec.round_id)
            || self.ledger.streams.contains_key(&spec.round_id)
        {
            return Err(RoundError::DuplicateRound(spec.round_id));
        }
        let event = WalEvent::RoundOpened { spec };
        let lsn = self.wal.append(&event.encode())?;
        self.sync_if(false)?;
        self.ledger.apply(&event, lsn)?;
        Ok(lsn)
    }

    /// Admits one signed bid: roster membership, nonce replay window,
    /// one-bid-per-worker, expiry, and ed25519 signature are all
    /// checked, in that order, before the WAL write — and the WAL write
    /// happens before the caller gets its ack.
    ///
    /// # Errors
    ///
    /// [`RoundError::Envelope`] for every admission failure (the inner
    /// [`EnvelopeError`] says which check), [`RoundError::UnknownRound`]
    /// / [`RoundError::RoundClosed`] for bad targeting, or a wrapped
    /// [`WalError`].
    pub fn submit_bid(&mut self, envelope: &BidEnvelope, now_ms: u64) -> Result<u64, RoundError> {
        let round = self
            .ledger
            .rounds
            .get(&envelope.round_id)
            .ok_or(RoundError::UnknownRound(envelope.round_id))?;
        if !matches!(round.phase, Phase::Open) {
            return Err(RoundError::RoundClosed {
                round_id: envelope.round_id,
                phase: round.phase.name().to_string(),
            });
        }
        let entry = round
            .spec
            .roster_entry(envelope.worker)
            .ok_or(RoundError::Envelope(EnvelopeError::UnknownWorker(
                envelope.worker,
            )))?;
        // The replay window is checked before one-bid-per-worker so a
        // captured-and-resent envelope reports as the replay it is.
        if round.nonces.contains(&(envelope.worker.0, envelope.nonce)) {
            return Err(EnvelopeError::ReplayedNonce {
                worker: envelope.worker,
                nonce: envelope.nonce,
            }
            .into());
        }
        if round.bids.iter().any(|b| b.worker == envelope.worker) {
            return Err(EnvelopeError::DuplicateBid(envelope.worker).into());
        }
        let key = decode_public_key(&entry.public_key)?;
        envelope.verify(&key, now_ms)?;
        let event = WalEvent::BidAdmitted {
            round_id: envelope.round_id,
            worker: envelope.worker,
            nonce: envelope.nonce,
            expires_at_ms: envelope.expires_at_ms,
            bid: envelope.bid.clone(),
            signature: envelope.signature_bytes()?,
        };
        let lsn = self.wal.append(&event.encode())?;
        self.sync_if(false)?;
        self.ledger.apply(&event, lsn)?;
        Ok(lsn)
    }

    /// Commits a round: runs the DP-hSRC auction over the admitted bids,
    /// fsyncs the `AuctionCommitted` frame (the commit point), then
    /// issues and settles every payment. Committing an already-settled
    /// round is idempotent — the recorded receipt is returned with
    /// `already_committed = true` and nothing is re-run or re-paid,
    /// whatever seed is passed.
    ///
    /// # Errors
    ///
    /// [`RoundError::Infeasible`] when the auction has no outcome (the
    /// round stays open), [`RoundError::UnknownRound`] /
    /// [`RoundError::RoundClosed`], or a wrapped [`WalError`].
    pub fn commit_round(&mut self, round_id: u64, seed: u64) -> Result<CommitReceipt, RoundError> {
        let round = self
            .ledger
            .rounds
            .get(&round_id)
            .ok_or(RoundError::UnknownRound(round_id))?;
        match &round.phase {
            Phase::Settled { receipt, .. } => {
                let mut receipt = receipt.clone();
                receipt.already_committed = true;
                return Ok(receipt);
            }
            Phase::Aborted { .. } => {
                return Err(RoundError::RoundClosed {
                    round_id,
                    phase: round.phase.name().to_string(),
                });
            }
            Phase::Committed { .. } => {
                // Only reachable if a previous commit failed between the
                // commit point and settlement without crashing; finish
                // the obligation now.
                Self::settle_committed(&mut self.ledger, &mut self.wal, round_id)?;
                self.sync_if(true)?;
                return self.commit_round(round_id, seed);
            }
            Phase::Open => {}
        }

        let (price, winners) = run_auction(&round.spec, &round.bids, seed)?;
        let event = WalEvent::AuctionCommitted {
            round_id,
            seed,
            price,
            winners,
        };
        let lsn = self.wal.append(&event.encode())?;
        // THE commit point: once this fsync returns, the obligation
        // exists and will survive any crash.
        self.wal.sync().map_err(RoundError::Wal)?;
        self.ledger.apply(&event, lsn)?;

        Self::settle_committed(&mut self.ledger, &mut self.wal, round_id)?;
        self.sync_if(true)?;
        self.maybe_snapshot()?;

        match &self
            .ledger
            .rounds
            .get(&round_id)
            .expect("round settled above")
            .phase
        {
            Phase::Settled { receipt, .. } => Ok(receipt.clone()),
            other => Err(RoundError::Wal(Ledger::sequence_error(
                lsn,
                format!("round {round_id} is {} after settling", other.name()),
            ))),
        }
    }

    /// Aborts an open round on request.
    ///
    /// # Errors
    ///
    /// [`RoundError::UnknownRound`], [`RoundError::RoundClosed`] (a
    /// committed round is an obligation and cannot be aborted), or a
    /// wrapped [`WalError`].
    pub fn abort_round(&mut self, round_id: u64) -> Result<u64, RoundError> {
        let round = self
            .ledger
            .rounds
            .get(&round_id)
            .ok_or(RoundError::UnknownRound(round_id))?;
        if !matches!(round.phase, Phase::Open) {
            return Err(RoundError::RoundClosed {
                round_id,
                phase: round.phase.name().to_string(),
            });
        }
        let event = WalEvent::RoundAborted {
            round_id,
            reason: AbortReason::Requested,
        };
        let lsn = self.wal.append(&event.encode())?;
        self.sync_if(true)?;
        self.ledger.apply(&event, lsn)?;
        Ok(lsn)
    }

    /// The wire view of one round.
    pub fn round_status(&self, round_id: u64) -> Option<RoundStatusView> {
        self.ledger.round(round_id).map(RoundState::view)
    }

    /// Opens a streaming session. Streams share the round id namespace,
    /// so the id must be unused by rounds and streams alike.
    ///
    /// # Errors
    ///
    /// [`RoundError::InvalidSpec`], [`RoundError::DuplicateRound`], or a
    /// wrapped [`WalError`].
    pub fn open_stream(&mut self, spec: StreamSpec) -> Result<u64, RoundError> {
        spec.validate()?;
        let id = spec.round.round_id;
        if self.ledger.rounds.contains_key(&id) || self.ledger.streams.contains_key(&id) {
            return Err(RoundError::DuplicateRound(id));
        }
        let event = WalEvent::StreamOpened { spec };
        let lsn = self.wal.append(&event.encode())?;
        self.sync_if(false)?;
        self.ledger.apply(&event, lsn)?;
        Ok(lsn)
    }

    /// Decides one stream arrival: admission checks (phase, roster, nonce
    /// replay window, one arrival per worker), envelope expiry and
    /// ed25519 signature, then the stage-sampling posted-price decision.
    /// An *accepted* arrival's frame is fsync'd before the ack — posting
    /// the payment obligation is the commit point; rejections follow the
    /// configured fsync policy.
    ///
    /// # Errors
    ///
    /// [`RoundError::Envelope`] for admission failures,
    /// [`RoundError::UnknownRound`] / [`RoundError::RoundClosed`] for bad
    /// targeting, [`RoundError::Infeasible`] when the bid cannot form an
    /// instance, or a wrapped [`WalError`].
    pub fn stream_arrival(
        &mut self,
        envelope: &BidEnvelope,
        now_ms: u64,
    ) -> Result<(StreamDecision, u64), RoundError> {
        let stream = self
            .ledger
            .streams
            .get(&envelope.round_id)
            .ok_or(RoundError::UnknownRound(envelope.round_id))?;
        stream.check_admissible(envelope.worker, envelope.nonce)?;
        let entry =
            stream
                .spec()
                .round
                .roster_entry(envelope.worker)
                .ok_or(RoundError::Envelope(EnvelopeError::UnknownWorker(
                    envelope.worker,
                )))?;
        let key = decode_public_key(&entry.public_key)?;
        envelope.verify(&key, now_ms)?;
        let decision = stream.evaluate(envelope.worker, &envelope.bid)?;
        let event = WalEvent::StreamArrival {
            round_id: envelope.round_id,
            worker: envelope.worker,
            nonce: envelope.nonce,
            expires_at_ms: envelope.expires_at_ms,
            bid: envelope.bid.clone(),
            signature: envelope.signature_bytes()?,
            accepted: decision.accepted,
            payment: decision.payment,
        };
        let lsn = self.wal.append(&event.encode())?;
        self.sync_if(decision.accepted)?;
        self.ledger.apply(&event, lsn)?;
        Ok((decision, lsn))
    }

    /// Closes a stream, finalising its accepted set. Closing an
    /// already-closed stream is idempotent — the recorded result comes
    /// back with `already_closed = true`.
    ///
    /// # Errors
    ///
    /// [`RoundError::UnknownRound`], [`RoundError::RoundClosed`] (for an
    /// aborted stream), or a wrapped [`WalError`].
    pub fn close_stream(&mut self, round_id: u64) -> Result<StreamReceipt, RoundError> {
        let stream = self
            .ledger
            .streams
            .get(&round_id)
            .ok_or(RoundError::UnknownRound(round_id))?;
        if stream.is_closed() {
            return Ok(stream.receipt(self.wal.synced_lsn(), true));
        }
        if !stream.is_streaming() {
            return Err(RoundError::RoundClosed {
                round_id,
                phase: stream.phase_name().to_string(),
            });
        }
        let event = WalEvent::StreamClosed { round_id };
        let lsn = self.wal.append(&event.encode())?;
        self.sync_if(true)?;
        self.ledger.apply(&event, lsn)?;
        self.maybe_snapshot()?;
        Ok(self
            .ledger
            .streams
            .get(&round_id)
            .expect("stream closed above")
            .receipt(lsn, false))
    }

    /// Aborts a streaming session on request. Payments already made
    /// stand; the abort only stops further arrivals.
    ///
    /// # Errors
    ///
    /// [`RoundError::UnknownRound`], [`RoundError::RoundClosed`], or a
    /// wrapped [`WalError`].
    pub fn abort_stream(&mut self, round_id: u64) -> Result<u64, RoundError> {
        let stream = self
            .ledger
            .streams
            .get(&round_id)
            .ok_or(RoundError::UnknownRound(round_id))?;
        if !stream.is_streaming() {
            return Err(RoundError::RoundClosed {
                round_id,
                phase: stream.phase_name().to_string(),
            });
        }
        let event = WalEvent::StreamAborted { round_id };
        let lsn = self.wal.append(&event.encode())?;
        self.sync_if(true)?;
        self.ledger.apply(&event, lsn)?;
        Ok(lsn)
    }

    /// The wire view of one stream.
    pub fn stream_status(&self, round_id: u64) -> Option<StreamStatusView> {
        self.ledger.stream(round_id).map(StreamSession::view)
    }

    /// What recovery found and did when this ledger opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The in-memory state (read-only).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Frames appended since open (across log rotations).
    pub fn wal_frames(&self) -> u64 {
        self.rotated_frames + self.wal.frames_written()
    }

    /// Fsyncs performed since open (across log rotations).
    pub fn wal_fsyncs(&self) -> u64 {
        self.rotated_fsyncs + self.wal.fsyncs()
    }

    /// Highest LSN known to be on stable storage.
    pub fn synced_lsn(&self) -> u64 {
        self.wal.synced_lsn()
    }

    /// Current size of `wal.log` in bytes.
    pub fn wal_size_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// Rotates the log into a snapshot if it has grown past the
    /// configured frame count.
    fn maybe_snapshot(&mut self) -> Result<(), RoundError> {
        let frames_in_log = self.wal.next_lsn().saturating_sub(self.snapshot_lsn + 1);
        if frames_in_log >= self.snapshot_every {
            self.force_snapshot()?;
        }
        Ok(())
    }

    /// Writes a snapshot of the current state and starts a fresh log.
    ///
    /// Crash-safe at every step: the snapshot is written atomically, and
    /// replay skips frames the snapshot already covers, so dying between
    /// the snapshot rename and the log reset loses nothing.
    ///
    /// # Errors
    ///
    /// A wrapped [`WalError`] on filesystem failure.
    pub fn force_snapshot(&mut self) -> Result<(), RoundError> {
        self.wal.sync().map_err(RoundError::Wal)?;
        let last = self.wal.synced_lsn();
        wal::write_snapshot(&self.dir, last, &self.ledger.encode_snapshot())?;
        self.rotated_frames += self.wal.frames_written();
        self.rotated_fsyncs += self.wal.fsyncs();
        self.wal = WalWriter::create(&self.dir.join(WAL_FILE), last + 1)?;
        self.snapshot_lsn = last;
        Ok(())
    }
}

/// Runs the DP-hSRC auction for a round over its admitted bids,
/// returning the clearing price and winners by roster identity.
fn run_auction(
    spec: &RoundSpec,
    bids: &[AdmittedBid],
    seed: u64,
) -> Result<(Price, Vec<WorkerId>), RoundError> {
    if bids.is_empty() {
        return Err(RoundError::Infeasible("no admitted bids".to_string()));
    }
    let infeasible = |e: mcs_types::McsError| RoundError::Infeasible(e.to_string());
    // Dense worker indices follow roster-id order for determinism.
    let mut order: Vec<&AdmittedBid> = bids.iter().collect();
    order.sort_by_key(|b| b.worker.0);
    let rows: Vec<Vec<f64>> = order
        .iter()
        .map(|b| {
            spec.roster_entry(b.worker)
                .expect("admission checked the roster")
                .skills
                .clone()
        })
        .collect();
    let instance = Instance::builder(spec.num_tasks)
        .bids(order.iter().map(|b| b.bid.clone()))
        .skills(SkillMatrix::from_rows(rows).map_err(infeasible)?)
        .error_bounds(spec.error_bounds.clone())
        .price_grid(
            PriceGrid::new(spec.price_min, spec.price_max, spec.price_step).map_err(infeasible)?,
        )
        .cost_range(spec.cost_min, spec.cost_max)
        .build()
        .map_err(infeasible)?;
    let pmf = DpHsrcAuction::new(spec.epsilon)
        .map_err(infeasible)?
        .pmf(&instance)
        .map_err(infeasible)?;
    let outcome = pmf.sample(&mut rng::derived(seed, spec.round_id));
    let winners = outcome
        .winners()
        .iter()
        .map(|dense| order[dense.0 as usize].worker)
        .collect();
    Ok((outcome.price(), winners))
}

/// Reconstructs ledger state from raw WAL bytes without touching the
/// filesystem — the pure core the fuzzer and property tests drive.
///
/// # Errors
///
/// The same [`WalError`] taxonomy as [`DurableLedger::open`] (minus
/// I/O): header damage, undecodable events, or an event stream that does
/// not fold.
pub fn recover_from_bytes(bytes: &[u8]) -> Result<(Ledger, wal::WalScan), WalError> {
    let scan = wal::scan_bytes(bytes)?;
    let mut ledger = Ledger::default();
    for frame in &scan.frames {
        let event = WalEvent::decode(&frame.payload).map_err(|detail| WalError::BadEvent {
            lsn: frame.lsn,
            detail,
        })?;
        ledger.apply(&event, frame.lsn)?;
    }
    Ok((ledger, scan))
}

/// Milliseconds since the Unix epoch per the system clock.
pub fn system_now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ed25519::{hex_encode, SigningKey};

    fn key_for(worker: u32) -> SigningKey {
        let mut seed = [0u8; 32];
        seed[..4].copy_from_slice(&worker.to_le_bytes());
        seed[31] = 0xA7;
        SigningKey::from_seed(seed)
    }

    fn spec(round_id: u64, workers: u32) -> RoundSpec {
        RoundSpec {
            round_id,
            num_tasks: 3,
            // Q_j = 2 ln(1/0.8) ≈ 0.45, coverable by a single bidder
            // with q = (2·0.9 − 1)² = 0.64 per bundled task.
            error_bounds: vec![0.8, 0.8, 0.8],
            price_min: Price::from_f64(1.0),
            price_max: Price::from_f64(30.0),
            price_step: Price::from_f64(1.0),
            cost_min: Price::from_f64(1.0),
            cost_max: Price::from_f64(30.0),
            epsilon: 0.5,
            roster: (0..workers)
                .map(|w| RosterEntry {
                    worker: WorkerId(w),
                    public_key: hex_encode(&key_for(w).verifying_key().to_bytes()),
                    skills: vec![0.9, 0.9, 0.9],
                })
                .collect(),
        }
    }

    fn envelope(round_id: u64, worker: u32, nonce: u64) -> BidEnvelope {
        let bid = Bid::new(
            Bundle::new(vec![TaskId(worker % 3), TaskId((worker + 1) % 3)]),
            Price::from_f64(2.0 + f64::from(worker)),
        );
        BidEnvelope::sign(
            round_id,
            WorkerId(worker),
            bid,
            nonce,
            1_000_000,
            &key_for(worker),
        )
    }

    fn stream_spec(round_id: u64, workers: u32, sample_target: usize) -> StreamSpec {
        StreamSpec {
            round: spec(round_id, workers),
            sample_target,
            seed: 11,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mcs-ledger-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn events_round_trip_through_the_codec() {
        let events = vec![
            WalEvent::RoundOpened { spec: spec(4, 2) },
            WalEvent::BidAdmitted {
                round_id: 4,
                worker: WorkerId(1),
                nonce: 99,
                expires_at_ms: 123_456,
                bid: Bid::new(
                    Bundle::new(vec![TaskId(0), TaskId(2)]),
                    Price::from_f64(3.5),
                ),
                signature: [7u8; 64],
            },
            WalEvent::AuctionCommitted {
                round_id: 4,
                seed: 11,
                price: Price::from_f64(5.0),
                winners: vec![WorkerId(0), WorkerId(1)],
            },
            WalEvent::PaymentIssued {
                round_id: 4,
                worker: WorkerId(0),
                amount: Price::from_f64(5.0),
            },
            WalEvent::RoundAborted {
                round_id: 5,
                reason: AbortReason::RecoveredInFlight,
            },
            WalEvent::RoundSettled { round_id: 4 },
            WalEvent::StreamOpened {
                spec: stream_spec(6, 4, 2),
            },
            WalEvent::StreamArrival {
                round_id: 6,
                worker: WorkerId(3),
                nonce: 17,
                expires_at_ms: 654_321,
                bid: Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(4.0)),
                signature: [9u8; 64],
                accepted: true,
                payment: Price::from_f64(6.0),
            },
            WalEvent::StreamClosed { round_id: 6 },
            WalEvent::StreamAborted { round_id: 7 },
        ];
        for event in events {
            let bytes = event.encode();
            assert_eq!(WalEvent::decode(&bytes).expect("decode"), event);
        }
        assert!(WalEvent::decode(&[]).is_err());
        assert!(WalEvent::decode(&[99]).is_err());
        // Trailing garbage after a valid event is rejected.
        let mut bytes = WalEvent::RoundSettled { round_id: 1 }.encode();
        bytes.push(0);
        assert!(WalEvent::decode(&bytes).is_err());
    }

    #[test]
    fn full_round_lifecycle_and_idempotent_commit() {
        let dir = temp_dir("lifecycle");
        let config = DurabilityConfig::new(&dir);
        let mut durable = DurableLedger::open(&config).expect("open");
        assert_eq!(durable.recovery(), &RecoveryReport::default());

        durable.open_round(spec(1, 4)).expect("open round");
        for w in 0..4 {
            durable
                .submit_bid(&envelope(1, w, 100 + u64::from(w)), 0)
                .expect("admit");
        }
        let receipt = durable.commit_round(1, 7).expect("commit");
        assert!(!receipt.already_committed);
        assert_eq!(receipt.payments.len(), receipt.winners.len());
        for p in &receipt.payments {
            assert_eq!(p.amount, receipt.price);
        }
        // Committing again returns the same result, marked as a replay,
        // even under a different seed.
        let again = durable.commit_round(1, 999).expect("recommit");
        assert!(again.already_committed);
        assert_eq!(again.price, receipt.price);
        assert_eq!(again.winners, receipt.winners);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_rejections_are_typed() {
        let dir = temp_dir("admission");
        let mut durable = DurableLedger::open(&DurabilityConfig::new(&dir)).expect("open");
        durable.open_round(spec(1, 2)).expect("open round");

        assert!(matches!(
            durable.submit_bid(&envelope(9, 0, 1), 0),
            Err(RoundError::UnknownRound(9))
        ));
        // Worker 5 is not on the roster.
        let mut outsider = envelope(1, 0, 1);
        outsider.worker = WorkerId(5);
        assert!(matches!(
            durable.submit_bid(&outsider, 0),
            Err(RoundError::Envelope(EnvelopeError::UnknownWorker(
                WorkerId(5)
            )))
        ));
        // Forged: signed by the wrong key (worker 1's envelope relabelled
        // as worker 0).
        let mut forged = envelope(1, 1, 2);
        forged.worker = WorkerId(0);
        assert!(matches!(
            durable.submit_bid(&forged, 0),
            Err(RoundError::Envelope(EnvelopeError::BadSignature(_)))
        ));
        // Expired.
        assert!(matches!(
            durable.submit_bid(&envelope(1, 0, 3), u64::MAX),
            Err(RoundError::Envelope(EnvelopeError::Expired { .. }))
        ));
        // Good bid, then a replay of the exact same envelope (reported
        // as the replay it is, not as a duplicate bid), then a second
        // distinct bid by the same worker (a duplicate, not a replay).
        let good = envelope(1, 0, 4);
        durable.submit_bid(&good, 0).expect("admit");
        assert!(matches!(
            durable.submit_bid(&good, 0),
            Err(RoundError::Envelope(EnvelopeError::ReplayedNonce {
                worker: WorkerId(0),
                nonce: 4,
            }))
        ));
        assert!(matches!(
            durable.submit_bid(&envelope(1, 0, 40), 0),
            Err(RoundError::Envelope(EnvelopeError::DuplicateBid(WorkerId(
                0
            ))))
        ));
        // A closed round refuses bids.
        durable.submit_bid(&envelope(1, 1, 5), 0).expect("admit");
        durable.commit_round(1, 3).expect("commit");
        assert!(matches!(
            durable.submit_bid(&envelope(1, 1, 6), 0),
            Err(RoundError::RoundClosed { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nonce_replay_window_is_per_round() {
        let dir = temp_dir("nonce");
        let mut durable = DurableLedger::open(&DurabilityConfig::new(&dir)).expect("open");
        durable.open_round(spec(1, 2)).expect("round 1");
        durable.open_round(spec(2, 2)).expect("round 2");
        durable.submit_bid(&envelope(1, 0, 7), 0).expect("admit");
        // Same worker, same nonce, different round: fine (the signature
        // binds the envelope to its round, so this is a fresh envelope).
        durable.submit_bid(&envelope(2, 0, 7), 0).expect("admit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_reconstructs_state_and_aborts_in_flight() {
        let dir = temp_dir("restart");
        let config = DurabilityConfig::new(&dir);
        let receipt = {
            let mut durable = DurableLedger::open(&config).expect("open");
            durable.open_round(spec(1, 3)).expect("round 1");
            for w in 0..3 {
                durable
                    .submit_bid(&envelope(1, w, u64::from(w)), 0)
                    .expect("admit");
            }
            let receipt = durable.commit_round(1, 5).expect("commit");
            // Round 2 stays open across the "crash".
            durable.open_round(spec(2, 3)).expect("round 2");
            durable.submit_bid(&envelope(2, 0, 50), 0).expect("admit");
            receipt
        };
        let durable = DurableLedger::open(&config).expect("reopen");
        let report = durable.recovery();
        assert_eq!(report.recovered_rounds, 1, "only round 2 was live");
        assert_eq!(report.aborted_in_flight, 1);
        assert_eq!(report.completed_payments, 0);
        let settled = durable.round_status(1).expect("round 1");
        assert_eq!(settled.phase, "settled");
        assert_eq!(settled.winners, receipt.winners);
        let aborted = durable.round_status(2).expect("round 2");
        assert_eq!(aborted.phase, "aborted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_rotation_preserves_state() {
        let dir = temp_dir("rotate");
        let mut config = DurabilityConfig::new(&dir);
        config.snapshot_every = 4;
        let mut durable = DurableLedger::open(&config).expect("open");
        let mut receipts = Vec::new();
        for round in 1..=5u64 {
            durable.open_round(spec(round, 3)).expect("open round");
            for w in 0..3 {
                durable
                    .submit_bid(&envelope(round, w, round * 10 + u64::from(w)), 0)
                    .expect("admit");
            }
            receipts.push(durable.commit_round(round, round).expect("commit"));
        }
        // Rotation must have happened at least once.
        assert!(wal::read_snapshot(&dir).expect("snapshot").is_some());
        drop(durable);
        let durable = DurableLedger::open(&config).expect("reopen");
        assert!(durable.recovery().snapshot_lsn.is_some());
        for receipt in &receipts {
            let view = durable.round_status(receipt.round_id).expect("round");
            assert_eq!(view.phase, "settled");
            assert_eq!(view.winners, receipt.winners);
            assert_eq!(
                view.total_paid.tenths(),
                receipt.price.tenths() * receipt.winners.len() as i64
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ledger_rejects_double_payments_on_replay() {
        let mut ledger = Ledger::default();
        ledger
            .apply(&WalEvent::RoundOpened { spec: spec(1, 2) }, 1)
            .expect("open");
        ledger
            .apply(
                &WalEvent::AuctionCommitted {
                    round_id: 1,
                    seed: 0,
                    price: Price::from_f64(2.0),
                    winners: vec![WorkerId(0)],
                },
                2,
            )
            .expect("commit");
        let pay = WalEvent::PaymentIssued {
            round_id: 1,
            worker: WorkerId(0),
            amount: Price::from_f64(2.0),
        };
        ledger.apply(&pay, 3).expect("first payment");
        assert!(matches!(
            ledger.apply(&pay, 4),
            Err(WalError::InvalidSequence { lsn: 4, .. })
        ));
    }

    #[test]
    fn streams_resume_across_restart_with_the_same_posted_price() {
        let dir = temp_dir("stream-resume");
        let config = DurabilityConfig::new(&dir);
        let (posted, decided) = {
            let mut durable = DurableLedger::open(&config).expect("open");
            durable
                .open_stream(stream_spec(1, 10, 3))
                .expect("open stream");
            // Three observed arrivals, then two live decisions.
            for w in 0..5u32 {
                durable
                    .stream_arrival(&envelope(1, w, 100 + u64::from(w)), 0)
                    .expect("arrival");
            }
            let view = durable.stream_status(1).expect("status");
            assert_eq!(view.phase, "streaming");
            assert_eq!(view.arrivals, 5);
            (view.posted_price.expect("threshold learned"), view.accepted)
            // Dropped without closing: the "crash".
        };
        let mut durable = DurableLedger::open(&config).expect("reopen");
        assert_eq!(durable.recovery().resumed_streams, 1);
        assert_eq!(durable.recovery().aborted_in_flight, 0);
        let view = durable.stream_status(1).expect("status");
        assert_eq!(view.phase, "streaming", "streams resume, not abort");
        assert_eq!(view.arrivals, 5);
        assert_eq!(view.posted_price, Some(posted));
        assert_eq!(view.accepted, decided);
        // The session keeps deciding arrivals at the same posted price.
        for w in 5..10u32 {
            durable
                .stream_arrival(&envelope(1, w, 100 + u64::from(w)), 0)
                .expect("post-recovery arrival");
        }
        let receipt = durable.close_stream(1).expect("close");
        assert_eq!(receipt.arrivals, 10);
        assert_eq!(receipt.posted_price, Some(posted));
        assert!(!receipt.already_closed);
        assert_eq!(
            receipt.total_paid.tenths(),
            posted.tenths() * receipt.accepted.len() as i64
        );
        // Idempotent re-close replays the recorded result.
        let again = durable.close_stream(1).expect("re-close");
        assert!(again.already_closed);
        assert_eq!(again.accepted, receipt.accepted);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_arrivals_are_checked_like_bids() {
        let dir = temp_dir("stream-checks");
        let mut durable = DurableLedger::open(&DurabilityConfig::new(&dir)).expect("open");
        durable
            .open_stream(stream_spec(1, 4, 1))
            .expect("open stream");
        assert!(matches!(
            durable.stream_arrival(&envelope(9, 0, 1), 0),
            Err(RoundError::UnknownRound(9))
        ));
        let good = envelope(1, 0, 1);
        durable.stream_arrival(&good, 0).expect("arrival");
        assert!(matches!(
            durable.stream_arrival(&good, 0),
            Err(RoundError::Envelope(EnvelopeError::ReplayedNonce { .. }))
        ));
        assert!(matches!(
            durable.stream_arrival(&envelope(1, 0, 2), 0),
            Err(RoundError::Envelope(EnvelopeError::DuplicateBid(WorkerId(
                0
            ))))
        ));
        // Forged: worker 2's envelope relabelled as worker 1.
        let mut forged = envelope(1, 2, 3);
        forged.worker = WorkerId(1);
        assert!(matches!(
            durable.stream_arrival(&forged, 0),
            Err(RoundError::Envelope(EnvelopeError::BadSignature(_)))
        ));
        assert!(matches!(
            durable.stream_arrival(&envelope(1, 1, 4), u64::MAX),
            Err(RoundError::Envelope(EnvelopeError::Expired { .. }))
        ));
        durable.abort_stream(1).expect("abort");
        assert!(matches!(
            durable.stream_arrival(&envelope(1, 1, 5), 0),
            Err(RoundError::RoundClosed { .. })
        ));
        assert!(matches!(
            durable.close_stream(1),
            Err(RoundError::RoundClosed { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rounds_and_streams_share_the_id_namespace() {
        let dir = temp_dir("stream-ids");
        let mut durable = DurableLedger::open(&DurabilityConfig::new(&dir)).expect("open");
        durable.open_round(spec(1, 2)).expect("round 1");
        assert!(matches!(
            durable.open_stream(stream_spec(1, 4, 1)),
            Err(RoundError::DuplicateRound(1))
        ));
        durable.open_stream(stream_spec(2, 4, 1)).expect("stream 2");
        assert!(matches!(
            durable.open_round(spec(2, 2)),
            Err(RoundError::DuplicateRound(2))
        ));
        assert!(matches!(
            durable.open_stream(stream_spec(2, 4, 1)),
            Err(RoundError::DuplicateRound(2))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_state_survives_snapshot_rotation() {
        let dir = temp_dir("stream-rotate");
        let mut config = DurabilityConfig::new(&dir);
        config.snapshot_every = 4;
        let mut durable = DurableLedger::open(&config).expect("open");
        durable
            .open_stream(stream_spec(1, 8, 2))
            .expect("open stream");
        for w in 0..8u32 {
            durable
                .stream_arrival(&envelope(1, w, u64::from(w) + 1), 0)
                .expect("arrival");
        }
        let receipt = durable.close_stream(1).expect("close");
        // The close crossed snapshot_every, so a rotation happened.
        assert!(wal::read_snapshot(&dir).expect("snapshot").is_some());
        drop(durable);
        let durable = DurableLedger::open(&config).expect("reopen");
        assert!(durable.recovery().snapshot_lsn.is_some());
        let view = durable.stream_status(1).expect("status");
        assert_eq!(view.phase, "closed");
        assert_eq!(view.accepted, receipt.accepted);
        assert_eq!(view.total_paid, receipt.total_paid);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_arrival_frames_are_refused_on_replay() {
        let mut ledger = Ledger::default();
        ledger
            .apply(
                &WalEvent::StreamOpened {
                    spec: stream_spec(1, 4, 1),
                },
                1,
            )
            .expect("open");
        // A log claiming a sample-phase arrival was accepted (and paid)
        // contradicts the deterministic fold and must be rejected.
        let forged = WalEvent::StreamArrival {
            round_id: 1,
            worker: WorkerId(0),
            nonce: 1,
            expires_at_ms: 1_000_000,
            bid: Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(2.0)),
            signature: [0u8; 64],
            accepted: true,
            payment: Price::from_f64(2.0),
        };
        assert!(matches!(
            ledger.apply(&forged, 2),
            Err(WalError::InvalidSequence { lsn: 2, .. })
        ));
        let _ = &ledger;
    }

    #[test]
    fn snapshot_codec_round_trips_the_ledger() {
        let dir = temp_dir("snapcodec");
        let mut durable = DurableLedger::open(&DurabilityConfig::new(&dir)).expect("open");
        durable.open_round(spec(1, 3)).expect("round");
        for w in 0..3 {
            durable
                .submit_bid(&envelope(1, w, u64::from(w)), 0)
                .expect("admit");
        }
        durable.commit_round(1, 9).expect("commit");
        durable.open_round(spec(2, 2)).expect("round 2");
        durable.abort_round(2).expect("abort");
        let encoded = durable.ledger().encode_snapshot();
        let decoded = Ledger::decode_snapshot(&encoded).expect("decode");
        // Receipt LSNs differ (snapshot folds carry lsn 0); compare views
        // and structure instead.
        assert_eq!(decoded.total_rounds(), durable.ledger().total_rounds());
        for id in [1u64, 2] {
            let mut a = decoded.round(id).expect("round").view();
            let b = durable.round_status(id).expect("round");
            a.round_id = b.round_id;
            assert_eq!(a, b);
        }
        assert!(matches!(
            Ledger::decode_snapshot(&encoded[..encoded.len() - 1]),
            Err(WalError::BadSnapshot(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
