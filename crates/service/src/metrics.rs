//! Per-endpoint counters and latency histograms.
//!
//! Latencies are recorded in a geometric bucket histogram (ratio 1.25,
//! 96 buckets, ~27 minutes of range at microsecond resolution) built on
//! [`mcs_num::Histogram`]; quantiles are reported as the containing
//! bucket's upper bound, so they overstate the truth by at most 25%.
//! Exact maxima are tracked separately.

use std::sync::Mutex;
use std::time::Duration;

use mcs_num::Histogram;

use crate::wire::{EndpointMetrics, LatencySummary, MetricsReport};

/// The fixed endpoint set, in reporting order. New endpoints append;
/// existing indices stay stable.
pub const ENDPOINTS: [&str; 13] = [
    "run_auction",
    "query_pmf",
    "run_resilient_round",
    "health",
    "metrics",
    "open_round",
    "submit_bid",
    "commit_round",
    "abort_round",
    "round_status",
    "open_stream",
    "arrive",
    "close_stream",
];

const BUCKETS: usize = 96;
const RATIO: f64 = 1.25;

/// Upper bound (µs) of bucket `i`: `ceil(1.25^i)`.
fn bucket_bound_us(i: usize) -> u64 {
    RATIO.powi(i as i32).ceil() as u64
}

/// The bucket containing a latency of `us` microseconds.
fn bucket_for_us(us: u64) -> usize {
    // Buckets are few enough that a scan beats getting the float log
    // edge cases right.
    for i in 0..BUCKETS {
        if us <= bucket_bound_us(i) {
            return i;
        }
    }
    BUCKETS - 1
}

struct EndpointStats {
    count: u64,
    errors: u64,
    batched: u64,
    busy: u64,
    latency: Histogram,
    max_us: u64,
}

impl EndpointStats {
    fn new() -> Self {
        EndpointStats {
            count: 0,
            errors: 0,
            batched: 0,
            busy: 0,
            latency: Histogram::new(BUCKETS),
            max_us: 0,
        }
    }

    fn summary(&self) -> Option<LatencySummary> {
        let q = |p: f64| self.latency.quantile(p).map(bucket_bound_us);
        Some(LatencySummary {
            p50_us: q(0.50)?,
            p95_us: q(0.95)?,
            p99_us: q(0.99)?,
            max_us: self.max_us,
        })
    }
}

/// Thread-safe metrics registry shared by every worker.
pub struct MetricsRegistry {
    stats: Mutex<Vec<EndpointStats>>,
    rejected_busy: Mutex<u64>,
    envelope_rejections: Mutex<u64>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry covering [`ENDPOINTS`].
    pub fn new() -> Self {
        MetricsRegistry {
            stats: Mutex::new((0..ENDPOINTS.len()).map(|_| EndpointStats::new()).collect()),
            rejected_busy: Mutex::new(0),
            envelope_rejections: Mutex::new(0),
        }
    }

    fn index(endpoint: &str) -> Option<usize> {
        ENDPOINTS.iter().position(|e| *e == endpoint)
    }

    /// Records one answered request.
    ///
    /// `batched` marks requests served as part of a coalesced batch of
    /// two or more; `errored` marks [`crate::Response::Error`] answers.
    pub fn record(&self, endpoint: &str, latency: Duration, batched: bool, errored: bool) {
        let Some(idx) = Self::index(endpoint) else {
            return;
        };
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut stats = self.stats.lock().expect("metrics lock poisoned");
        let s = &mut stats[idx];
        s.count += 1;
        if errored {
            s.errors += 1;
        }
        if batched {
            s.batched += 1;
        }
        s.latency.record(bucket_for_us(us));
        s.max_us = s.max_us.max(us);
    }

    /// Records one attempt rejected with `Busy` at the accept queue.
    /// Counted both globally and against the target endpoint, so retry
    /// storms show up where they land.
    pub fn record_busy(&self, endpoint: &str) {
        *self.rejected_busy.lock().expect("metrics lock poisoned") += 1;
        if let Some(idx) = Self::index(endpoint) {
            self.stats.lock().expect("metrics lock poisoned")[idx].busy += 1;
        }
    }

    /// Records one bid envelope refused at admission (forged, replayed,
    /// expired, unknown worker, …).
    pub fn record_envelope_rejection(&self) {
        *self
            .envelope_rejections
            .lock()
            .expect("metrics lock poisoned") += 1;
    }

    /// Snapshots every endpoint into a wire-ready report.
    ///
    /// `cache_hits` / `cache_misses` come from the PMF cache, which keeps
    /// its own counters; `wal_frames` / `wal_fsyncs` from the durable
    /// ledger (0 when durability is disabled).
    pub fn report(&self, cache_hits: u64, cache_misses: u64) -> MetricsReport {
        self.report_with_wal(cache_hits, cache_misses, 0, 0)
    }

    /// [`MetricsRegistry::report`] with the durable ledger's WAL
    /// counters filled in.
    pub fn report_with_wal(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        wal_frames: u64,
        wal_fsyncs: u64,
    ) -> MetricsReport {
        let stats = self.stats.lock().expect("metrics lock poisoned");
        MetricsReport {
            endpoints: ENDPOINTS
                .iter()
                .zip(stats.iter())
                .map(|(name, s)| EndpointMetrics {
                    endpoint: (*name).to_string(),
                    count: s.count,
                    errors: s.errors,
                    batched: s.batched,
                    busy: s.busy,
                    latency: s.summary(),
                })
                .collect(),
            cache_hits,
            cache_misses,
            rejected_busy: *self.rejected_busy.lock().expect("metrics lock poisoned"),
            wal_frames,
            wal_fsyncs,
            envelope_rejections: *self
                .envelope_rejections
                .lock()
                .expect("metrics lock poisoned"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_everything() {
        let mut prev = 0;
        for i in 0..BUCKETS {
            let b = bucket_bound_us(i);
            assert!(b >= prev);
            prev = b;
        }
        assert_eq!(bucket_for_us(0), 0);
        assert_eq!(bucket_for_us(1), 0);
        // Far beyond the last bound: clamped into the final bucket.
        assert_eq!(bucket_for_us(u64::MAX), BUCKETS - 1);
        // ~27 minutes of range.
        assert!(bucket_bound_us(BUCKETS - 1) > 1_000_000_000);
    }

    #[test]
    fn record_and_report() {
        let m = MetricsRegistry::new();
        m.record("run_auction", Duration::from_micros(100), false, false);
        m.record("run_auction", Duration::from_micros(200), true, true);
        m.record_busy("run_auction");
        m.record_busy("run_auction");
        m.record_busy("arrive");
        let report = m.report(3, 1);
        assert_eq!(report.cache_hits, 3);
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.rejected_busy, 3);
        let ra = &report.endpoints[0];
        assert_eq!(ra.endpoint, "run_auction");
        assert_eq!(ra.count, 2);
        assert_eq!(ra.errors, 1);
        assert_eq!(ra.batched, 1);
        assert_eq!(ra.busy, 2, "per-endpoint busy attempts are attributed");
        let arrive = report
            .endpoints
            .iter()
            .find(|e| e.endpoint == "arrive")
            .expect("arrive endpoint listed");
        assert_eq!(arrive.busy, 1);
        // An unknown endpoint still bumps the global counter.
        m.record_busy("nope");
        assert_eq!(m.report(0, 0).rejected_busy, 4);
        let lat = ra.latency.as_ref().expect("two samples recorded");
        assert!(lat.p50_us >= 100);
        assert_eq!(lat.max_us, 200);
        // Untouched endpoints have no latency summary.
        assert!(report.endpoints[3].latency.is_none());
        assert_eq!(report.endpoints[3].count, 0);
    }

    #[test]
    fn unknown_endpoint_is_ignored() {
        let m = MetricsRegistry::new();
        m.record("nope", Duration::from_micros(1), false, false);
        let report = m.report(0, 0);
        assert!(report.endpoints.iter().all(|e| e.count == 0));
    }
}
