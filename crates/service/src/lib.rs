//! A concurrent auction service for the DP-hSRC mechanism.
//!
//! The rest of the workspace treats an auction as a library call; this
//! crate turns it into a long-lived *platform process* — the shape the
//! paper's crowd-sensing platform actually has: many requesters submit
//! sensing campaigns concurrently, and the platform amortises schedule
//! builds across them.
//!
//! # What the service adds over a bare [`mcs_auction::DpHsrcAuction`]
//!
//! * **Batching** — requests arriving within a small window that share an
//!   instance fingerprint (the stable content digest of `(Instance, ε)`,
//!   see [`mcs_types::Instance::digest`]) coalesce into *one* schedule
//!   build.
//! * **Caching** — built PMFs live in a bounded LRU ([`PmfCache`]) keyed
//!   by that digest; a cached auction reply is byte-identical to a cold
//!   one because the sampled draw depends only on the PMF and the
//!   caller's seed.
//! * **Backpressure** — every queue is bounded; a full service answers a
//!   typed [`Response::Busy`] with a retry hint instead of blocking or
//!   resetting connections.
//! * **Graceful drain** — shutdown stops admission atomically, then
//!   answers every request already accepted before the threads join.
//! * **Metrics** — per-endpoint counters and geometric latency
//!   histograms (built on [`mcs_num::Histogram`]) behind a `metrics`
//!   request.
//!
//! # Transports
//!
//! The in-process [`Client`] and the line-delimited-JSON [`TcpServer`] /
//! [`TcpClient`] speak the same [`Request`] / [`Response`] enums, so
//! behaviour is transport-independent. No async runtime is involved:
//! a fixed worker pool and bounded [`std::sync::mpsc`] queues carry
//! everything.
//!
//! # Example
//!
//! ```
//! use mcs_service::{Request, Response, Service, ServiceConfig};
//! use mcs_sim::Setting;
//!
//! let service = Service::start(ServiceConfig::default());
//! let client = service.client();
//! let instance = Setting::one(80).scaled_down(8).generate(7).instance;
//! let response = client.call(Request::RunAuction {
//!     instance,
//!     epsilon: 0.1,
//!     seed: 42,
//! });
//! assert!(matches!(response, Response::Outcome(_)));
//! service.shutdown();
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod cache;
mod envelope;
mod ledger;
mod metrics;
mod server;
mod stream;
mod tcp;
mod wal;
mod wire;

pub use cache::{CacheKey, PmfCache};
pub use envelope::{decode_public_key, signing_bytes, BidEnvelope, EnvelopeError};
pub use ledger::{
    recover_from_bytes, system_now_ms, AbortReason, AdmittedBid, CommitReceipt, DurabilityConfig,
    DurableLedger, FsyncPolicy, Ledger, PaymentRecord, RecoveryReport, RosterEntry, RoundError,
    RoundSpec, RoundState, RoundStatusView, WalEvent,
};
pub use metrics::{MetricsRegistry, ENDPOINTS};
pub use server::{Client, Service, ServiceConfig};
pub use stream::{StreamDecision, StreamReceipt, StreamSession, StreamSpec, StreamStatusView};
pub use tcp::{RetryPolicy, TcpClient, TcpServer};
pub use wal::{
    crc32, encode_frame, read_snapshot, scan_bytes, write_snapshot, CrashPlan, Frame, TailDefect,
    WalError, WalOpenMode, WalScan, WalWriter, FRAME_HEADER_LEN, MAX_FRAME_LEN, SNAPSHOT_FILE,
    WAL_FILE, WAL_HEADER_LEN,
};
pub use wire::{
    decode_request, decode_response, EndpointMetrics, HealthReport, LatencySummary, MetricsReport,
    PmfSummary, Request, Response, WireError,
};
