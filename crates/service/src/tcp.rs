//! Line-delimited JSON over TCP: the service's network transport.
//!
//! One request per line, one response per line, both the externally
//! tagged JSON encodings of [`Request`] / [`Response`]. The transport is
//! a thin shell around the in-process [`Client`]: every connection gets a
//! thread that parses lines, forwards them through `Client::call`, and
//! writes the answer back — so batching, caching, backpressure, and
//! draining all behave identically across transports. A full queue
//! produces a `busy` *line*, never a stalled or reset connection.
//!
//! The client side honours that backpressure: [`TcpClient::call`]
//! retries `busy` answers under a [`RetryPolicy`] — jittered exponential
//! backoff seeded per connection, never below the server's
//! `retry_after_hint_ms`, with a bounded retry budget. Use
//! [`TcpClient::call_once`] to see raw `busy` responses.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rand::Rng;

use mcs_num::rng;

use crate::server::Client;
use crate::wire::{decode_request, decode_response, Request, Response};

/// How often blocked I/O loops re-check the stop flag.
const POLL: Duration = Duration::from_millis(50);

/// A TCP front-end serving a [`Client`]'s service on a local socket.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding or configuring the listener.
    pub fn bind<A: ToSocketAddrs>(client: Client, addr: A) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("mcs-service-accept".to_string())
            .spawn(move || {
                let mut connections: Vec<JoinHandle<()>> = Vec::new();
                while !stop_accept.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let client = client.clone();
                            let stop_conn = Arc::clone(&stop_accept);
                            if let Ok(handle) = std::thread::Builder::new()
                                .name("mcs-service-conn".to_string())
                                .spawn(move || serve_connection(stream, &client, &stop_conn))
                            {
                                connections.push(handle);
                            }
                        }
                        Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(_) => break,
                    }
                }
                for handle in connections {
                    let _ = handle.join();
                }
            })
            .expect("spawn accept thread");
        Ok(TcpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins every connection thread.
    /// In-flight requests still get their response line before the
    /// connection closes.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_connection(stream: TcpStream, client: &Client, stop: &AtomicBool) {
    // One small JSON line per response: without TCP_NODELAY, Nagle plus
    // delayed ACKs adds tens of milliseconds to every round trip.
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client hung up.
            Ok(_) => {
                // The checked decode rejects non-finite numbers and
                // duplicate keys before typed deserialization, so no
                // request built from an unsound document reaches the
                // service (or its digest-keyed cache).
                let response = match decode_request(line.trim()) {
                    Ok(request) => client.call(request),
                    Err(err) => Response::Error {
                        message: format!("malformed request: {err}"),
                    },
                };
                if write_line(&mut writer, &response).is_err() {
                    break;
                }
                line.clear();
            }
            // Timeout while idle (or mid-line): whatever was read so far
            // stays in `line`; keep accumulating after the flag check.
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}

fn write_line<W: Write>(writer: &mut W, response: &Response) -> io::Result<()> {
    let json = serde_json::to_string(response)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
    writer.write_all(json.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// How a [`TcpClient`] backs off when the service answers `busy`.
///
/// Attempt `n` (0-based) sleeps
/// `max(hint, base_delay) · 2ⁿ + jitter` capped at `max_delay`, where
/// `hint` is the server's `retry_after_hint_ms` and `jitter` is uniform
/// in one `base_delay` — seeded per connection, so a thundering herd of
/// rejected clients decorrelates instead of retrying in lockstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Busy retries before the `busy` answer is surfaced to the caller
    /// (0 disables retrying).
    pub max_retries: u32,
    /// Floor of the backoff; also the jitter range.
    pub base_delay: Duration,
    /// Hard cap on a single sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every `busy` is surfaced raw.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The sleep before retry `attempt` (0-based) of a request whose
    /// rejection carried `hint_ms`.
    fn delay<R: Rng>(&self, attempt: u32, hint_ms: u64, rng: &mut R) -> Duration {
        let base = self.base_delay.max(Duration::from_millis(hint_ms));
        let scaled = base.saturating_mul(1u32 << attempt.min(16));
        let jitter_us = if self.base_delay.is_zero() {
            0
        } else {
            rng.gen_range(0..self.base_delay.as_micros().max(1) as u64)
        };
        scaled
            .saturating_add(Duration::from_micros(jitter_us))
            .min(self.max_delay)
    }
}

/// A blocking TCP client speaking the line protocol.
///
/// One request/response at a time per connection; open several clients
/// for concurrency (the load generator does exactly that).
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    retry: RetryPolicy,
    backoff_rng: rand_chacha::ChaCha8Rng,
    busy_retries: u64,
}

impl TcpClient {
    /// Connects to a running [`TcpServer`] with the default
    /// [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpClient> {
        Self::connect_with(addr, RetryPolicy::default())
    }

    /// Connects with an explicit retry policy.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, retry: RetryPolicy) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Seed the jitter stream from the connection's ephemeral port so
        // concurrent clients take different backoff paths without any
        // global randomness source.
        let port_entropy = stream
            .local_addr()
            .map(|a| u64::from(a.port()))
            .unwrap_or(1);
        let read_half = stream.try_clone()?;
        Ok(TcpClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            retry,
            backoff_rng: rng::derived(0xB0FF, port_entropy),
            busy_retries: 0,
        })
    }

    /// Busy answers retried (after a sleep) over this connection's
    /// lifetime.
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    /// Sends one request and blocks for its response line, retrying
    /// `busy` answers under the connection's [`RetryPolicy`]. A `busy`
    /// that survives the whole retry budget is returned as-is.
    ///
    /// # Errors
    ///
    /// Returns an error on socket failures, a closed connection, or a
    /// response line that does not parse.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            let response = self.call_once(request)?;
            let Response::Busy {
                retry_after_hint_ms,
            } = response
            else {
                return Ok(response);
            };
            if attempt >= self.retry.max_retries {
                return Ok(response);
            }
            let delay =
                self.retry
                    .clone()
                    .delay(attempt, retry_after_hint_ms, &mut self.backoff_rng);
            std::thread::sleep(delay);
            self.busy_retries += 1;
            attempt += 1;
        }
    }

    /// Sends one request without any busy retrying.
    ///
    /// # Errors
    ///
    /// Returns an error on socket failures, a closed connection, or a
    /// response line that does not parse.
    pub fn call_once(&mut self, request: &Request) -> io::Result<Response> {
        let json = serde_json::to_string(request)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        self.writer.write_all(json.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before a response arrived",
            ));
        }
        decode_response(line.trim())
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_honours_the_hint_and_caps() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(4),
            max_delay: Duration::from_millis(100),
        };
        let mut r = rng::seeded(1);
        let d0 = policy.delay(0, 0, &mut r);
        let d1 = policy.delay(1, 0, &mut r);
        let d2 = policy.delay(2, 0, &mut r);
        assert!(d0 >= Duration::from_millis(4));
        assert!(d1 >= Duration::from_millis(8));
        assert!(d2 >= Duration::from_millis(16));
        // The server's hint floors the base.
        assert!(policy.delay(0, 50, &mut r) >= Duration::from_millis(50));
        // The cap bounds everything, huge attempts included.
        assert_eq!(policy.delay(30, 1000, &mut r), Duration::from_millis(100));
    }

    #[test]
    fn jitter_is_deterministic_per_seed_but_varies() {
        let policy = RetryPolicy::default();
        let mut a = rng::derived(0xB0FF, 1);
        let mut b = rng::derived(0xB0FF, 1);
        let mut c = rng::derived(0xB0FF, 2);
        assert_eq!(policy.delay(0, 0, &mut a), policy.delay(0, 0, &mut b));
        let same: Vec<Duration> = (0..8).map(|_| policy.delay(0, 0, &mut a)).collect();
        let other: Vec<Duration> = (0..8).map(|_| policy.delay(0, 0, &mut c)).collect();
        assert_ne!(same, other, "different streams should jitter apart");
    }
}
