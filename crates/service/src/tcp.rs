//! Line-delimited JSON over TCP: the service's network transport.
//!
//! One request per line, one response per line, both the externally
//! tagged JSON encodings of [`Request`] / [`Response`]. The transport is
//! a thin shell around the in-process [`Client`]: every connection gets a
//! thread that parses lines, forwards them through `Client::call`, and
//! writes the answer back — so batching, caching, backpressure, and
//! draining all behave identically across transports. A full queue
//! produces a `busy` *line*, never a stalled or reset connection.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::server::Client;
use crate::wire::{decode_request, decode_response, Request, Response};

/// How often blocked I/O loops re-check the stop flag.
const POLL: Duration = Duration::from_millis(50);

/// A TCP front-end serving a [`Client`]'s service on a local socket.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding or configuring the listener.
    pub fn bind<A: ToSocketAddrs>(client: Client, addr: A) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("mcs-service-accept".to_string())
            .spawn(move || {
                let mut connections: Vec<JoinHandle<()>> = Vec::new();
                while !stop_accept.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let client = client.clone();
                            let stop_conn = Arc::clone(&stop_accept);
                            if let Ok(handle) = std::thread::Builder::new()
                                .name("mcs-service-conn".to_string())
                                .spawn(move || serve_connection(stream, &client, &stop_conn))
                            {
                                connections.push(handle);
                            }
                        }
                        Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(_) => break,
                    }
                }
                for handle in connections {
                    let _ = handle.join();
                }
            })
            .expect("spawn accept thread");
        Ok(TcpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins every connection thread.
    /// In-flight requests still get their response line before the
    /// connection closes.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_connection(stream: TcpStream, client: &Client, stop: &AtomicBool) {
    // One small JSON line per response: without TCP_NODELAY, Nagle plus
    // delayed ACKs adds tens of milliseconds to every round trip.
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client hung up.
            Ok(_) => {
                // The checked decode rejects non-finite numbers and
                // duplicate keys before typed deserialization, so no
                // request built from an unsound document reaches the
                // service (or its digest-keyed cache).
                let response = match decode_request(line.trim()) {
                    Ok(request) => client.call(request),
                    Err(err) => Response::Error {
                        message: format!("malformed request: {err}"),
                    },
                };
                if write_line(&mut writer, &response).is_err() {
                    break;
                }
                line.clear();
            }
            // Timeout while idle (or mid-line): whatever was read so far
            // stays in `line`; keep accumulating after the flag check.
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}

fn write_line<W: Write>(writer: &mut W, response: &Response) -> io::Result<()> {
    let json = serde_json::to_string(response)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
    writer.write_all(json.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// A blocking TCP client speaking the line protocol.
///
/// One request/response at a time per connection; open several clients
/// for concurrency (the load generator does exactly that).
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpClient {
    /// Connects to a running [`TcpServer`].
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(TcpClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and blocks for its response line.
    ///
    /// # Errors
    ///
    /// Returns an error on socket failures, a closed connection, or a
    /// response line that does not parse.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let json = serde_json::to_string(request)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        self.writer.write_all(json.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before a response arrived",
            ));
        }
        decode_response(line.trim())
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
    }
}
