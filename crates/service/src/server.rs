//! The service core: bounded accept queue, batching dispatcher, worker
//! pool, and the in-process [`Client`].
//!
//! # Thread topology
//!
//! ```text
//! clients ──try_send──▶ accept queue ──▶ dispatcher ──send──▶ batch queue ──▶ workers
//!   (N)                 (bounded)        (batches by           (bounded)       (pool)
//!                                         cache key)
//! ```
//!
//! Every queue is a bounded [`std::sync::mpsc::sync_channel`]; nothing in
//! the hot path blocks a client. When the accept queue is full,
//! [`Client::call`] returns [`Response::Busy`] immediately instead of
//! blocking — backpressure is a *typed answer*, not a stalled caller.
//!
//! # Shutdown
//!
//! [`Service::shutdown`] flips the draining flag under the same lock that
//! guards request admission, so after the flag is visible no new request
//! can have entered the queue. The dispatcher then sweeps the queue dry,
//! the workers drain their batch queue, and every accepted request is
//! answered before the threads join.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mcs_auction::{DpHsrcAuction, ScheduledMechanism, Strategy};
use mcs_num::rng;
use mcs_sim::platform::run_round_resilient;
use mcs_types::McsError;

use crate::cache::{CacheKey, PmfCache};
use crate::ledger::{system_now_ms, DurabilityConfig, DurableLedger, RoundError};
use crate::metrics::MetricsRegistry;
use crate::wal::WalError;
use crate::wire::{HealthReport, PmfSummary, Request, Response};

/// Tuning knobs of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing schedule builds and rounds.
    pub workers: usize,
    /// Capacity of the bounded accept queue; a full queue answers
    /// [`Response::Busy`].
    pub queue_depth: usize,
    /// How long the dispatcher holds a batch open for further requests
    /// with the same cache key.
    pub batch_window: Duration,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Maximum price schedules kept in the LRU cache.
    pub cache_capacity: usize,
    /// Back-off hint handed to rejected clients.
    pub retry_after_hint_ms: u64,
    /// Winner-determination strategy for every schedule the service
    /// builds. Every strategy yields the identical mechanism output;
    /// deployments facing very large worker pools set
    /// [`Strategy::Indexed`] here.
    pub strategy: Strategy,
    /// Durable round state. `Some` opens (and recovers) a write-ahead
    /// log in the given directory and enables the round-lifecycle
    /// endpoints; `None` (the default) keeps the service stateless and
    /// answers those endpoints with [`Response::Error`].
    pub durability: Option<DurabilityConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_depth: 64,
            batch_window: Duration::from_millis(2),
            max_batch: 16,
            cache_capacity: 32,
            retry_after_hint_ms: 10,
            strategy: Strategy::Auto,
            durability: None,
        }
    }
}

struct Job {
    request: Request,
    reply: SyncSender<Response>,
    enqueued_at: Instant,
}

struct Shared {
    cache: PmfCache,
    metrics: MetricsRegistry,
    config: ServiceConfig,
    draining: AtomicBool,
    /// Durable round state, present when [`ServiceConfig::durability`]
    /// is set. The mutex serialises the WAL append → fsync → apply
    /// sequence so frames hit the log in LSN order.
    durable: Option<Mutex<DurableLedger>>,
}

/// An in-process handle for talking to a running [`Service`].
///
/// Cheap to clone; clones share the service's queues. A `Client` may
/// outlive its service, in which case calls answer
/// [`Response::ShuttingDown`].
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
    accept_tx: SyncSender<Job>,
    gate: Arc<Mutex<()>>,
}

impl Client {
    /// Submits one request and blocks until its response.
    ///
    /// Never blocks on a *full* service: a full accept queue returns
    /// [`Response::Busy`] immediately, and a draining service returns
    /// [`Response::ShuttingDown`]. Blocking happens only while an
    /// *accepted* request is worked on.
    pub fn call(&self, request: Request) -> Response {
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job {
            request,
            reply: reply_tx,
            enqueued_at: Instant::now(),
        };
        {
            // Admission and the draining flag are checked under one lock
            // so shutdown cannot race a request into a dead queue.
            let _gate = self.gate.lock().expect("admission gate poisoned");
            if self.shared.draining.load(Ordering::SeqCst) {
                return Response::ShuttingDown;
            }
            match self.accept_tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(job)) => {
                    self.shared.metrics.record_busy(job.request.endpoint());
                    return Response::Busy {
                        retry_after_hint_ms: self.shared.config.retry_after_hint_ms,
                    };
                }
                Err(TrySendError::Disconnected(_)) => return Response::ShuttingDown,
            }
        }
        match reply_rx.recv() {
            Ok(response) => response,
            // The worker dropped the reply sender without answering; only
            // possible if a worker thread died mid-request.
            Err(_) => Response::Error {
                message: "service dropped the request".to_string(),
            },
        }
    }
}

/// A running auction service: dispatcher + worker pool + cache.
///
/// Start one with [`Service::start`], talk to it through [`Service::client`]
/// (or wrap the client in a [`crate::TcpServer`]), and stop it with
/// [`Service::shutdown`]. Dropping the service also shuts it down.
pub struct Service {
    shared: Arc<Shared>,
    gate: Arc<Mutex<()>>,
    accept_tx: Option<SyncSender<Job>>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts the dispatcher and worker threads.
    ///
    /// # Panics
    ///
    /// Panics if [`ServiceConfig::durability`] is set and opening or
    /// recovering the write-ahead log fails; use [`Service::try_start`]
    /// to handle that as a typed error.
    pub fn start(config: ServiceConfig) -> Self {
        Self::try_start(config).expect("open durable round log")
    }

    /// [`Service::start`], surfacing WAL open/recovery failures.
    ///
    /// # Errors
    ///
    /// [`WalError`] if [`ServiceConfig::durability`] is set and the log
    /// directory cannot be opened, read, or recovered.
    pub fn try_start(config: ServiceConfig) -> Result<Self, WalError> {
        let durable = match &config.durability {
            Some(durability) => Some(Mutex::new(DurableLedger::open(durability)?)),
            None => None,
        };
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            cache: PmfCache::new(config.cache_capacity),
            metrics: MetricsRegistry::new(),
            config: config.clone(),
            draining: AtomicBool::new(false),
            durable,
        });
        let gate = Arc::new(Mutex::new(()));
        let (accept_tx, accept_rx) = sync_channel::<Job>(config.queue_depth.max(1));
        let (batch_tx, batch_rx) = sync_channel::<Vec<Job>>(workers);
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let batch_rx = Arc::clone(&batch_rx);
                std::thread::Builder::new()
                    .name(format!("mcs-service-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &batch_rx))
                    .expect("spawn worker thread")
            })
            .collect();

        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mcs-service-dispatch".to_string())
                .spawn(move || dispatch_loop(&shared, &accept_rx, &batch_tx))
                .expect("spawn dispatcher thread")
        };

        Ok(Service {
            shared,
            gate,
            accept_tx: Some(accept_tx),
            dispatcher: Some(dispatcher),
            workers: worker_handles,
        })
    }

    /// What recovery found while opening the durable log, if durability
    /// is enabled.
    pub fn recovery(&self) -> Option<crate::ledger::RecoveryReport> {
        self.shared.durable.as_ref().map(|d| {
            d.lock()
                .expect("durable ledger poisoned")
                .recovery()
                .clone()
        })
    }

    /// A new in-process client handle.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Service::shutdown`] began (impossible
    /// through safe use, since `shutdown` consumes the service).
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            accept_tx: self
                .accept_tx
                .clone()
                .expect("service queues already torn down"),
            gate: Arc::clone(&self.gate),
        }
    }

    /// Stops accepting requests, drains everything already accepted, and
    /// joins all threads. Every request accepted before the call is
    /// answered before this returns.
    pub fn shutdown(mut self) {
        self.drain_and_join();
    }

    fn drain_and_join(&mut self) {
        {
            let _gate = self.gate.lock().expect("admission gate poisoned");
            self.shared.draining.store(true, Ordering::SeqCst);
        }
        // Drop our accept sender so the dispatcher can also observe
        // disconnection once every client clone is gone.
        self.accept_tx = None;
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if self.dispatcher.is_some() || !self.workers.is_empty() {
            self.drain_and_join();
        }
    }
}

/// The cache key of a batchable request; `None` for requests that are
/// never coalesced.
fn batch_key(request: &Request) -> Option<CacheKey> {
    match request {
        Request::RunAuction {
            instance, epsilon, ..
        }
        | Request::QueryPmf { instance, epsilon } => Some(CacheKey::new(instance, *epsilon)),
        _ => None,
    }
}

/// How long an idle dispatcher sleeps between checks of the draining flag.
const IDLE_POLL: Duration = Duration::from_millis(20);

fn dispatch_loop(shared: &Arc<Shared>, accept_rx: &Receiver<Job>, batch_tx: &SyncSender<Vec<Job>>) {
    let window = shared.config.batch_window;
    let max_batch = shared.config.max_batch.max(1);
    let mut pending: VecDeque<Job> = VecDeque::new();
    loop {
        let job = match pending.pop_front() {
            Some(job) => job,
            None => {
                if shared.draining.load(Ordering::SeqCst) {
                    // The admission gate guarantees no send can start
                    // after the flag flipped, so a dry queue means done.
                    match accept_rx.try_recv() {
                        Ok(job) => job,
                        Err(_) => break,
                    }
                } else {
                    match accept_rx.recv_timeout(IDLE_POLL) {
                        Ok(job) => job,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
        };

        let Some(key) = batch_key(&job.request) else {
            if batch_tx.send(vec![job]).is_err() {
                break;
            }
            continue;
        };

        let mut batch = vec![job];
        // First absorb same-key jobs that are already waiting.
        let mut rest = VecDeque::with_capacity(pending.len());
        while let Some(next) = pending.pop_front() {
            if batch.len() < max_batch && batch_key(&next.request) == Some(key) {
                batch.push(next);
            } else {
                rest.push_back(next);
            }
        }
        pending = rest;
        // Fast path: with a free worker, ship immediately — the batch
        // window only pays off when the pool is saturated, and waiting
        // it out on an idle service would tax every request's latency.
        if batch.len() < max_batch && !shared.draining.load(Ordering::SeqCst) {
            match batch_tx.try_send(batch) {
                Ok(()) => continue,
                Err(TrySendError::Full(returned)) => batch = returned,
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        // Saturated: hold the window open for stragglers with the same
        // key; skip the wait while draining (no new arrivals come).
        if !shared.draining.load(Ordering::SeqCst) {
            let deadline = Instant::now() + window;
            while batch.len() < max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match accept_rx.recv_timeout(deadline - now) {
                    Ok(next) => {
                        if batch_key(&next.request) == Some(key) {
                            batch.push(next);
                        } else {
                            pending.push_back(next);
                        }
                    }
                    Err(_) => break,
                }
            }
        }
        if batch_tx.send(batch).is_err() {
            break;
        }
    }
    // `batch_tx` drops here: workers finish their queue and exit.
}

fn worker_loop(shared: &Arc<Shared>, batch_rx: &Arc<Mutex<Receiver<Vec<Job>>>>) {
    loop {
        let batch = {
            let rx = batch_rx.lock().expect("batch queue lock poisoned");
            match rx.recv() {
                Ok(batch) => batch,
                Err(_) => break,
            }
        };
        answer_batch(shared, batch);
    }
}

fn error_response(err: &McsError) -> Response {
    Response::Error {
        message: err.to_string(),
    }
}

/// Maps a durable-round refusal to its wire answer, counting envelope
/// rejections (forged, replayed, expired, …) in the metrics.
fn rejection(shared: &Shared, err: &RoundError) -> Response {
    if matches!(err, RoundError::Envelope(_)) {
        shared.metrics.record_envelope_rejection();
    }
    Response::Rejected {
        code: err.code().to_string(),
        detail: err.to_string(),
    }
}

/// Answers one durable-round request, or [`Response::Error`] when the
/// service was started without a durability directory.
fn answer_durable(shared: &Shared, request: &Request) -> Response {
    let Some(durable) = shared.durable.as_ref() else {
        return Response::Error {
            message: "durability is not enabled on this service".to_string(),
        };
    };
    let mut ledger = durable.lock().expect("durable ledger poisoned");
    match request {
        Request::OpenRound { spec } => match ledger.open_round(spec.clone()) {
            Ok(lsn) => Response::Opened {
                round_id: spec.round_id,
                lsn,
            },
            Err(err) => rejection(shared, &err),
        },
        Request::SubmitBid { envelope } => match ledger.submit_bid(envelope, system_now_ms()) {
            Ok(lsn) => Response::BidAccepted {
                round_id: envelope.round_id,
                lsn,
            },
            Err(err) => rejection(shared, &err),
        },
        Request::CommitRound { round_id, seed } => match ledger.commit_round(*round_id, *seed) {
            Ok(receipt) => Response::Committed(Box::new(receipt)),
            Err(err) => rejection(shared, &err),
        },
        Request::AbortRound { round_id } => match ledger.abort_round(*round_id) {
            Ok(lsn) => Response::Aborted {
                round_id: *round_id,
                lsn,
            },
            Err(err) => rejection(shared, &err),
        },
        Request::RoundStatus { round_id } => match ledger.round_status(*round_id) {
            Some(view) => Response::RoundStatus(view),
            // Streams share the id namespace; a status probe for a
            // streaming id answers with the stream view.
            None => match ledger.stream_status(*round_id) {
                Some(view) => Response::StreamStatus(view),
                None => rejection(shared, &RoundError::UnknownRound(*round_id)),
            },
        },
        Request::OpenStream { spec } => match ledger.open_stream(spec.clone()) {
            Ok(lsn) => Response::StreamOpened {
                round_id: spec.round.round_id,
                lsn,
                sample_target: spec.sample_target,
            },
            Err(err) => rejection(shared, &err),
        },
        Request::Arrive { envelope } => match ledger.stream_arrival(envelope, system_now_ms()) {
            Ok((decision, lsn)) => Response::ArrivalDecided {
                round_id: envelope.round_id,
                worker: envelope.worker,
                accepted: decision.accepted,
                payment: decision.payment,
                reason: decision.reason.to_string(),
                posted_price: decision.posted_price,
                lsn,
            },
            Err(err) => rejection(shared, &err),
        },
        Request::CloseStream { round_id } => match ledger.close_stream(*round_id) {
            Ok(receipt) => Response::StreamClosed(Box::new(receipt)),
            Err(err) => rejection(shared, &err),
        },
        _ => Response::Error {
            message: "internal: mis-routed request".to_string(),
        },
    }
}

fn answer_batch(shared: &Arc<Shared>, batch: Vec<Job>) {
    let Some(first) = batch.first() else {
        return;
    };
    let batched = batch.len() > 1;

    if let Some(key) = batch_key(&first.request) {
        // One schedule/PMF build serves the whole batch.
        let (instance, epsilon) = match &first.request {
            Request::RunAuction {
                instance, epsilon, ..
            }
            | Request::QueryPmf { instance, epsilon } => (instance.clone(), *epsilon),
            // `batch_key` returned Some, so this arm is unreachable.
            _ => return,
        };
        let built = shared.cache.get_or_build(key, || {
            DpHsrcAuction::new(epsilon)?
                .with_strategy(shared.config.strategy)
                .pmf(&instance)
        });
        for job in batch {
            let response = match &built {
                Err(err) => error_response(err),
                Ok((pmf, _hit)) => match &job.request {
                    Request::RunAuction { seed, .. } => {
                        let mut r = rng::seeded(*seed);
                        Response::Outcome(pmf.sample(&mut r))
                    }
                    Request::QueryPmf { .. } => Response::Pmf(PmfSummary {
                        prices: pmf.schedule().prices().to_vec(),
                        probs: pmf.probs().to_vec(),
                    }),
                    _ => Response::Error {
                        message: "internal: mis-routed request".to_string(),
                    },
                },
            };
            finish(shared, job, response, batched);
        }
        return;
    }

    for job in batch {
        let response = match &job.request {
            Request::RunResilientRound {
                instance,
                types,
                epsilon,
                plan,
                config,
                seed,
            } => match DpHsrcAuction::new(*epsilon) {
                Err(err) => error_response(&err),
                Ok(auction) => {
                    let auction = auction.with_strategy(shared.config.strategy);
                    let mut r = rng::seeded(*seed);
                    match run_round_resilient(instance, types, &auction, plan, config, &mut r) {
                        Ok(report) => Response::Round(Box::new(report)),
                        Err(err) => error_response(&err),
                    }
                }
            },
            Request::Health => {
                let (recovered_rounds, last_synced_lsn, wal_size_bytes) = shared
                    .durable
                    .as_ref()
                    .map(|d| {
                        let ledger = d.lock().expect("durable ledger poisoned");
                        (
                            ledger.recovery().recovered_rounds,
                            ledger.synced_lsn(),
                            ledger.wal_size_bytes(),
                        )
                    })
                    .unwrap_or((0, 0, 0));
                Response::Health(HealthReport {
                    workers: shared.config.workers.max(1),
                    queue_capacity: shared.config.queue_depth.max(1),
                    cache_entries: shared.cache.len(),
                    cache_capacity: shared.cache.capacity(),
                    draining: shared.draining.load(Ordering::SeqCst),
                    recovered_rounds,
                    last_synced_lsn,
                    wal_size_bytes,
                })
            }
            Request::Metrics => {
                let (wal_frames, wal_fsyncs) = shared
                    .durable
                    .as_ref()
                    .map(|d| {
                        let ledger = d.lock().expect("durable ledger poisoned");
                        (ledger.wal_frames(), ledger.wal_fsyncs())
                    })
                    .unwrap_or((0, 0));
                Response::Metrics(shared.metrics.report_with_wal(
                    shared.cache.hits(),
                    shared.cache.misses(),
                    wal_frames,
                    wal_fsyncs,
                ))
            }
            Request::OpenRound { .. }
            | Request::SubmitBid { .. }
            | Request::CommitRound { .. }
            | Request::AbortRound { .. }
            | Request::RoundStatus { .. }
            | Request::OpenStream { .. }
            | Request::Arrive { .. }
            | Request::CloseStream { .. } => answer_durable(shared, &job.request),
            _ => Response::Error {
                message: "internal: mis-routed request".to_string(),
            },
        };
        finish(shared, job, response, batched);
    }
}

fn finish(shared: &Arc<Shared>, job: Job, response: Response, batched: bool) {
    let errored = matches!(response, Response::Error { .. });
    shared.metrics.record(
        job.request.endpoint(),
        job.enqueued_at.elapsed(),
        batched,
        errored,
    );
    // A client that gave up (dropped its receiver) is not an error.
    let _ = job.reply.send(response);
}
