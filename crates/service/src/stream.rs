//! Long-lived streaming auction sessions.
//!
//! A stream is the service-side shape of the simulator's stage-sampling
//! online mechanism (`mcs_sim::online`): a round stays open across many
//! requests while workers arrive one by one, each getting an immediate,
//! irrevocable admit/reject decision at a posted price learned from the
//! first [`StreamSpec::sample_target`] arrivals (who are observed, never
//! paid). Admitted workers are paid the posted price on the spot, so
//! every accepted arrival is a durable payment obligation.
//!
//! [`StreamSession`] is a *pure deterministic fold*: its decisions depend
//! only on the spec and the arrival prefix, never on the clock or any
//! ambient randomness (the posted-price draw is seeded from
//! [`StreamSpec::seed`]). That determinism is what makes the session
//! recoverable — replaying the WAL's arrival events recomputes every
//! decision and cross-checks it against what the log recorded, so a
//! crashed service resumes the stream exactly where it stopped.
//!
//! The posted price is drawn from the exponential-mechanism PMF over the
//! sample schedule (the same ε-DP channel as the offline auction), and
//! the density threshold is the least dense selection-time gain of the
//! sample's greedy winner sequence at that price — mirroring
//! `mcs_sim::online::StageThreshold` decision for decision.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use mcs_auction::replay::{apply_coverage, greedy_sequence, marginal_coverage, selection_gains};
use mcs_auction::{ExponentialMechanism, ScheduleEngine, SelectionRule};
use mcs_num::rng;
use mcs_types::{Bid, CoverageView, Instance, McsError, Price, PriceGrid, SkillMatrix, WorkerId};

use mcs_sim::campaign::{RoundPhase, RoundState};

use crate::envelope::EnvelopeError;
use crate::ledger::{RoundError, RoundSpec};

/// Coverage slack mirroring the simulator's `COVER_EPS`.
const COVER_EPS: f64 = 1e-9;
/// Density slack mirroring the simulator's `DENSITY_EPS`.
const DENSITY_EPS: f64 = 1e-12;
/// Derivation stream of the posted-price draw — the same constant the
/// simulator's stage-sampling mechanism uses, so a stream fed the
/// simulator's timeline posts the simulator's price.
const STREAM_PRICE: u64 = 0x4F4E_4C50; // "ONLP"

/// Everything a streaming session needs before arrivals start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// The underlying round: roster, skills, error bounds, price grid,
    /// cost range, and the privacy budget ε of the posted-price draw.
    /// The stream shares the round id namespace.
    pub round: RoundSpec,
    /// How many arrivals are observed (and rejected, never paid) before
    /// the threshold is learned and posted.
    pub sample_target: usize,
    /// Seed of the ε-DP posted-price draw.
    pub seed: u64,
}

impl StreamSpec {
    /// Structural validation, run before the spec enters the log.
    ///
    /// # Errors
    ///
    /// [`RoundError::InvalidSpec`] naming the first problem found.
    pub fn validate(&self) -> Result<(), RoundError> {
        self.round.validate()?;
        if self.sample_target == 0 {
            return Err(RoundError::InvalidSpec(
                "sample_target is zero; the threshold needs an observed prefix".to_string(),
            ));
        }
        if self.sample_target >= self.round.roster.len() {
            return Err(RoundError::InvalidSpec(format!(
                "sample_target {} leaves no admissible arrival in a roster of {}",
                self.sample_target,
                self.round.roster.len()
            )));
        }
        Ok(())
    }
}

/// The learned posted-price threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
struct StreamThreshold {
    price: Price,
    density: f64,
    fallback: bool,
}

/// One arrival after admission, as the session remembers it.
#[derive(Debug, Clone, PartialEq)]
struct ArrivalRecord {
    worker: WorkerId,
    nonce: u64,
    expires_at_ms: u64,
    bid: Bid,
    signature: [u8; 64],
    accepted: bool,
    payment: Price,
}

/// The immediate decision for one stream arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamDecision {
    /// Whether the worker was admitted (and paid).
    pub accepted: bool,
    /// The payment made, [`Price::ZERO`] when rejected.
    pub payment: Price,
    /// Stable snake_case decision reason: `"accepted"`,
    /// `"sample_observed"`, `"coverage_met"`, `"quote_exceeded"`,
    /// `"not_needed"`, or `"below_density"`.
    pub reason: &'static str,
    /// The posted price, once the sample completed (`None` during the
    /// observation prefix).
    pub posted_price: Option<Price>,
}

impl StreamDecision {
    fn rejected(reason: &'static str, posted_price: Option<Price>) -> StreamDecision {
        StreamDecision {
            accepted: false,
            payment: Price::ZERO,
            reason,
            posted_price,
        }
    }
}

/// The durable result of closing a stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReceipt {
    /// The closed stream.
    pub round_id: u64,
    /// Total arrivals decided (observed prefix included).
    pub arrivals: usize,
    /// Admitted workers, ascending by id.
    pub accepted: Vec<WorkerId>,
    /// The posted price, if the sample completed before the close.
    pub posted_price: Option<Price>,
    /// Sum of all posted-price payments made.
    pub total_paid: Price,
    /// Whether the admitted set met the coverage requirements.
    pub covered: bool,
    /// LSN of the `StreamClosed` frame (or the highest synced LSN on an
    /// idempotent re-close).
    pub lsn: u64,
    /// `true` when the stream was already closed and this receipt is a
    /// replay of the recorded result.
    pub already_closed: bool,
}

/// A point-in-time view of one stream, as served over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStatusView {
    /// The stream.
    pub round_id: u64,
    /// `"streaming"`, `"closed"`, or `"aborted"`.
    pub phase: String,
    /// Arrivals decided so far.
    pub arrivals: usize,
    /// Size of the observation prefix.
    pub sample_target: usize,
    /// Admitted workers so far, ascending by id.
    pub accepted: Vec<WorkerId>,
    /// The posted price, once learned.
    pub posted_price: Option<Price>,
    /// Sum of payments made so far.
    pub total_paid: Price,
    /// Whether coverage is already met.
    pub covered: bool,
}

/// One live streaming session: the deterministic state machine folded
/// out of `StreamOpened` / `StreamArrival` / `StreamClosed` /
/// `StreamAborted` WAL events.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSession {
    spec: StreamSpec,
    arrivals: Vec<ArrivalRecord>,
    nonces: BTreeSet<(u32, u64)>,
    threshold: Option<StreamThreshold>,
    /// Residual coverage requirements; empty until the first arrival
    /// fixes the requirement vector (it depends only on the spec's error
    /// bounds, which every arrival instance shares).
    residual: Vec<f64>,
    remaining: f64,
    total_requirement: f64,
    paid_tenths: i64,
    /// The shared round lifecycle, in its streaming column
    /// (`Streaming → Closed | Aborted`).
    lifecycle: RoundState,
}

/// A one-worker instance carrying the round's task model, so the shared
/// replay kernels (`marginal_coverage`, `apply_coverage`) price this
/// arrival's contribution without re-deriving any coverage formula here.
fn arrival_instance(spec: &RoundSpec, skills: &[f64], bid: &Bid) -> Result<Instance, RoundError> {
    let infeasible = |e: McsError| RoundError::Infeasible(e.to_string());
    Instance::builder(spec.num_tasks)
        .bids([bid.clone()])
        .skills(SkillMatrix::from_rows(vec![skills.to_vec()]).map_err(infeasible)?)
        .error_bounds(spec.error_bounds.clone())
        .price_grid(
            PriceGrid::new(spec.price_min, spec.price_max, spec.price_step).map_err(infeasible)?,
        )
        .cost_range(spec.cost_min, spec.cost_max)
        .build()
        .map_err(infeasible)
}

/// The most permissive posted price when the sample cannot cover: the
/// grid maximum, with a zero density bar.
fn fallback_threshold(spec: &RoundSpec) -> StreamThreshold {
    let price = PriceGrid::new(spec.price_min, spec.price_max, spec.price_step)
        .map(|g| g.max())
        .unwrap_or(spec.price_max);
    StreamThreshold {
        price,
        density: 0.0,
        fallback: true,
    }
}

impl StreamSession {
    /// A fresh session for a validated spec.
    pub(crate) fn new(spec: StreamSpec) -> StreamSession {
        StreamSession {
            spec,
            arrivals: Vec::new(),
            nonces: BTreeSet::new(),
            threshold: None,
            residual: Vec::new(),
            remaining: 0.0,
            total_requirement: 0.0,
            paid_tenths: 0,
            lifecycle: RoundState::streaming(),
        }
    }

    /// The stream's specification.
    pub fn spec(&self) -> &StreamSpec {
        &self.spec
    }

    /// The stream's lifecycle phase name.
    pub fn phase_name(&self) -> &'static str {
        self.lifecycle.phase().name()
    }

    /// Whether the session still accepts arrivals.
    pub fn is_streaming(&self) -> bool {
        self.lifecycle.phase() == RoundPhase::Streaming
    }

    /// The posted price, once the observation prefix completed.
    pub fn posted_price(&self) -> Option<Price> {
        self.threshold.map(|t| t.price)
    }

    /// Whether the threshold fell back to the most permissive price
    /// because the sample could not cover the requirements.
    pub fn threshold_fallback(&self) -> Option<bool> {
        self.threshold.map(|t| t.fallback)
    }

    /// The stateful admission checks, in the same order as durable bid
    /// submission: phase, roster membership, nonce replay window, then
    /// one-arrival-per-worker.
    ///
    /// # Errors
    ///
    /// [`RoundError::RoundClosed`] or a typed [`RoundError::Envelope`].
    pub fn check_admissible(&self, worker: WorkerId, nonce: u64) -> Result<(), RoundError> {
        if !self.is_streaming() {
            return Err(RoundError::RoundClosed {
                round_id: self.spec.round.round_id,
                phase: self.phase_name().to_string(),
            });
        }
        if self.spec.round.roster_entry(worker).is_none() {
            return Err(EnvelopeError::UnknownWorker(worker).into());
        }
        if self.nonces.contains(&(worker.0, nonce)) {
            return Err(EnvelopeError::ReplayedNonce { worker, nonce }.into());
        }
        if self.arrivals.iter().any(|a| a.worker == worker) {
            return Err(EnvelopeError::DuplicateBid(worker).into());
        }
        Ok(())
    }

    /// Computes the decision this arrival would get, without mutating the
    /// session. Deterministic in `(spec, arrival prefix)` — the fold
    /// recomputes it on replay and cross-checks the log.
    ///
    /// # Errors
    ///
    /// [`RoundError::Infeasible`] when the bid cannot form an instance
    /// under the round's task model (out-of-range bundle or price).
    pub fn evaluate(&self, worker: WorkerId, bid: &Bid) -> Result<StreamDecision, RoundError> {
        let entry = self
            .spec
            .round
            .roster_entry(worker)
            .ok_or(RoundError::Envelope(EnvelopeError::UnknownWorker(worker)))?;
        let instance = arrival_instance(&self.spec.round, &entry.skills, bid)?;
        let cover = instance.sparse_coverage();
        let fresh;
        let residual: &[f64] = if self.residual.is_empty() {
            fresh = cover.requirements().to_vec();
            &fresh
        } else {
            &self.residual
        };
        let gain = marginal_coverage(&cover, WorkerId(0), residual);

        if self.arrivals.len() < self.spec.sample_target {
            return Ok(StreamDecision::rejected("sample_observed", None));
        }
        let t = self
            .threshold
            .expect("threshold is learned when the sample completes");
        let posted = Some(t.price);
        let decision = if self.remaining <= COVER_EPS {
            StreamDecision::rejected("coverage_met", posted)
        } else if bid.price() > t.price {
            StreamDecision::rejected("quote_exceeded", posted)
        } else if gain <= COVER_EPS {
            StreamDecision::rejected("not_needed", posted)
        } else if gain / t.price.as_f64().max(f64::MIN_POSITIVE) + DENSITY_EPS < t.density {
            StreamDecision::rejected("below_density", posted)
        } else {
            StreamDecision {
                accepted: true,
                payment: t.price,
                reason: "accepted",
                posted_price: posted,
            }
        };
        Ok(decision)
    }

    /// Folds one admissible, already-evaluated arrival into the session:
    /// records it, burns the nonce, applies coverage for accepts, and
    /// learns the threshold when the observation prefix completes.
    pub(crate) fn apply_arrival(
        &mut self,
        worker: WorkerId,
        nonce: u64,
        expires_at_ms: u64,
        bid: Bid,
        signature: [u8; 64],
        decision: &StreamDecision,
    ) {
        let skills = self
            .spec
            .round
            .roster_entry(worker)
            .expect("evaluate checked the roster")
            .skills
            .clone();
        if let Ok(instance) = arrival_instance(&self.spec.round, &skills, &bid) {
            let cover = instance.sparse_coverage();
            if self.residual.is_empty() {
                self.residual = cover.requirements().to_vec();
                self.total_requirement = self.residual.iter().map(|r| r.max(0.0)).sum();
                self.remaining = self.total_requirement;
            }
            if decision.accepted {
                apply_coverage(&cover, WorkerId(0), &mut self.residual, &mut self.remaining);
                self.paid_tenths += decision.payment.tenths();
            }
        }
        self.nonces.insert((worker.0, nonce));
        self.arrivals.push(ArrivalRecord {
            worker,
            nonce,
            expires_at_ms,
            bid,
            signature,
            accepted: decision.accepted,
            payment: decision.payment,
        });
        if self.arrivals.len() == self.spec.sample_target {
            self.threshold = Some(self.learn_threshold());
        }
    }

    /// Stage 1 of the OMG-style mechanism: build the sample pool's
    /// cheapest feasible schedule, draw the posted price from its ε-DP
    /// exponential-mechanism PMF (seeded, so replay redraws the same
    /// price), and bar admission below the least dense selection-time
    /// gain of the sample's greedy winner sequence at that price.
    fn learn_threshold(&self) -> StreamThreshold {
        let spec = &self.spec.round;
        let mut sample: Vec<&ArrivalRecord> =
            self.arrivals.iter().take(self.spec.sample_target).collect();
        // Dense worker indices follow roster-id order, as in the offline
        // commit path.
        sample.sort_by_key(|a| a.worker.0);
        let rows: Vec<Vec<f64>> = sample
            .iter()
            .map(|a| {
                spec.roster_entry(a.worker)
                    .expect("admission checked the roster")
                    .skills
                    .clone()
            })
            .collect();
        let Ok(grid) = PriceGrid::new(spec.price_min, spec.price_max, spec.price_step) else {
            return fallback_threshold(spec);
        };
        let built = Instance::builder(spec.num_tasks)
            .bids(sample.iter().map(|a| a.bid.clone()))
            .skills(match SkillMatrix::from_rows(rows) {
                Ok(skills) => skills,
                Err(_) => return fallback_threshold(spec),
            })
            .error_bounds(spec.error_bounds.clone())
            .price_grid(grid)
            .cost_range(spec.cost_min, spec.cost_max)
            .build();
        let Ok(instance) = built else {
            return fallback_threshold(spec);
        };
        let engine = ScheduleEngine::new(SelectionRule::MarginalCoverage);
        let Ok(schedule) = engine.build(&instance) else {
            return fallback_threshold(spec);
        };
        let Ok(mechanism) = ExponentialMechanism::for_instance(spec.epsilon, &instance) else {
            return fallback_threshold(spec);
        };
        let pmf = mechanism.pmf(schedule);
        let mut draw = rng::derived(self.spec.seed, STREAM_PRICE);
        let price = pmf.sample(&mut draw).price();

        let cover = instance.sparse_coverage();
        let requirements = cover.requirements().to_vec();
        let candidates: Vec<WorkerId> = (0..instance.num_workers() as u32)
            .map(WorkerId)
            .filter(|&w| instance.bids().bid(w).price() <= price)
            .collect();
        match greedy_sequence(&instance, &requirements, &candidates) {
            Ok(sequence) if !sequence.is_empty() => {
                let gains = selection_gains(&cover, &requirements, &sequence);
                let min_gain = gains.iter().fold(f64::INFINITY, |m, &g| m.min(g));
                StreamThreshold {
                    price,
                    density: min_gain / price.as_f64().max(f64::MIN_POSITIVE),
                    fallback: false,
                }
            }
            Ok(_) => StreamThreshold {
                price,
                density: 0.0,
                fallback: false,
            },
            Err(_) => fallback_threshold(spec),
        }
    }

    /// Transitions the session to closed.
    ///
    /// # Errors
    ///
    /// [`RoundError::RoundClosed`] unless the session is streaming.
    pub(crate) fn close(&mut self) -> Result<(), RoundError> {
        if self.lifecycle.advance(RoundPhase::Closed).is_err() {
            return Err(RoundError::RoundClosed {
                round_id: self.spec.round.round_id,
                phase: self.phase_name().to_string(),
            });
        }
        Ok(())
    }

    /// Transitions the session to aborted. Payments already made stand —
    /// an abort only stops further arrivals.
    ///
    /// # Errors
    ///
    /// [`RoundError::RoundClosed`] unless the session is streaming.
    pub(crate) fn abort(&mut self) -> Result<(), RoundError> {
        if self.lifecycle.advance(RoundPhase::Aborted).is_err() {
            return Err(RoundError::RoundClosed {
                round_id: self.spec.round.round_id,
                phase: self.phase_name().to_string(),
            });
        }
        Ok(())
    }

    /// Whether the session is already closed (for idempotent re-close).
    pub(crate) fn is_closed(&self) -> bool {
        self.lifecycle.phase() == RoundPhase::Closed
    }

    fn accepted_workers(&self) -> Vec<WorkerId> {
        let mut accepted: Vec<WorkerId> = self
            .arrivals
            .iter()
            .filter(|a| a.accepted)
            .map(|a| a.worker)
            .collect();
        accepted.sort_unstable();
        accepted
    }

    fn covered(&self) -> bool {
        !self.residual.is_empty() && self.remaining <= COVER_EPS
    }

    /// The durable close receipt at `lsn`.
    pub(crate) fn receipt(&self, lsn: u64, already_closed: bool) -> StreamReceipt {
        StreamReceipt {
            round_id: self.spec.round.round_id,
            arrivals: self.arrivals.len(),
            accepted: self.accepted_workers(),
            posted_price: self.posted_price(),
            total_paid: Price::from_tenths(self.paid_tenths),
            covered: self.covered(),
            lsn,
            already_closed,
        }
    }

    /// The wire view of this stream.
    pub fn view(&self) -> StreamStatusView {
        StreamStatusView {
            round_id: self.spec.round.round_id,
            phase: self.phase_name().to_string(),
            arrivals: self.arrivals.len(),
            sample_target: self.spec.sample_target,
            accepted: self.accepted_workers(),
            posted_price: self.posted_price(),
            total_paid: Price::from_tenths(self.paid_tenths),
            covered: self.covered(),
        }
    }

    /// Iterates the recorded arrivals as `(worker, nonce, expires_at_ms,
    /// bid, signature, accepted, payment)` for event re-emission.
    pub(crate) fn arrival_events(
        &self,
    ) -> impl Iterator<Item = (WorkerId, u64, u64, Bid, [u8; 64], bool, Price)> + '_ {
        self.arrivals.iter().map(|a| {
            (
                a.worker,
                a.nonce,
                a.expires_at_ms,
                a.bid.clone(),
                a.signature,
                a.accepted,
                a.payment,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::RosterEntry;
    use ed25519::{hex_encode, SigningKey};
    use mcs_types::{Bundle, TaskId};

    fn key_for(worker: u32) -> SigningKey {
        let mut seed = [0u8; 32];
        seed[..4].copy_from_slice(&worker.to_le_bytes());
        seed[31] = 0xA7;
        SigningKey::from_seed(seed)
    }

    fn stream_spec(round_id: u64, workers: u32, sample_target: usize) -> StreamSpec {
        StreamSpec {
            round: RoundSpec {
                round_id,
                num_tasks: 3,
                error_bounds: vec![0.8, 0.8, 0.8],
                price_min: Price::from_f64(1.0),
                price_max: Price::from_f64(30.0),
                price_step: Price::from_f64(1.0),
                cost_min: Price::from_f64(1.0),
                cost_max: Price::from_f64(30.0),
                epsilon: 0.5,
                roster: (0..workers)
                    .map(|w| RosterEntry {
                        worker: WorkerId(w),
                        public_key: hex_encode(&key_for(w).verifying_key().to_bytes()),
                        skills: vec![0.9, 0.9, 0.9],
                    })
                    .collect(),
            },
            sample_target,
            seed: 11,
        }
    }

    fn bid_for(worker: u32) -> Bid {
        Bid::new(
            Bundle::new(vec![TaskId(worker % 3), TaskId((worker + 1) % 3)]),
            Price::from_f64(2.0 + f64::from(worker)),
        )
    }

    fn feed(session: &mut StreamSession, worker: u32) -> StreamDecision {
        let bid = bid_for(worker);
        session
            .check_admissible(WorkerId(worker), u64::from(worker) + 1)
            .expect("admissible");
        let decision = session.evaluate(WorkerId(worker), &bid).expect("evaluated");
        session.apply_arrival(
            WorkerId(worker),
            u64::from(worker) + 1,
            1_000_000,
            bid,
            [0u8; 64],
            &decision,
        );
        decision
    }

    #[test]
    fn spec_validation_bounds_the_sample() {
        assert!(stream_spec(1, 6, 2).validate().is_ok());
        assert!(matches!(
            stream_spec(1, 6, 0).validate(),
            Err(RoundError::InvalidSpec(_))
        ));
        assert!(matches!(
            stream_spec(1, 6, 6).validate(),
            Err(RoundError::InvalidSpec(_))
        ));
    }

    #[test]
    fn sample_arrivals_are_observed_never_paid() {
        let mut session = StreamSession::new(stream_spec(1, 8, 3));
        for w in 0..3 {
            let d = feed(&mut session, w);
            assert!(!d.accepted);
            assert_eq!(d.reason, "sample_observed");
            assert_eq!(d.payment, Price::ZERO);
            assert_eq!(d.posted_price, None);
        }
        // The threshold exists the moment the sample completes.
        let posted = session.posted_price().expect("threshold learned");
        let d = feed(&mut session, 3);
        assert_eq!(d.posted_price, Some(posted));
        if d.accepted {
            assert_eq!(d.payment, posted, "admits pay exactly the posted price");
        }
    }

    #[test]
    fn replaying_the_same_prefix_reproduces_every_decision() {
        let spec = stream_spec(2, 8, 3);
        let mut a = StreamSession::new(spec.clone());
        let mut b = StreamSession::new(spec);
        for w in 0..8 {
            let da = feed(&mut a, w);
            let db = feed(&mut b, w);
            assert_eq!(da, db, "worker {w}");
        }
        assert_eq!(a, b);
        assert_eq!(a.view(), b.view());
    }

    #[test]
    fn admission_checks_are_typed_and_ordered() {
        let mut session = StreamSession::new(stream_spec(3, 4, 1));
        feed(&mut session, 0);
        // Unknown worker.
        assert!(matches!(
            session.check_admissible(WorkerId(9), 5),
            Err(RoundError::Envelope(EnvelopeError::UnknownWorker(
                WorkerId(9)
            )))
        ));
        // Replayed nonce (worker 0 used nonce 1).
        assert!(matches!(
            session.check_admissible(WorkerId(0), 1),
            Err(RoundError::Envelope(EnvelopeError::ReplayedNonce {
                worker: WorkerId(0),
                nonce: 1,
            }))
        ));
        // Second arrival by the same worker, fresh nonce.
        assert!(matches!(
            session.check_admissible(WorkerId(0), 99),
            Err(RoundError::Envelope(EnvelopeError::DuplicateBid(WorkerId(
                0
            ))))
        ));
        // Closed session refuses everything.
        session.close().expect("close");
        assert!(matches!(
            session.check_admissible(WorkerId(1), 2),
            Err(RoundError::RoundClosed { .. })
        ));
        assert!(session.close().is_err(), "double close is refused");
    }

    #[test]
    fn coverage_met_stops_further_admits() {
        let mut session = StreamSession::new(stream_spec(4, 12, 1));
        let mut accepted = 0;
        let mut saw_coverage_met = false;
        for w in 0..12 {
            let d = feed(&mut session, w);
            if d.accepted {
                accepted += 1;
            }
            if d.reason == "coverage_met" {
                saw_coverage_met = true;
            }
        }
        // δ_j = 0.8 requirements are coverable by a couple of 0.9-skill
        // workers; with 11 post-sample arrivals the round must fill up
        // and start refusing.
        assert!(accepted >= 1);
        assert!(saw_coverage_met, "coverage never filled in 12 arrivals");
        let view = session.view();
        assert!(view.covered);
        assert_eq!(
            view.total_paid.tenths(),
            session.posted_price().expect("posted").tenths() * i64::from(accepted)
        );
    }

    #[test]
    fn receipts_summarise_the_session() {
        let mut session = StreamSession::new(stream_spec(5, 8, 2));
        for w in 0..8 {
            feed(&mut session, w);
        }
        session.close().expect("close");
        let receipt = session.receipt(42, false);
        assert_eq!(receipt.round_id, 5);
        assert_eq!(receipt.arrivals, 8);
        assert_eq!(receipt.lsn, 42);
        assert!(!receipt.already_closed);
        assert!(receipt.accepted.windows(2).all(|w| w[0] < w[1]));
        let paid: i64 =
            receipt.posted_price.map(Price::tenths).unwrap_or(0) * receipt.accepted.len() as i64;
        assert_eq!(receipt.total_paid.tenths(), paid);
    }
}
