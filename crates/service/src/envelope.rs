//! Signed bid envelopes: worker-authenticated, replay-protected bids.
//!
//! A worker submits its bid wrapped in a [`BidEnvelope`] carrying the
//! round it targets, a fresh nonce, an expiry instant, and an ed25519
//! signature over a canonical byte encoding of all of it. The platform
//! verifies the signature against the public key the round's roster
//! registered for that worker *before* the bid is admitted (and before
//! anything reaches the write-ahead log), so a forged, altered, expired,
//! or replayed envelope never enters durable state.
//!
//! # Canonical signing bytes
//!
//! The signature covers this exact byte string — a domain-separation
//! tag followed by every envelope field in fixed little-endian layout,
//! with the bundle length-prefixed so no two distinct envelopes share
//! an encoding:
//!
//! ```text
//! "mcs-bid-envelope-v1"      (19 bytes)
//! round_id        u64 LE     (8)
//! worker          u32 LE     (4)
//! nonce           u64 LE     (8)
//! expires_at_ms   u64 LE     (8)
//! price           i64 LE     (8, tenths)
//! bundle length   u32 LE     (4)
//! each task id    u32 LE     (4 each, sorted — Bundle canonicalises)
//! ```
//!
//! The bytes are rebuilt from the parsed fields on the verifying side,
//! so JSON re-encoding differences (whitespace, field order) cannot
//! change what is signed.

use std::fmt;

use ed25519::{hex_decode, hex_encode, Signature, SigningKey, VerifyingKey};
use serde::{Deserialize, Serialize};

use mcs_types::{Bid, WorkerId};

/// Domain-separation tag prefixed to every signed byte string.
pub const ENVELOPE_DOMAIN: &[u8] = b"mcs-bid-envelope-v1";

/// A signed, replay-protected bid submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BidEnvelope {
    /// The durable round this bid targets.
    pub round_id: u64,
    /// The submitting worker's roster identity.
    pub worker: WorkerId,
    /// The bid itself (bundle + asking price).
    pub bid: Bid,
    /// A per-(round, worker) unique value; reusing one is a replay.
    pub nonce: u64,
    /// Unix-epoch milliseconds after which the envelope is invalid.
    pub expires_at_ms: u64,
    /// Hex-encoded 64-byte ed25519 signature over the canonical bytes.
    pub signature: String,
}

/// Why an envelope was refused at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// The worker is not on the round's roster.
    UnknownWorker(WorkerId),
    /// The roster's public key for this worker does not decode.
    BadKey(String),
    /// The signature is malformed or does not verify.
    BadSignature(String),
    /// The envelope's expiry instant has passed.
    Expired {
        /// The envelope's expiry (Unix ms).
        expires_at_ms: u64,
        /// The platform clock at admission (Unix ms).
        now_ms: u64,
    },
    /// This (worker, nonce) pair was already admitted in this round.
    ReplayedNonce {
        /// The replaying worker.
        worker: WorkerId,
        /// The reused nonce.
        nonce: u64,
    },
    /// The worker already has an admitted bid in this round.
    DuplicateBid(WorkerId),
}

impl EnvelopeError {
    /// Stable snake_case rejection code carried on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            EnvelopeError::UnknownWorker(_) => "unknown_worker",
            EnvelopeError::BadKey(_) => "bad_key",
            EnvelopeError::BadSignature(_) => "bad_signature",
            EnvelopeError::Expired { .. } => "expired",
            EnvelopeError::ReplayedNonce { .. } => "replayed_nonce",
            EnvelopeError::DuplicateBid(_) => "duplicate_bid",
        }
    }
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::UnknownWorker(w) => write!(f, "worker {} is not on the roster", w.0),
            EnvelopeError::BadKey(msg) => write!(f, "roster public key invalid: {msg}"),
            EnvelopeError::BadSignature(msg) => write!(f, "signature rejected: {msg}"),
            EnvelopeError::Expired {
                expires_at_ms,
                now_ms,
            } => write!(f, "envelope expired at {expires_at_ms} ms, now {now_ms} ms"),
            EnvelopeError::ReplayedNonce { worker, nonce } => {
                write!(f, "worker {} replayed nonce {nonce}", worker.0)
            }
            EnvelopeError::DuplicateBid(w) => {
                write!(f, "worker {} already bid in this round", w.0)
            }
        }
    }
}

impl std::error::Error for EnvelopeError {}

/// The canonical byte string an envelope's signature covers.
pub fn signing_bytes(
    round_id: u64,
    worker: WorkerId,
    bid: &Bid,
    nonce: u64,
    expires_at_ms: u64,
) -> Vec<u8> {
    let bundle = bid.bundle().as_slice();
    let mut out = Vec::with_capacity(ENVELOPE_DOMAIN.len() + 40 + 4 * bundle.len());
    out.extend_from_slice(ENVELOPE_DOMAIN);
    out.extend_from_slice(&round_id.to_le_bytes());
    out.extend_from_slice(&worker.0.to_le_bytes());
    out.extend_from_slice(&nonce.to_le_bytes());
    out.extend_from_slice(&expires_at_ms.to_le_bytes());
    out.extend_from_slice(&bid.price().tenths().to_le_bytes());
    out.extend_from_slice(&(bundle.len() as u32).to_le_bytes());
    for task in bundle {
        out.extend_from_slice(&task.0.to_le_bytes());
    }
    out
}

impl BidEnvelope {
    /// Builds and signs an envelope with the worker's key.
    pub fn sign(
        round_id: u64,
        worker: WorkerId,
        bid: Bid,
        nonce: u64,
        expires_at_ms: u64,
        key: &SigningKey,
    ) -> BidEnvelope {
        let bytes = signing_bytes(round_id, worker, &bid, nonce, expires_at_ms);
        let signature = hex_encode(&key.sign(&bytes).to_bytes());
        BidEnvelope {
            round_id,
            worker,
            bid,
            nonce,
            expires_at_ms,
            signature,
        }
    }

    /// Decodes the hex signature field into raw bytes.
    ///
    /// # Errors
    ///
    /// [`EnvelopeError::BadSignature`] when the field is not exactly
    /// 128 hex characters.
    pub fn signature_bytes(&self) -> Result<[u8; 64], EnvelopeError> {
        let bytes = hex_decode(&self.signature)
            .ok_or_else(|| EnvelopeError::BadSignature("signature is not valid hex".to_string()))?;
        <[u8; 64]>::try_from(bytes.as_slice()).map_err(|_| {
            EnvelopeError::BadSignature(format!(
                "signature is {} hex bytes, expected 64",
                self.signature.len() / 2
            ))
        })
    }

    /// Verifies expiry and signature against the roster key.
    ///
    /// Replay (nonce) and duplicate-bid checks need round state and live
    /// in the ledger; this covers the stateless checks.
    ///
    /// # Errors
    ///
    /// [`EnvelopeError::Expired`] or [`EnvelopeError::BadSignature`].
    pub fn verify(&self, key: &VerifyingKey, now_ms: u64) -> Result<(), EnvelopeError> {
        if now_ms > self.expires_at_ms {
            return Err(EnvelopeError::Expired {
                expires_at_ms: self.expires_at_ms,
                now_ms,
            });
        }
        let signature = Signature::from_bytes(&self.signature_bytes()?);
        let bytes = signing_bytes(
            self.round_id,
            self.worker,
            &self.bid,
            self.nonce,
            self.expires_at_ms,
        );
        key.verify(&bytes, &signature)
            .map_err(|e| EnvelopeError::BadSignature(e.to_string()))
    }
}

/// Decodes a roster entry's hex public key.
///
/// # Errors
///
/// [`EnvelopeError::BadKey`] when the hex is malformed, the wrong
/// length, or not a valid curve point.
pub fn decode_public_key(hex: &str) -> Result<VerifyingKey, EnvelopeError> {
    let bytes =
        hex_decode(hex).ok_or_else(|| EnvelopeError::BadKey("not valid hex".to_string()))?;
    let bytes = <[u8; 32]>::try_from(bytes.as_slice()).map_err(|_| {
        EnvelopeError::BadKey(format!("{} hex bytes, expected 32", bytes.len() / 2))
    })?;
    VerifyingKey::from_bytes(&bytes).map_err(|e| EnvelopeError::BadKey(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_types::{Bundle, Price, TaskId};

    fn test_key(tag: u8) -> SigningKey {
        let mut seed = [tag; 32];
        seed[0] = 0x5e;
        SigningKey::from_seed(seed)
    }

    fn bid() -> Bid {
        Bid::new(
            Bundle::new(vec![TaskId(2), TaskId(0)]),
            Price::from_tenths(135),
        )
    }

    #[test]
    fn sign_and_verify_round_trip() {
        let key = test_key(1);
        let env = BidEnvelope::sign(7, WorkerId(3), bid(), 99, 10_000, &key);
        env.verify(&key.verifying_key(), 5_000).expect("verifies");
    }

    #[test]
    fn any_field_tamper_breaks_the_signature() {
        let key = test_key(1);
        let good = BidEnvelope::sign(7, WorkerId(3), bid(), 99, 10_000, &key);
        let vk = key.verifying_key();
        let mut cases = Vec::new();
        let mut e = good.clone();
        e.round_id = 8;
        cases.push(e);
        let mut e = good.clone();
        e.worker = WorkerId(4);
        cases.push(e);
        let mut e = good.clone();
        e.nonce = 100;
        cases.push(e);
        let mut e = good.clone();
        e.expires_at_ms = 10_001;
        cases.push(e);
        let mut e = good.clone();
        e.bid = Bid::new(e.bid.bundle().clone(), Price::from_tenths(134));
        cases.push(e);
        let mut e = good.clone();
        e.bid = Bid::new(Bundle::new(vec![TaskId(0)]), e.bid.price());
        cases.push(e);
        for tampered in cases {
            assert!(
                matches!(
                    tampered.verify(&vk, 5_000),
                    Err(EnvelopeError::BadSignature(_))
                ),
                "tampered envelope accepted: {tampered:?}"
            );
        }
    }

    #[test]
    fn wrong_key_is_rejected() {
        let env = BidEnvelope::sign(7, WorkerId(3), bid(), 99, 10_000, &test_key(1));
        assert!(matches!(
            env.verify(&test_key(2).verifying_key(), 5_000),
            Err(EnvelopeError::BadSignature(_))
        ));
    }

    #[test]
    fn expiry_is_enforced_before_the_signature() {
        let key = test_key(1);
        let env = BidEnvelope::sign(7, WorkerId(3), bid(), 99, 10_000, &key);
        assert!(matches!(
            env.verify(&key.verifying_key(), 10_001),
            Err(EnvelopeError::Expired { .. })
        ));
        // Exactly at the deadline is still valid.
        env.verify(&key.verifying_key(), 10_000).expect("at expiry");
    }

    #[test]
    fn malformed_signature_and_key_hex_are_typed() {
        let key = test_key(1);
        let mut env = BidEnvelope::sign(7, WorkerId(3), bid(), 99, 10_000, &key);
        env.signature = "zz".repeat(64);
        assert!(matches!(
            env.verify(&key.verifying_key(), 0),
            Err(EnvelopeError::BadSignature(_))
        ));
        env.signature = "ab".repeat(63);
        assert!(matches!(
            env.verify(&key.verifying_key(), 0),
            Err(EnvelopeError::BadSignature(_))
        ));
        assert!(matches!(
            decode_public_key("not hex"),
            Err(EnvelopeError::BadKey(_))
        ));
        assert!(matches!(
            decode_public_key(&"ff".repeat(32)),
            Err(EnvelopeError::BadKey(_))
        ));
    }

    #[test]
    fn envelope_serde_round_trips() {
        let env = BidEnvelope::sign(7, WorkerId(3), bid(), 99, 10_000, &test_key(1));
        let json = serde_json::to_string(&env).expect("serialize");
        let back: BidEnvelope = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, env);
    }
}
