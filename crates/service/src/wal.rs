//! The write-ahead round log: length-prefixed, CRC32-checksummed frames
//! with monotonic LSNs, plus atomic snapshots.
//!
//! # On-disk layout
//!
//! `wal.log` is a 16-byte header followed by frames:
//!
//! ```text
//! header:  "MCSWAL01" (8)  base_lsn u64 LE (8)
//! frame:   len u32 LE | crc32 u32 LE | lsn u64 LE | payload (len bytes)
//! ```
//!
//! The CRC covers `lsn ‖ payload`, so a flipped bit anywhere in a frame
//! — length, checksum, LSN, or payload — is detected. LSNs start at
//! `base_lsn` and increase by exactly one per frame; the first frame
//! that fails any check (incomplete bytes, oversized length, checksum
//! mismatch, LSN discontinuity) ends the valid prefix, and recovery
//! truncates the file there. Everything before that point is
//! trustworthy because frames are written append-only and fsync'd at
//! commit points.
//!
//! `snapshot.bin` is written to a temporary name, fsync'd, and renamed
//! into place, so a crash mid-snapshot never clobbers the previous one:
//!
//! ```text
//! "MCSSNAP1" (8)  last_lsn u64 LE (8)  payload_len u64 LE (8)
//! crc32 u32 LE (4)  payload
//! ```
//!
//! Replay applies snapshot state first, then WAL frames with
//! `lsn > last_lsn` — which also makes log rotation crash-safe: if the
//! process dies between writing the snapshot and rotating the log, the
//! stale log's frames are all `≤ last_lsn` and are skipped.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use mcs_num::rng;
use rand::Rng;

/// File name of the round log inside a durability directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the snapshot inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

const WAL_MAGIC: [u8; 8] = *b"MCSWAL01";
const SNAPSHOT_MAGIC: [u8; 8] = *b"MCSSNAP1";
/// Header length of `wal.log` in bytes.
pub const WAL_HEADER_LEN: u64 = 16;
/// Per-frame header length (len + crc + lsn) in bytes.
pub const FRAME_HEADER_LEN: u64 = 16;
/// Upper bound on a single frame payload; a corrupted length field can
/// therefore never trigger a huge allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// A typed write-ahead-log failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(String),
    /// The log file exists but does not start with the WAL magic.
    BadMagic,
    /// The log header is inconsistent with the snapshot (or corrupt).
    BadHeader(String),
    /// The snapshot file exists but is corrupt or truncated.
    BadSnapshot(String),
    /// A frame payload failed event decoding during replay.
    BadEvent {
        /// LSN of the offending frame.
        lsn: u64,
        /// What failed to decode.
        detail: String,
    },
    /// A decoded event is illegal in the current ledger state.
    InvalidSequence {
        /// LSN of the offending frame (0 for snapshot payloads).
        lsn: u64,
        /// Which transition was illegal.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(msg) => write!(f, "wal I/O failure: {msg}"),
            WalError::BadMagic => write!(f, "wal file does not start with the MCSWAL01 magic"),
            WalError::BadHeader(msg) => write!(f, "wal header invalid: {msg}"),
            WalError::BadSnapshot(msg) => write!(f, "snapshot invalid: {msg}"),
            WalError::BadEvent { lsn, detail } => {
                write!(f, "undecodable event at lsn {lsn}: {detail}")
            }
            WalError::InvalidSequence { lsn, detail } => {
                write!(f, "illegal event sequence at lsn {lsn}: {detail}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(err: std::io::Error) -> Self {
        WalError::Io(err.to_string())
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320)

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 over a list of byte slices (IEEE polynomial, as used by zip/png).
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Scanning

/// One validated frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame's log sequence number.
    pub lsn: u64,
    /// The event payload bytes.
    pub payload: Vec<u8>,
}

/// Why scanning stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailDefect {
    /// The file ends inside a frame header or payload (torn write).
    Torn {
        /// Byte offset of the incomplete frame.
        offset: u64,
    },
    /// A frame's length field exceeds [`MAX_FRAME_LEN`].
    OversizedFrame {
        /// Byte offset of the frame.
        offset: u64,
        /// The claimed payload length.
        len: u32,
    },
    /// The stored CRC32 does not match the frame contents.
    BadChecksum {
        /// Byte offset of the frame.
        offset: u64,
        /// The LSN the frame claims.
        lsn: u64,
    },
    /// The frame's LSN is not the expected successor.
    NonMonotonicLsn {
        /// Byte offset of the frame.
        offset: u64,
        /// The LSN recovery expected next.
        expected: u64,
        /// The LSN found in the frame.
        found: u64,
    },
}

impl TailDefect {
    /// Byte offset at which the defect begins (= the valid prefix length).
    pub fn offset(&self) -> u64 {
        match self {
            TailDefect::Torn { offset }
            | TailDefect::OversizedFrame { offset, .. }
            | TailDefect::BadChecksum { offset, .. }
            | TailDefect::NonMonotonicLsn { offset, .. } => *offset,
        }
    }
}

/// The result of scanning a WAL byte image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// LSN of the first frame in this file.
    pub base_lsn: u64,
    /// All frames of the valid prefix, in order.
    pub frames: Vec<Frame>,
    /// Byte length of the valid prefix (header + whole valid frames).
    pub valid_len: u64,
    /// End offsets of the header and of each valid frame — every clean
    /// crash point, in ascending order. `boundaries[0] == 16`.
    pub boundaries: Vec<u64>,
    /// Why scanning stopped early, if it did.
    pub defect: Option<TailDefect>,
}

impl WalScan {
    /// The LSN the next appended frame must carry.
    pub fn next_lsn(&self) -> u64 {
        self.frames.last().map_or(self.base_lsn, |f| f.lsn + 1)
    }
}

/// Scans a WAL byte image, validating the header and every frame, and
/// locating the end of the trustworthy prefix.
///
/// # Errors
///
/// [`WalError::BadHeader`] when the image is shorter than a header and
/// [`WalError::BadMagic`] when the magic is wrong. Frame-level damage is
/// *not* an error: it ends the valid prefix and is reported as the
/// [`TailDefect`].
pub fn scan_bytes(bytes: &[u8]) -> Result<WalScan, WalError> {
    if bytes.len() < WAL_HEADER_LEN as usize {
        return Err(WalError::BadHeader(format!(
            "file is {} bytes, shorter than the {WAL_HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(WalError::BadMagic);
    }
    let base_lsn = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let mut frames = Vec::new();
    let mut boundaries = vec![WAL_HEADER_LEN];
    let mut offset = WAL_HEADER_LEN as usize;
    let mut expected_lsn = base_lsn;
    let mut defect = None;
    while offset < bytes.len() {
        if bytes.len() - offset < FRAME_HEADER_LEN as usize {
            defect = Some(TailDefect::Torn {
                offset: offset as u64,
            });
            break;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let lsn = u64::from_le_bytes(bytes[offset + 8..offset + 16].try_into().expect("8 bytes"));
        if len > MAX_FRAME_LEN {
            defect = Some(TailDefect::OversizedFrame {
                offset: offset as u64,
                len,
            });
            break;
        }
        let payload_start = offset + FRAME_HEADER_LEN as usize;
        let payload_end = payload_start + len as usize;
        if payload_end > bytes.len() {
            defect = Some(TailDefect::Torn {
                offset: offset as u64,
            });
            break;
        }
        let payload = &bytes[payload_start..payload_end];
        if crc32(&[&bytes[offset + 8..offset + 16], payload]) != crc {
            defect = Some(TailDefect::BadChecksum {
                offset: offset as u64,
                lsn,
            });
            break;
        }
        if lsn != expected_lsn {
            defect = Some(TailDefect::NonMonotonicLsn {
                offset: offset as u64,
                expected: expected_lsn,
                found: lsn,
            });
            break;
        }
        frames.push(Frame {
            lsn,
            payload: payload.to_vec(),
        });
        expected_lsn += 1;
        offset = payload_end;
        boundaries.push(offset as u64);
    }
    Ok(WalScan {
        base_lsn,
        valid_len: *boundaries.last().expect("boundaries start non-empty"),
        frames,
        boundaries,
        defect,
    })
}

/// Encodes one frame (header + payload) for the given LSN.
pub fn encode_frame(lsn: u64, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    let lsn_bytes = lsn.to_le_bytes();
    let crc = crc32(&[&lsn_bytes, payload]);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN as usize + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&lsn_bytes);
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------------
// Writer

/// How recovery opened (or created) the log file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOpenMode {
    /// The file did not exist (or held a torn header) and was created.
    Created,
    /// The file existed; `truncated_bytes` of invalid tail were cut.
    Recovered {
        /// Bytes removed from the tail (0 for a clean log).
        truncated_bytes: u64,
    },
}

/// An append-only writer over `wal.log`.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    next_lsn: u64,
    synced_lsn: u64,
    len_bytes: u64,
    frames_written: u64,
    fsyncs: u64,
}

impl WalWriter {
    /// Creates a fresh log at `path` whose first frame will carry
    /// `base_lsn`, fsyncing the header.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures as [`WalError::Io`].
    pub fn create(path: &Path, base_lsn: u64) -> Result<WalWriter, WalError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.write_all(&base_lsn.to_le_bytes())?;
        file.sync_data()?;
        sync_parent_dir(path)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            next_lsn: base_lsn,
            synced_lsn: base_lsn.saturating_sub(1),
            len_bytes: WAL_HEADER_LEN,
            frames_written: 0,
            fsyncs: 1,
        })
    }

    /// Opens an existing log for appending, scanning it and physically
    /// truncating any invalid tail. A missing file (or one shorter than
    /// the header — a crash during creation) is recreated fresh at
    /// `default_base_lsn`.
    ///
    /// # Errors
    ///
    /// [`WalError::BadMagic`] if the file starts with the wrong magic
    /// (refusing to silently wipe a log that may belong to something
    /// else), and [`WalError::Io`] on filesystem failures.
    pub fn open_recovering(
        path: &Path,
        default_base_lsn: u64,
    ) -> Result<(WalWriter, WalScan, WalOpenMode), WalError> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(err) => return Err(err.into()),
        };
        if bytes.len() < WAL_HEADER_LEN as usize {
            let writer = WalWriter::create(path, default_base_lsn)?;
            let scan = WalScan {
                base_lsn: default_base_lsn,
                frames: Vec::new(),
                valid_len: WAL_HEADER_LEN,
                boundaries: vec![WAL_HEADER_LEN],
                defect: None,
            };
            return Ok((writer, scan, WalOpenMode::Created));
        }
        let scan = scan_bytes(&bytes)?;
        let truncated = bytes.len() as u64 - scan.valid_len;
        let mut file = OpenOptions::new().write(true).read(true).open(path)?;
        if truncated > 0 {
            file.set_len(scan.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        let writer = WalWriter {
            file,
            path: path.to_path_buf(),
            next_lsn: scan.next_lsn(),
            synced_lsn: scan.next_lsn().saturating_sub(1),
            len_bytes: scan.valid_len,
            frames_written: 0,
            fsyncs: 0,
        };
        Ok((
            writer,
            scan,
            WalOpenMode::Recovered {
                truncated_bytes: truncated,
            },
        ))
    }

    /// Appends one event payload, returning its LSN. The frame is in the
    /// OS buffer only until [`WalWriter::sync`] runs.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on write failure (the in-memory LSN counter is
    /// not advanced in that case).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        let lsn = self.next_lsn;
        let frame = encode_frame(lsn, payload);
        self.file.write_all(&frame)?;
        self.next_lsn += 1;
        self.len_bytes += frame.len() as u64;
        self.frames_written += 1;
        Ok(lsn)
    }

    /// Forces everything appended so far to stable storage (the commit
    /// point of the protocol).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the fsync fails.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.synced_lsn = self.next_lsn.saturating_sub(1);
        Ok(())
    }

    /// The LSN the next append will use.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Highest LSN known to be on stable storage.
    pub fn synced_lsn(&self) -> u64 {
        self.synced_lsn
    }

    /// Current file length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Frames appended through this writer (excludes replayed ones).
    pub fn frames_written(&self) -> u64 {
        self.frames_written
    }

    /// Fsyncs performed by this writer.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn sync_parent_dir(path: &Path) -> Result<(), WalError> {
    if let Some(parent) = path.parent() {
        // Directory fsync is what makes a rename/create durable on
        // POSIX; harmless elsewhere.
        if let Ok(dir) = File::open(parent) {
            dir.sync_all()?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Snapshots

/// Atomically replaces the snapshot in `dir`: write to a temporary
/// name, fsync, rename over [`SNAPSHOT_FILE`], fsync the directory.
///
/// # Errors
///
/// [`WalError::Io`] on any filesystem failure.
pub fn write_snapshot(dir: &Path, last_lsn: u64, payload: &[u8]) -> Result<(), WalError> {
    let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let mut out = Vec::with_capacity(28 + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&last_lsn.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&[payload]).to_le_bytes());
    out.extend_from_slice(payload);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&out)?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    sync_parent_dir(&tmp)?;
    Ok(())
}

/// Reads the snapshot in `dir`, if any, returning `(last_lsn, payload)`.
///
/// # Errors
///
/// [`WalError::BadSnapshot`] when the file exists but is truncated,
/// mis-tagged, or fails its checksum — a snapshot is either wholly
/// trustworthy or refused.
pub fn read_snapshot(dir: &Path) -> Result<Option<(u64, Vec<u8>)>, WalError> {
    let path = dir.join(SNAPSHOT_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(err.into()),
    };
    if bytes.len() < 28 {
        return Err(WalError::BadSnapshot(format!(
            "{} bytes is shorter than the 28-byte header",
            bytes.len()
        )));
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(WalError::BadSnapshot("wrong magic".to_string()));
    }
    let last_lsn = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    let Some(payload) = bytes.get(28..28 + len) else {
        return Err(WalError::BadSnapshot(format!(
            "payload truncated: header claims {len} bytes, {} present",
            bytes.len() - 28
        )));
    };
    if crc32(&[payload]) != crc {
        return Err(WalError::BadSnapshot(
            "payload checksum mismatch".to_string(),
        ));
    }
    Ok(Some((last_lsn, payload.to_vec())))
}

// ---------------------------------------------------------------------------
// Crash plans

/// A seeded enumeration of crash points over a WAL image: every frame
/// boundary (clean crashes) plus `torn_per_frame` random offsets strictly
/// inside each frame (torn writes). Deterministic in the seed, so a
/// failing crash offset reproduces exactly.
#[derive(Debug, Clone)]
pub struct CrashPlan {
    /// Seed of the torn-offset stream.
    pub seed: u64,
    /// Torn (mid-frame) crash offsets sampled per frame.
    pub torn_per_frame: usize,
}

impl CrashPlan {
    /// A plan with the default two torn offsets per frame.
    pub fn new(seed: u64) -> CrashPlan {
        CrashPlan {
            seed,
            torn_per_frame: 2,
        }
    }

    /// All crash offsets for a file whose clean cut points are
    /// `boundaries` (as produced by [`scan_bytes`]), ascending and
    /// deduplicated. Includes offset 0 and a few sub-header offsets —
    /// a crash during log creation must also recover.
    pub fn crash_offsets(&self, boundaries: &[u64]) -> Vec<u64> {
        let mut stream = rng::derived(self.seed, 0xCA55);
        let mut offsets = vec![0u64, WAL_HEADER_LEN / 2];
        offsets.extend_from_slice(boundaries);
        for pair in boundaries.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            for _ in 0..self.torn_per_frame {
                if b > a + 1 {
                    offsets.push(stream.gen_range(a + 1..b));
                }
            }
        }
        offsets.sort_unstable();
        offsets.dedup();
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mcs-wal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn crc32_known_answer() {
        // The classic check value for "123456789".
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = temp_dir("roundtrip");
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::create(&path, 1).expect("create");
        for payload in [b"alpha".as_slice(), b"".as_slice(), b"gamma!".as_slice()] {
            w.append(payload).expect("append");
        }
        w.sync().expect("sync");
        assert_eq!(w.synced_lsn(), 3);
        let scan = scan_bytes(&std::fs::read(&path).expect("read")).expect("scan");
        assert_eq!(scan.base_lsn, 1);
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.frames[2].payload, b"gamma!");
        assert_eq!(scan.defect, None);
        assert_eq!(
            scan.valid_len,
            std::fs::metadata(&path).expect("meta").len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_on_reopen() {
        let dir = temp_dir("torn");
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::create(&path, 1).expect("create");
        w.append(b"keep me").expect("append");
        w.append(b"lose my tail").expect("append");
        w.sync().expect("sync");
        let full = std::fs::read(&path).expect("read");
        // Cut into the middle of the second frame.
        let clean = scan_bytes(&full).expect("scan").boundaries[1];
        std::fs::write(&path, &full[..(clean + 5) as usize]).expect("write torn");
        let (w2, scan, mode) = WalWriter::open_recovering(&path, 1).expect("reopen");
        assert_eq!(scan.frames.len(), 1);
        assert!(matches!(scan.defect, Some(TailDefect::Torn { .. })));
        assert_eq!(mode, WalOpenMode::Recovered { truncated_bytes: 5 });
        assert_eq!(w2.next_lsn(), 2);
        assert_eq!(
            std::fs::metadata(&path).expect("meta").len(),
            scan.valid_len
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_ends_the_valid_prefix() {
        let dir = temp_dir("flip");
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::create(&path, 7).expect("create");
        w.append(b"one").expect("append");
        w.append(b"two").expect("append");
        w.append(b"three").expect("append");
        w.sync().expect("sync");
        let mut bytes = std::fs::read(&path).expect("read");
        let scan = scan_bytes(&bytes).expect("scan");
        // Flip a payload byte of frame 2 (index 1).
        let off = scan.boundaries[1] as usize + FRAME_HEADER_LEN as usize;
        bytes[off] ^= 0x40;
        let damaged = scan_bytes(&bytes).expect("scan damaged");
        assert_eq!(damaged.frames.len(), 1);
        assert!(matches!(
            damaged.defect,
            Some(TailDefect::BadChecksum { lsn: 8, .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_length_field_is_bounded() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        let scan = scan_bytes(&bytes).expect("scan");
        assert!(matches!(
            scan.defect,
            Some(TailDefect::OversizedFrame { len, .. }) if len == MAX_FRAME_LEN + 1
        ));
        assert_eq!(scan.valid_len, WAL_HEADER_LEN);
    }

    #[test]
    fn snapshot_round_trip_and_corruption() {
        let dir = temp_dir("snap");
        assert_eq!(read_snapshot(&dir).expect("none yet"), None);
        write_snapshot(&dir, 41, b"state bytes").expect("write");
        assert_eq!(
            read_snapshot(&dir).expect("read"),
            Some((41, b"state bytes".to_vec()))
        );
        // Corrupt one payload byte: refused, typed.
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&path, &bytes).expect("write corrupt");
        assert!(matches!(read_snapshot(&dir), Err(WalError::BadSnapshot(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_plan_offsets_cover_boundaries_and_interiors() {
        let boundaries = vec![16u64, 40, 80];
        let plan = CrashPlan::new(9);
        let offsets = plan.crash_offsets(&boundaries);
        for b in &boundaries {
            assert!(offsets.contains(b));
        }
        assert!(offsets.iter().any(|o| (17..40).contains(o)));
        assert!(offsets.iter().any(|o| (41..80).contains(o)));
        assert_eq!(offsets, plan.crash_offsets(&boundaries), "deterministic");
    }
}
