//! Binary labels, observations, and the synthetic worker labelling model.

use std::fmt;
use std::ops::Neg;

use rand::Rng;
use serde::{DeError, Deserialize, Serialize, Value};

use mcs_types::{Bundle, SkillMatrix, TaskId, WorkerId};

/// A binary class label, `+1` or `−1`.
///
/// # Examples
///
/// ```
/// use mcs_agg::Label;
///
/// assert_eq!(Label::Pos.to_f64(), 1.0);
/// assert_eq!(-Label::Pos, Label::Neg);
/// assert_eq!(Label::from_sign(-0.3), Label::Neg);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// The `+1` class.
    Pos,
    /// The `−1` class.
    Neg,
}

impl Label {
    /// Returns `+1.0` or `−1.0`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        match self {
            Label::Pos => 1.0,
            Label::Neg => -1.0,
        }
    }

    /// Classifies a real number by sign; non-negative maps to `Pos`.
    ///
    /// Zero-sum ties resolve to `Pos`, matching the convention that
    /// `sign(0) = +1` in the aggregation rule.
    #[inline]
    pub fn from_sign(x: f64) -> Label {
        if x >= 0.0 {
            Label::Pos
        } else {
            Label::Neg
        }
    }

    /// Uniformly random label.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Label {
        if rng.gen_bool(0.5) {
            Label::Pos
        } else {
            Label::Neg
        }
    }
}

impl Neg for Label {
    type Output = Label;
    fn neg(self) -> Label {
        match self {
            Label::Pos => Label::Neg,
            Label::Neg => Label::Pos,
        }
    }
}

// Hand-written serde: the vendored derive does not support enums, and the
// signed-integer encoding (`1` / `-1`) matches the paper's ±1 label model.
impl Serialize for Label {
    fn to_value(&self) -> Value {
        match self {
            Label::Pos => 1i64.to_value(),
            Label::Neg => (-1i64).to_value(),
        }
    }
}

impl Deserialize for Label {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match i64::from_value(v)? {
            1 => Ok(Label::Pos),
            -1 => Ok(Label::Neg),
            other => Err(DeError::custom(format!(
                "label must be 1 or -1, got {other}"
            ))),
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Pos => write!(f, "+1"),
            Label::Neg => write!(f, "-1"),
        }
    }
}

/// One reported label: worker `i` says task `j` is `label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Observation {
    /// Reporting worker.
    pub worker: WorkerId,
    /// Labelled task.
    pub task: TaskId,
    /// The reported label `l_ij`.
    pub label: Label,
}

/// All collected labels, indexed per task.
///
/// # Examples
///
/// ```
/// use mcs_agg::{Label, LabelSet, Observation};
/// use mcs_types::{TaskId, WorkerId};
///
/// let mut set = LabelSet::new(2);
/// set.push(Observation { worker: WorkerId(0), task: TaskId(1), label: Label::Pos });
/// assert_eq!(set.for_task(TaskId(1)).len(), 1);
/// assert!(set.for_task(TaskId(0)).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LabelSet {
    per_task: Vec<Vec<(WorkerId, Label)>>,
}

impl LabelSet {
    /// Creates an empty label set over `num_tasks` tasks.
    pub fn new(num_tasks: usize) -> Self {
        LabelSet {
            per_task: vec![Vec::new(); num_tasks],
        }
    }

    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.per_task.len()
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics if the task id is out of range.
    pub fn push(&mut self, obs: Observation) {
        self.per_task[obs.task.index()].push((obs.worker, obs.label));
    }

    /// The labels reported for one task, as `(worker, label)` pairs.
    #[inline]
    pub fn for_task(&self, task: TaskId) -> &[(WorkerId, Label)] {
        &self.per_task[task.index()]
    }

    /// Iterates over every observation.
    pub fn iter(&self) -> impl Iterator<Item = Observation> + '_ {
        self.per_task.iter().enumerate().flat_map(|(j, labels)| {
            labels.iter().map(move |&(worker, label)| Observation {
                worker,
                task: TaskId(j as u32),
                label,
            })
        })
    }

    /// Total number of observations.
    pub fn len(&self) -> usize {
        self.per_task.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no labels were collected.
    pub fn is_empty(&self) -> bool {
        self.per_task.iter().all(Vec::is_empty)
    }
}

impl FromIterator<Observation> for LabelSet {
    fn from_iter<I: IntoIterator<Item = Observation>>(iter: I) -> Self {
        let obs: Vec<Observation> = iter.into_iter().collect();
        let num_tasks = obs.iter().map(|o| o.task.index() + 1).max().unwrap_or(0);
        let mut set = LabelSet::new(num_tasks);
        for o in obs {
            set.push(o);
        }
        set
    }
}

/// Simulates workers labelling their assigned bundles.
///
/// Worker `i` reports the true label of task `j` with probability
/// `θ_ij` and the flipped label otherwise — the exact noise model under
/// which Lemma 1 is derived. This replaces the real crowd of the paper's
/// deployment scenario with a synthetic equivalent exercising the same
/// aggregation path.
///
/// # Panics
///
/// Panics if `truth.len()` differs from the skill matrix's task count, or
/// an assignment references an out-of-range worker/task.
pub fn generate_labels<R: Rng + ?Sized>(
    skills: &SkillMatrix,
    truth: &[Label],
    assignment: &[(WorkerId, Bundle)],
    rng: &mut R,
) -> LabelSet {
    assert_eq!(
        truth.len(),
        skills.num_tasks(),
        "truth vector length must match the task count"
    );
    let mut set = LabelSet::new(skills.num_tasks());
    for (worker, bundle) in assignment {
        for task in bundle.iter() {
            let correct = rng.gen_bool(skills.theta(*worker, task));
            let label = if correct {
                truth[task.index()]
            } else {
                -truth[task.index()]
            };
            set.push(Observation {
                worker: *worker,
                task,
                label,
            });
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_num::rng;

    #[test]
    fn label_arithmetic() {
        assert_eq!(Label::Pos.to_f64(), 1.0);
        assert_eq!(Label::Neg.to_f64(), -1.0);
        assert_eq!(-Label::Neg, Label::Pos);
        assert_eq!(Label::from_sign(0.0), Label::Pos);
        assert_eq!(Label::from_sign(-1e-9), Label::Neg);
        assert_eq!(Label::Pos.to_string(), "+1");
    }

    #[test]
    fn label_set_indexes_by_task() {
        let mut set = LabelSet::new(3);
        set.push(Observation {
            worker: WorkerId(0),
            task: TaskId(2),
            label: Label::Neg,
        });
        set.push(Observation {
            worker: WorkerId(1),
            task: TaskId(2),
            label: Label::Pos,
        });
        assert_eq!(set.for_task(TaskId(2)).len(), 2);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.iter().count(), 2);
    }

    #[test]
    fn from_iterator_sizes_to_max_task() {
        let set: LabelSet = [Observation {
            worker: WorkerId(0),
            task: TaskId(4),
            label: Label::Pos,
        }]
        .into_iter()
        .collect();
        assert_eq!(set.num_tasks(), 5);
    }

    #[test]
    fn perfect_worker_always_correct() {
        let skills = SkillMatrix::from_rows(vec![vec![1.0, 1.0]]).unwrap();
        let truth = vec![Label::Pos, Label::Neg];
        let assignment = vec![(WorkerId(0), Bundle::new(vec![TaskId(0), TaskId(1)]))];
        let mut r = rng::seeded(5);
        let set = generate_labels(&skills, &truth, &assignment, &mut r);
        assert_eq!(set.for_task(TaskId(0)), &[(WorkerId(0), Label::Pos)]);
        assert_eq!(set.for_task(TaskId(1)), &[(WorkerId(0), Label::Neg)]);
    }

    #[test]
    fn anti_expert_always_flips() {
        let skills = SkillMatrix::from_rows(vec![vec![0.0]]).unwrap();
        let truth = vec![Label::Pos];
        let assignment = vec![(WorkerId(0), Bundle::new(vec![TaskId(0)]))];
        let mut r = rng::seeded(5);
        let set = generate_labels(&skills, &truth, &assignment, &mut r);
        assert_eq!(set.for_task(TaskId(0)), &[(WorkerId(0), Label::Neg)]);
    }

    #[test]
    fn accuracy_converges_to_theta() {
        let theta = 0.8;
        let skills = SkillMatrix::from_rows(vec![vec![theta]]).unwrap();
        let truth = vec![Label::Pos];
        let assignment = vec![(WorkerId(0), Bundle::new(vec![TaskId(0)]))];
        let mut r = rng::seeded(11);
        let trials = 20_000;
        let correct = (0..trials)
            .filter(|_| {
                let set = generate_labels(&skills, &truth, &assignment, &mut r);
                set.for_task(TaskId(0))[0].1 == Label::Pos
            })
            .count();
        let rate = correct as f64 / trials as f64;
        assert!((rate - theta).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    #[should_panic(expected = "truth vector length")]
    fn truth_length_mismatch_panics() {
        let skills = SkillMatrix::from_rows(vec![vec![0.5, 0.5]]).unwrap();
        let mut r = rng::seeded(0);
        let _ = generate_labels(&skills, &[Label::Pos], &[], &mut r);
    }
}
