//! Empirical verification of Lemma 1's aggregation-error bound.

use rand::Rng;

use mcs_types::{Bundle, SkillMatrix, TaskId, WorkerId};

use crate::labels::{generate_labels, Label};
use crate::weighted::weighted_aggregate;

/// The coverage threshold `Q_j = 2 ln(1/δ_j)` of Lemma 1.
///
/// # Panics
///
/// Panics if `delta` is outside the open interval `(0, 1)`.
///
/// # Examples
///
/// ```
/// use mcs_agg::lemma1_threshold;
///
/// let q = lemma1_threshold(0.1);
/// assert!((q - 2.0 * (10.0f64).ln()).abs() < 1e-12);
/// ```
pub fn lemma1_threshold(delta: f64) -> f64 {
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must lie in the open interval (0, 1)"
    );
    2.0 * (1.0 / delta).ln()
}

/// Per-task outcome of a Monte-Carlo error-rate measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorRateReport {
    /// Empirical `Pr[l̂_j ≠ l_j]` per task.
    pub error_rates: Vec<f64>,
    /// The coverage `Σ (2θ_ij − 1)²` each task received from the winners.
    pub coverages: Vec<f64>,
    /// Number of Monte-Carlo rounds.
    pub trials: usize,
}

impl ErrorRateReport {
    /// Whether every task's empirical error is within its bound `δ_j`,
    /// allowing `slack` for Monte-Carlo noise.
    pub fn within_bounds(&self, deltas: &[f64], slack: f64) -> bool {
        self.error_rates
            .iter()
            .zip(deltas)
            .all(|(e, d)| *e <= *d + slack)
    }
}

/// Measures the aggregation error of a winner assignment by Monte-Carlo.
///
/// Each trial draws fresh true labels uniformly, simulates the winners
/// labelling their bundles under the skill model, aggregates with the
/// Lemma 1 rule, and counts per-task mistakes. Tasks that receive no labels
/// count as errors with probability 0.5 (a coin-flip platform guess).
///
/// # Panics
///
/// Panics if `trials` is zero or assignments reference out-of-range ids.
pub fn empirical_error_rate<R: Rng + ?Sized>(
    skills: &SkillMatrix,
    assignment: &[(WorkerId, Bundle)],
    trials: usize,
    rng: &mut R,
) -> ErrorRateReport {
    assert!(trials > 0, "at least one trial is required");
    let k = skills.num_tasks();
    let mut errors = vec![0.0f64; k];
    for _ in 0..trials {
        let truth: Vec<Label> = (0..k).map(|_| Label::random(rng)).collect();
        let labels = generate_labels(skills, &truth, assignment, rng);
        let estimates = weighted_aggregate(&labels, skills, k);
        for j in 0..k {
            match estimates[j] {
                Some(l) if l == truth[j] => {}
                Some(_) => errors[j] += 1.0,
                None => errors[j] += 0.5,
            }
        }
    }
    let error_rates = errors.iter().map(|e| e / trials as f64).collect();
    let coverages = (0..k)
        .map(|j| {
            let t = TaskId(j as u32);
            assignment
                .iter()
                .filter(|(_, b)| b.contains(t))
                .map(|(w, _)| {
                    let a = skills.alpha(*w, t);
                    a * a
                })
                .sum()
        })
        .collect();
    ErrorRateReport {
        error_rates,
        coverages,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_num::rng;

    #[test]
    fn threshold_matches_formula() {
        let q = lemma1_threshold(0.15);
        assert!((q - 2.0 * (1.0f64 / 0.15).ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "open interval")]
    fn threshold_rejects_one() {
        let _ = lemma1_threshold(1.0);
    }

    #[test]
    fn satisfied_constraint_meets_bound() {
        // Three 0.9-skill workers on one task: coverage 3·0.64 = 1.92 ≥
        // 2 ln(1/δ) for δ = 0.4 (threshold ≈ 1.83). Empirical error must be
        // ≤ 0.4 with margin.
        let skills = SkillMatrix::from_rows(vec![vec![0.9]; 3]).unwrap();
        let bundle = Bundle::new(vec![TaskId(0)]);
        let assignment: Vec<(WorkerId, Bundle)> =
            (0..3).map(|i| (WorkerId(i), bundle.clone())).collect();
        let mut r = rng::seeded(99);
        let report = empirical_error_rate(&skills, &assignment, 4000, &mut r);
        assert!(report.coverages[0] >= lemma1_threshold(0.4));
        assert!(report.within_bounds(&[0.4], 0.02));
        // The bound is loose: actual error of 3 × θ=0.9 under weighted
        // vote is far below 0.4.
        assert!(report.error_rates[0] < 0.1);
    }

    #[test]
    fn uncovered_task_flips_coins() {
        let skills = SkillMatrix::from_rows(vec![vec![0.9, 0.9]]).unwrap();
        // Worker only labels task 0; task 1 gets no labels.
        let assignment = vec![(WorkerId(0), Bundle::new(vec![TaskId(0)]))];
        let mut r = rng::seeded(5);
        let report = empirical_error_rate(&skills, &assignment, 100, &mut r);
        assert_eq!(report.error_rates[1], 0.5);
        assert_eq!(report.coverages[1], 0.0);
    }

    #[test]
    fn anti_experts_are_as_good_as_experts() {
        let expert = SkillMatrix::from_rows(vec![vec![0.9]; 3]).unwrap();
        let anti = SkillMatrix::from_rows(vec![vec![0.1]; 3]).unwrap();
        let bundle = Bundle::new(vec![TaskId(0)]);
        let assignment: Vec<(WorkerId, Bundle)> =
            (0..3).map(|i| (WorkerId(i), bundle.clone())).collect();
        let mut r1 = rng::seeded(7);
        let mut r2 = rng::seeded(7);
        let e = empirical_error_rate(&expert, &assignment, 5000, &mut r1);
        let a = empirical_error_rate(&anti, &assignment, 5000, &mut r2);
        assert!((e.error_rates[0] - a.error_rates[0]).abs() < 0.02);
        assert!((e.coverages[0] - a.coverages[0]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let skills = SkillMatrix::from_rows(vec![vec![0.9]]).unwrap();
        let mut r = rng::seeded(0);
        let _ = empirical_error_rate(&skills, &[], 0, &mut r);
    }
}
