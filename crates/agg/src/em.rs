//! Dawid–Skene EM estimation of worker accuracies for binary tasks.
//!
//! When the platform has no ground truth, it can still estimate worker
//! skills from redundancy: workers who agree with the (soft) consensus are
//! likely accurate. This is the binary one-parameter-per-worker
//! Dawid–Skene model, one of the truth-discovery style estimators the paper
//! cites for maintaining the skill record `θ`.

use mcs_types::WorkerId;

use crate::estimate::{EstimateError, EstimateSource, SkillEstimate};
use crate::labels::{Label, LabelSet};

/// Configuration for the EM fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DawidSkene {
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the largest accuracy change per iteration.
    pub tolerance: f64,
    /// Accuracies are clamped to `[clamp, 1 − clamp]` to keep likelihoods
    /// finite (a worker with empirical accuracy exactly 1 would otherwise
    /// produce infinite log-odds).
    pub clamp: f64,
}

impl Default for DawidSkene {
    fn default() -> Self {
        DawidSkene {
            max_iterations: 100,
            tolerance: 1e-6,
            clamp: 1e-3,
        }
    }
}

/// The result of an EM fit.
#[derive(Debug, Clone, PartialEq)]
pub struct DawidSkeneFit {
    /// Estimated accuracy per worker (probability of reporting the true
    /// label), `0.5` for workers with no observations.
    pub accuracies: Vec<f64>,
    /// Posterior probability that each task's true label is `+1`.
    pub posterior_pos: Vec<f64>,
    /// Number of observations each worker contributed to the fit.
    pub observations: Vec<u64>,
    /// Iterations actually run.
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

impl DawidSkeneFit {
    /// Hard-decision labels from the posteriors (ties to `+1`).
    pub fn map_labels(&self) -> Vec<Label> {
        self.posterior_pos
            .iter()
            .map(|&p| Label::from_sign(p - 0.5 + f64::EPSILON))
            .collect()
    }

    /// Estimated accuracy of one worker.
    pub fn accuracy(&self, worker: WorkerId) -> f64 {
        self.accuracies[worker.index()]
    }

    /// Typed estimate of one worker: the EM accuracy plus the evidence
    /// behind it, in the shared [`SkillEstimate`] shape.
    ///
    /// # Errors
    ///
    /// * [`EstimateError::WorkerOutOfRange`] — `worker` is outside the
    ///   fitted pool.
    /// * [`EstimateError::NoObservations`] — the worker contributed no
    ///   labels; her `0.5` is the prior, not an estimate.
    pub fn estimate(&self, worker: WorkerId) -> Result<SkillEstimate, EstimateError> {
        let i = worker.index();
        if i >= self.accuracies.len() {
            return Err(EstimateError::WorkerOutOfRange {
                worker,
                num_workers: self.accuracies.len(),
            });
        }
        let n = self.observations.get(i).copied().unwrap_or(0);
        if n == 0 {
            return Err(EstimateError::NoObservations { worker });
        }
        Ok(SkillEstimate::new(
            self.accuracies[i],
            n as f64,
            EstimateSource::Em,
        ))
    }
}

impl DawidSkene {
    /// Fits the model to a label set with `num_workers` workers.
    ///
    /// Initialization uses majority-vote posteriors; the E-step computes
    /// label posteriors from current accuracies, the M-step re-estimates
    /// accuracies as posterior-weighted agreement rates.
    ///
    /// # Panics
    ///
    /// Panics if an observation references `worker ≥ num_workers`.
    pub fn fit(&self, labels: &LabelSet, num_workers: usize) -> DawidSkeneFit {
        let num_tasks = labels.num_tasks();
        // Initialize posteriors from vote fractions.
        let mut posterior_pos: Vec<f64> = (0..num_tasks)
            .map(|j| {
                let reports = labels.for_task(mcs_types::TaskId(j as u32));
                if reports.is_empty() {
                    return 0.5;
                }
                let pos = reports.iter().filter(|&&(_, l)| l == Label::Pos).count();
                pos as f64 / reports.len() as f64
            })
            .collect();
        let mut accuracies = vec![0.5; num_workers];
        let mut observations = vec![0u64; num_workers];
        for obs in labels.iter() {
            let w = obs.worker.index();
            assert!(w < num_workers, "observation references unknown worker");
            observations[w] += 1;
        }
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iterations {
            iterations += 1;
            // M-step: accuracy = posterior-weighted agreement.
            let mut agree = vec![0.0f64; num_workers];
            let mut total = vec![0.0f64; num_workers];
            for obs in labels.iter() {
                let w = obs.worker.index();
                assert!(w < num_workers, "observation references unknown worker");
                let p_pos = posterior_pos[obs.task.index()];
                let p_agree = match obs.label {
                    Label::Pos => p_pos,
                    Label::Neg => 1.0 - p_pos,
                };
                agree[w] += p_agree;
                total[w] += 1.0;
            }
            let mut max_change = 0.0f64;
            for w in 0..num_workers {
                let new_acc = if total[w] > 0.0 {
                    (agree[w] / total[w]).clamp(self.clamp, 1.0 - self.clamp)
                } else {
                    0.5
                };
                max_change = max_change.max((new_acc - accuracies[w]).abs());
                accuracies[w] = new_acc;
            }

            // E-step: posterior ∝ prior · Π p(label | truth), uniform prior.
            for (j, post) in posterior_pos.iter_mut().enumerate() {
                let reports = labels.for_task(mcs_types::TaskId(j as u32));
                if reports.is_empty() {
                    *post = 0.5;
                    continue;
                }
                // Log-odds of the +1 class.
                let log_odds: f64 = reports
                    .iter()
                    .map(|&(w, l)| {
                        let a = accuracies[w.index()];
                        let ratio = (a / (1.0 - a)).ln();
                        match l {
                            Label::Pos => ratio,
                            Label::Neg => -ratio,
                        }
                    })
                    .sum();
                *post = 1.0 / (1.0 + (-log_odds).exp());
            }

            if max_change < self.tolerance {
                converged = true;
                break;
            }
        }

        DawidSkeneFit {
            accuracies,
            posterior_pos,
            observations,
            iterations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{generate_labels, Observation};
    use mcs_num::rng;
    use mcs_types::{Bundle, SkillMatrix, TaskId};
    use rand::Rng;

    #[test]
    fn recovers_accuracies_with_redundancy() {
        // 5 workers with known accuracies label 200 tasks each.
        let theta = [0.95, 0.85, 0.75, 0.65, 0.55];
        let k = 200usize;
        let rows: Vec<Vec<f64>> = theta.iter().map(|&t| vec![t; k]).collect();
        let skills = SkillMatrix::from_rows(rows).unwrap();
        let mut r = rng::seeded(10);
        let truth: Vec<Label> = (0..k).map(|_| Label::random(&mut r)).collect();
        let all_tasks = Bundle::new((0..k as u32).map(TaskId).collect());
        let assignment: Vec<(WorkerId, Bundle)> =
            (0..5).map(|i| (WorkerId(i), all_tasks.clone())).collect();
        let labels = generate_labels(&skills, &truth, &assignment, &mut r);

        let fit = DawidSkene::default().fit(&labels, 5);
        assert!(fit.converged, "EM did not converge");
        for (w, &t) in theta.iter().enumerate() {
            let est = fit.accuracies[w];
            assert!(
                (est - t).abs() < 0.08,
                "worker {w}: estimated {est}, true {t}"
            );
        }
        // MAP labels should be overwhelmingly correct.
        let map = fit.map_labels();
        let correct = map.iter().zip(&truth).filter(|(a, b)| a == b).count();
        assert!(correct as f64 / k as f64 > 0.95);
    }

    #[test]
    fn worker_without_labels_stays_at_half() {
        let labels: LabelSet = [Observation {
            worker: WorkerId(0),
            task: TaskId(0),
            label: Label::Pos,
        }]
        .into_iter()
        .collect();
        let fit = DawidSkene::default().fit(&labels, 2);
        assert_eq!(fit.accuracies[1], 0.5);
        assert_eq!(fit.observations, vec![1, 0]);
        // The typed accessor refuses to dress the prior up as an estimate.
        assert!(matches!(
            fit.estimate(WorkerId(1)),
            Err(crate::EstimateError::NoObservations {
                worker: WorkerId(1)
            })
        ));
        assert!(matches!(
            fit.estimate(WorkerId(7)),
            Err(crate::EstimateError::WorkerOutOfRange { num_workers: 2, .. })
        ));
        let est = fit.estimate(WorkerId(0)).unwrap();
        assert_eq!(est.observations, 1.0);
        assert_eq!(est.source, crate::EstimateSource::Em);
        assert_eq!(est.accuracy, fit.accuracies[0]);
    }

    #[test]
    fn empty_label_set_is_uninformative() {
        let fit = DawidSkene::default().fit(&LabelSet::new(3), 2);
        assert_eq!(fit.accuracies, vec![0.5, 0.5]);
        assert_eq!(fit.posterior_pos, vec![0.5; 3]);
    }

    #[test]
    fn accuracies_are_clamped() {
        // One worker, one task: empirical agreement is 1.0; must clamp.
        let labels: LabelSet = [Observation {
            worker: WorkerId(0),
            task: TaskId(0),
            label: Label::Pos,
        }]
        .into_iter()
        .collect();
        let ds = DawidSkene::default();
        let fit = ds.fit(&labels, 1);
        assert!(fit.accuracies[0] <= 1.0 - ds.clamp + 1e-12);
    }

    #[test]
    fn iteration_cap_respected() {
        let mut r = rng::seeded(3);
        let labels: LabelSet = (0..20)
            .map(|j| Observation {
                worker: WorkerId(j % 4),
                task: TaskId(j / 4),
                label: if r.gen_bool(0.5) {
                    Label::Pos
                } else {
                    Label::Neg
                },
            })
            .collect();
        let fit = DawidSkene {
            max_iterations: 2,
            tolerance: 0.0,
            ..Default::default()
        }
        .fit(&labels, 4);
        assert_eq!(fit.iterations, 2);
        assert!(!fit.converged);
    }
}
