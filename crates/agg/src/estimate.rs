//! The common currency of skill estimation.
//!
//! The platform has two ways of learning a worker's accuracy θ — the
//! unsupervised Dawid–Skene EM ([`crate::DawidSkene`]) and supervised
//! gold-task scoring ([`crate::estimate_skills_from_gold`]) — and before
//! this module they returned incompatible shapes (a bare `f64` vs a full
//! [`SkillMatrix`](mcs_types::SkillMatrix)). [`SkillEstimate`] is the
//! shared result type both paths now speak: an accuracy plus how much
//! evidence backs it, so downstream consumers (the campaign skill tracker,
//! reputation gating) can weigh estimates instead of trusting them
//! blindly.

use std::fmt;

use mcs_types::WorkerId;

/// Where a [`SkillEstimate`]'s accuracy came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateSource {
    /// Unsupervised Dawid–Skene EM over redundant labels.
    Em,
    /// Supervised scoring on gold (known-answer) tasks.
    Gold,
    /// A confidence-weighted blend of EM and gold evidence.
    Blended,
}

/// One worker's estimated accuracy, with the evidence behind it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkillEstimate {
    /// Estimated probability of reporting the true label.
    pub accuracy: f64,
    /// Effective number of observations backing the estimate. For EM this
    /// is the (possibly forgetting-discounted) label count; for gold tasks
    /// the number of gold answers.
    pub observations: f64,
    /// Evidence weight in `[0, 1)`: `n / (n + 2)`, the share a Laplace
    /// posterior puts on the data rather than the uniform prior. Zero
    /// observations ⇒ zero confidence.
    pub confidence: f64,
    /// Which estimation path produced the accuracy.
    pub source: EstimateSource,
}

impl SkillEstimate {
    /// Builds an estimate, deriving confidence from the observation count.
    pub fn new(accuracy: f64, observations: f64, source: EstimateSource) -> Self {
        let n = observations.max(0.0);
        SkillEstimate {
            accuracy,
            observations: n,
            confidence: n / (n + 2.0),
            source,
        }
    }

    /// Confidence-weighted blend of two estimates (e.g. EM ⊕ gold). The
    /// result's observation mass is the sum of the inputs'.
    pub fn blend(&self, other: &SkillEstimate) -> SkillEstimate {
        let total = self.observations + other.observations;
        if total <= 0.0 {
            return SkillEstimate::new(
                0.5 * (self.accuracy + other.accuracy),
                0.0,
                EstimateSource::Blended,
            );
        }
        let accuracy =
            (self.accuracy * self.observations + other.accuracy * other.observations) / total;
        SkillEstimate::new(accuracy, total, EstimateSource::Blended)
    }
}

/// Typed failure of a per-worker estimate query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateError {
    /// The worker produced no observations on the relevant channel, so no
    /// estimate beyond the uninformative prior exists.
    NoObservations {
        /// The silent worker.
        worker: WorkerId,
    },
    /// The worker id is outside the fitted pool.
    WorkerOutOfRange {
        /// The out-of-range worker.
        worker: WorkerId,
        /// Number of workers the fit covers.
        num_workers: usize,
    },
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::NoObservations { worker } => {
                write!(f, "worker {worker} has no observations to estimate from")
            }
            EstimateError::WorkerOutOfRange {
                worker,
                num_workers,
            } => write!(
                f,
                "worker {worker} is outside the fitted pool of {num_workers}"
            ),
        }
    }
}

impl std::error::Error for EstimateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_grows_with_evidence() {
        let none = SkillEstimate::new(0.5, 0.0, EstimateSource::Em);
        let some = SkillEstimate::new(0.8, 10.0, EstimateSource::Em);
        assert_eq!(none.confidence, 0.0);
        assert!((some.confidence - 10.0 / 12.0).abs() < 1e-12);
        assert!(some.confidence > none.confidence);
    }

    #[test]
    fn blend_is_observation_weighted() {
        let em = SkillEstimate::new(0.9, 30.0, EstimateSource::Em);
        let gold = SkillEstimate::new(0.6, 10.0, EstimateSource::Gold);
        let b = em.blend(&gold);
        assert_eq!(b.source, EstimateSource::Blended);
        assert!((b.accuracy - (0.9 * 30.0 + 0.6 * 10.0) / 40.0).abs() < 1e-12);
        assert_eq!(b.observations, 40.0);
    }

    #[test]
    fn blend_of_empty_estimates_stays_prior() {
        let a = SkillEstimate::new(0.5, 0.0, EstimateSource::Em);
        let b = SkillEstimate::new(0.5, 0.0, EstimateSource::Gold);
        let c = a.blend(&b);
        assert_eq!(c.accuracy, 0.5);
        assert_eq!(c.confidence, 0.0);
    }

    #[test]
    fn errors_render() {
        let e = EstimateError::NoObservations {
            worker: WorkerId(3),
        };
        assert!(e.to_string().contains("no observations"));
        let e = EstimateError::WorkerOutOfRange {
            worker: WorkerId(9),
            num_workers: 4,
        };
        assert!(e.to_string().contains("outside"));
    }
}
