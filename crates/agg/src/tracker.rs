//! Online skill tracking across campaign rounds.
//!
//! A deployed platform never sees θ; it sees one round of labels at a
//! time. [`SkillTracker`] maintains the platform's running estimate θ̂:
//!
//! * **Warm-restarted Dawid–Skene EM** — each refit starts from the
//!   previous round's accuracies instead of 0.5, so convergence cost is
//!   paid once and later rounds only pay for the update.
//! * **Per-round truth blocks** — unlike naively pooling every label into
//!   one set (which mixes rounds whose ground truths differ), the tracker
//!   keeps each round's labels as its own block with its own label
//!   posteriors, sharing only the per-worker accuracies across blocks.
//! * **Exponential forgetting** — block `r` rounds old carries weight
//!   `λ^r`, so a worker whose skill drifts (or a sleeper agent who turns)
//!   is re-estimated from recent behaviour rather than averaged into her
//!   history. Blocks whose weight falls below [`TrackerConfig::min_weight`]
//!   are evicted, bounding memory at ~`ln(min_weight)/ln(λ)` rounds.
//! * **Gold blending** — answers on known-truth tasks enter a supervised
//!   side channel; the published estimate is the evidence-weighted blend
//!   of the EM and gold accuracies (see [`SkillEstimate::blend`]).

use mcs_types::{McsError, WorkerId};

use crate::em::DawidSkene;
use crate::estimate::{EstimateError, EstimateSource, SkillEstimate};
use crate::labels::{Label, LabelSet};

/// Configuration of a [`SkillTracker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// EM hyperparameters shared by every refit.
    pub em: DawidSkene,
    /// Per-round forgetting factor `λ ∈ (0, 1]`: a block `r` rounds old
    /// weighs `λ^r`. `1.0` disables forgetting.
    pub forgetting: f64,
    /// Blocks lighter than this are evicted from the window.
    pub min_weight: f64,
    /// Multiplier on gold-task evidence when blending with EM evidence.
    /// Gold answers are verified against known truth, so platforms
    /// typically trust them more per observation than consensus agreement.
    pub gold_weight: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            em: DawidSkene::default(),
            forgetting: 0.8,
            min_weight: 1e-3,
            gold_weight: 4.0,
        }
    }
}

impl TrackerConfig {
    /// Structural validation.
    ///
    /// # Errors
    ///
    /// [`McsError::Solver`] naming the offending field.
    pub fn validate(&self) -> Result<(), McsError> {
        if !(self.forgetting > 0.0 && self.forgetting <= 1.0) {
            return Err(McsError::Solver {
                message: format!("tracker forgetting {} outside (0, 1]", self.forgetting),
            });
        }
        if !(self.min_weight > 0.0 && self.min_weight <= 1.0) {
            return Err(McsError::Solver {
                message: format!("tracker min_weight {} outside (0, 1]", self.min_weight),
            });
        }
        if !(self.gold_weight.is_finite() && self.gold_weight >= 0.0) {
            return Err(McsError::Solver {
                message: format!("tracker gold_weight {} is negative", self.gold_weight),
            });
        }
        Ok(())
    }
}

/// Diagnostics of the most recent [`SkillTracker::refit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefitInfo {
    /// EM iterations the refit ran.
    pub iterations: usize,
    /// Whether EM converged within the iteration cap.
    pub converged: bool,
    /// Label blocks in the window after eviction.
    pub window: usize,
}

/// The platform's running per-worker accuracy estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SkillTracker {
    config: TrackerConfig,
    num_workers: usize,
    /// Per-round label blocks, oldest first.
    rounds: Vec<LabelSet>,
    /// Shared EM accuracies, warm-started between refits.
    em_accuracies: Vec<f64>,
    /// Published (gold-blended) accuracies.
    accuracies: Vec<f64>,
    gold_correct: Vec<u64>,
    gold_answered: Vec<u64>,
    last_refit: Option<RefitInfo>,
}

impl SkillTracker {
    /// Creates a tracker over `num_workers` workers.
    ///
    /// # Errors
    ///
    /// Propagates [`TrackerConfig::validate`] errors.
    pub fn new(num_workers: usize, config: TrackerConfig) -> Result<Self, McsError> {
        config.validate()?;
        Ok(SkillTracker {
            config,
            num_workers,
            rounds: Vec::new(),
            em_accuracies: vec![0.5; num_workers],
            accuracies: vec![0.5; num_workers],
            gold_correct: vec![0; num_workers],
            gold_answered: vec![0; num_workers],
            last_refit: None,
        })
    }

    /// Number of workers tracked.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// The published per-worker accuracies (gold-blended, `0.5` prior for
    /// workers with no evidence). Call [`SkillTracker::refit`] after
    /// feeding observations to refresh them.
    #[inline]
    pub fn accuracies(&self) -> &[f64] {
        &self.accuracies
    }

    /// Diagnostics of the last refit, if any.
    #[inline]
    pub fn last_refit(&self) -> Option<RefitInfo> {
        self.last_refit
    }

    /// Feeds one round's delivered labels as a new block.
    ///
    /// # Errors
    ///
    /// [`McsError::WorkerOutOfRange`] when a label references a worker
    /// outside the tracked pool.
    pub fn observe_round(&mut self, labels: &LabelSet) -> Result<(), McsError> {
        for obs in labels.iter() {
            if obs.worker.index() >= self.num_workers {
                return Err(McsError::WorkerOutOfRange {
                    worker: obs.worker,
                    num_workers: self.num_workers,
                });
            }
        }
        self.rounds.push(labels.clone());
        self.evict();
        Ok(())
    }

    /// Feeds answers to gold (known-truth) tasks into the supervised side
    /// channel. Returns the number of answers absorbed.
    ///
    /// # Errors
    ///
    /// * [`McsError::DimensionMismatch`] — `truth` shorter than the label
    ///   set's task count.
    /// * [`McsError::WorkerOutOfRange`] — a label references a worker
    ///   outside the tracked pool.
    pub fn observe_gold(&mut self, labels: &LabelSet, truth: &[Label]) -> Result<usize, McsError> {
        if truth.len() != labels.num_tasks() {
            return Err(McsError::DimensionMismatch {
                what: "gold truth vector",
                expected: labels.num_tasks(),
                actual: truth.len(),
            });
        }
        let mut absorbed = 0usize;
        for obs in labels.iter() {
            let w = obs.worker.index();
            if w >= self.num_workers {
                return Err(McsError::WorkerOutOfRange {
                    worker: obs.worker,
                    num_workers: self.num_workers,
                });
            }
            self.gold_answered[w] += 1;
            if obs.label == truth[obs.task.index()] {
                self.gold_correct[w] += 1;
            }
            absorbed += 1;
        }
        Ok(absorbed)
    }

    /// Weight of the block at window index `idx` (oldest first).
    fn block_weight(&self, idx: usize) -> f64 {
        let age = self.rounds.len() - 1 - idx;
        self.config.forgetting.powi(age as i32)
    }

    /// Drops blocks whose forgetting weight fell below the floor.
    fn evict(&mut self) {
        let keep_from = (0..self.rounds.len())
            .find(|&idx| self.block_weight(idx) >= self.config.min_weight)
            .unwrap_or(self.rounds.len());
        if keep_from > 0 {
            self.rounds.drain(..keep_from);
        }
    }

    /// EM evidence mass per worker: forgetting-discounted label counts.
    fn em_evidence(&self) -> Vec<f64> {
        let mut evidence = vec![0.0f64; self.num_workers];
        for (idx, block) in self.rounds.iter().enumerate() {
            let w_r = self.block_weight(idx);
            for obs in block.iter() {
                evidence[obs.worker.index()] += w_r;
            }
        }
        evidence
    }

    /// Re-estimates accuracies from the current window and gold evidence.
    ///
    /// Runs the block-structured weighted EM warm-started from the last
    /// fit, then blends each worker's EM estimate with her gold estimate
    /// by evidence mass. Workers with no evidence on either channel stay
    /// at the `0.5` prior.
    pub fn refit(&mut self) -> &[f64] {
        let info = self.run_weighted_em();
        let evidence = self.em_evidence();
        for (w, &mass) in evidence.iter().enumerate() {
            let em = (mass > 0.0)
                .then(|| SkillEstimate::new(self.em_accuracies[w], mass, EstimateSource::Em));
            let gold = (self.gold_answered[w] > 0).then(|| {
                let acc =
                    (self.gold_correct[w] as f64 + 1.0) / (self.gold_answered[w] as f64 + 2.0);
                SkillEstimate::new(
                    acc,
                    self.gold_answered[w] as f64 * self.config.gold_weight,
                    EstimateSource::Gold,
                )
            });
            self.accuracies[w] = match (em, gold) {
                (Some(e), Some(g)) => e.blend(&g).accuracy,
                (Some(e), None) => e.accuracy,
                (None, Some(g)) => g.accuracy,
                (None, None) => 0.5,
            };
        }
        self.last_refit = Some(info);
        &self.accuracies
    }

    /// The typed estimate for one worker, from whichever channels have
    /// evidence.
    ///
    /// # Errors
    ///
    /// * [`EstimateError::WorkerOutOfRange`] — unknown worker.
    /// * [`EstimateError::NoObservations`] — no labels and no gold answers.
    pub fn estimate(&self, worker: WorkerId) -> Result<SkillEstimate, EstimateError> {
        let w = worker.index();
        if w >= self.num_workers {
            return Err(EstimateError::WorkerOutOfRange {
                worker,
                num_workers: self.num_workers,
            });
        }
        let evidence = self.em_evidence()[w];
        let em = (evidence > 0.0)
            .then(|| SkillEstimate::new(self.em_accuracies[w], evidence, EstimateSource::Em));
        let gold = (self.gold_answered[w] > 0).then(|| {
            let acc = (self.gold_correct[w] as f64 + 1.0) / (self.gold_answered[w] as f64 + 2.0);
            SkillEstimate::new(
                acc,
                self.gold_answered[w] as f64 * self.config.gold_weight,
                EstimateSource::Gold,
            )
        });
        match (em, gold) {
            (Some(e), Some(g)) => Ok(e.blend(&g)),
            (Some(e), None) => Ok(e),
            (None, Some(g)) => Ok(g),
            (None, None) => Err(EstimateError::NoObservations { worker }),
        }
    }

    /// The weighted, block-structured EM at the tracker's core.
    ///
    /// Accuracies are shared across blocks; label posteriors are per
    /// block/task (each block drew its own ground truth). The M-step
    /// weighs block `r`'s observations by `λ^age(r)`.
    fn run_weighted_em(&mut self) -> RefitInfo {
        let em = self.config.em;
        // Per-block posteriors, initialized from vote fractions — except
        // blocks are re-initialized every refit; the warm state is the
        // accuracy vector.
        let mut posteriors: Vec<Vec<f64>> = self
            .rounds
            .iter()
            .map(|block| {
                (0..block.num_tasks())
                    .map(|j| {
                        let reports = block.for_task(mcs_types::TaskId(j as u32));
                        if reports.is_empty() {
                            return 0.5;
                        }
                        let pos = reports.iter().filter(|&&(_, l)| l == Label::Pos).count();
                        pos as f64 / reports.len() as f64
                    })
                    .collect()
            })
            .collect();
        let mut iterations = 0usize;
        let mut converged = false;
        for _ in 0..em.max_iterations {
            iterations += 1;
            // M-step: forgetting-weighted posterior agreement.
            let mut agree = vec![0.0f64; self.num_workers];
            let mut total = vec![0.0f64; self.num_workers];
            for (idx, block) in self.rounds.iter().enumerate() {
                let w_r = self.block_weight(idx);
                for obs in block.iter() {
                    let p_pos = posteriors[idx][obs.task.index()];
                    let p_agree = match obs.label {
                        Label::Pos => p_pos,
                        Label::Neg => 1.0 - p_pos,
                    };
                    agree[obs.worker.index()] += w_r * p_agree;
                    total[obs.worker.index()] += w_r;
                }
            }
            let mut max_change = 0.0f64;
            for w in 0..self.num_workers {
                let new_acc = if total[w] > 0.0 {
                    (agree[w] / total[w]).clamp(em.clamp, 1.0 - em.clamp)
                } else {
                    self.em_accuracies[w]
                };
                max_change = max_change.max((new_acc - self.em_accuracies[w]).abs());
                self.em_accuracies[w] = new_acc;
            }
            // E-step: per-block log-odds under the shared accuracies.
            for (idx, block) in self.rounds.iter().enumerate() {
                for (j, post) in posteriors[idx].iter_mut().enumerate() {
                    let reports = block.for_task(mcs_types::TaskId(j as u32));
                    if reports.is_empty() {
                        *post = 0.5;
                        continue;
                    }
                    let log_odds: f64 = reports
                        .iter()
                        .map(|&(w, l)| {
                            let a = self.em_accuracies[w.index()];
                            let ratio = (a / (1.0 - a)).ln();
                            match l {
                                Label::Pos => ratio,
                                Label::Neg => -ratio,
                            }
                        })
                        .sum();
                    *post = 1.0 / (1.0 + (-log_odds).exp());
                }
            }
            if max_change < em.tolerance {
                converged = true;
                break;
            }
        }
        RefitInfo {
            iterations,
            converged,
            window: self.rounds.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{generate_labels, Observation};
    use mcs_num::rng;
    use mcs_types::{Bundle, SkillMatrix, TaskId};

    const THETA: [f64; 5] = [0.95, 0.85, 0.75, 0.65, 0.55];

    fn round_labels(theta: &[f64], tasks: usize, seed: u64) -> LabelSet {
        let rows: Vec<Vec<f64>> = theta.iter().map(|&t| vec![t; tasks]).collect();
        let skills = SkillMatrix::from_rows(rows).unwrap();
        let mut r = rng::seeded(seed);
        let truth: Vec<Label> = (0..tasks).map(|_| Label::random(&mut r)).collect();
        let all = Bundle::new((0..tasks as u32).map(TaskId).collect());
        let assignment: Vec<(WorkerId, Bundle)> = (0..theta.len())
            .map(|i| (WorkerId(i as u32), all.clone()))
            .collect();
        generate_labels(&skills, &truth, &assignment, &mut r)
    }

    #[test]
    fn stationary_skills_are_recovered() {
        let mut tracker = SkillTracker::new(
            5,
            TrackerConfig {
                forgetting: 1.0,
                ..TrackerConfig::default()
            },
        )
        .unwrap();
        for round in 0..8 {
            tracker
                .observe_round(&round_labels(&THETA, 60, 100 + round))
                .unwrap();
            tracker.refit();
        }
        for (w, &t) in THETA.iter().enumerate() {
            let est = tracker.accuracies()[w];
            assert!((est - t).abs() < 0.12, "worker {w}: {est} vs {t}");
        }
        let info = tracker.last_refit().unwrap();
        assert_eq!(info.window, 8);
    }

    #[test]
    fn forgetting_tracks_drift_faster() {
        // Worker 0 degrades from 0.95 to 0.55 halfway through; a
        // forgetting tracker should sit closer to the recent truth than a
        // remember-everything one.
        let drifted = {
            let mut t = THETA;
            t[0] = 0.55;
            t
        };
        let run = |forgetting: f64| {
            let mut tracker = SkillTracker::new(
                5,
                TrackerConfig {
                    forgetting,
                    ..TrackerConfig::default()
                },
            )
            .unwrap();
            for round in 0..6 {
                tracker
                    .observe_round(&round_labels(&THETA, 60, 200 + round))
                    .unwrap();
            }
            for round in 0..6 {
                tracker
                    .observe_round(&round_labels(&drifted, 60, 300 + round))
                    .unwrap();
            }
            tracker.refit();
            tracker.accuracies()[0]
        };
        let sticky = run(1.0);
        let agile = run(0.5);
        assert!(
            agile < sticky - 0.05,
            "forgetting {agile} should track drift below sticky {sticky}"
        );
        assert!(agile < 0.75, "agile estimate {agile} still too high");
    }

    #[test]
    fn eviction_bounds_the_window() {
        let mut tracker = SkillTracker::new(
            5,
            TrackerConfig {
                forgetting: 0.5,
                min_weight: 0.05,
                ..TrackerConfig::default()
            },
        )
        .unwrap();
        for round in 0..20 {
            tracker
                .observe_round(&round_labels(&THETA, 20, 400 + round))
                .unwrap();
        }
        tracker.refit();
        // 0.5^4 = 0.0625 ≥ 0.05 > 0.5^5: window keeps 5 blocks.
        assert_eq!(tracker.last_refit().unwrap().window, 5);
    }

    #[test]
    fn gold_evidence_covers_em_silence() {
        let mut tracker = SkillTracker::new(2, TrackerConfig::default()).unwrap();
        let mut gold = LabelSet::new(4);
        for t in 0..4 {
            gold.push(Observation {
                worker: WorkerId(1),
                task: TaskId(t),
                label: Label::Pos,
            });
        }
        let truth = vec![Label::Pos; 4];
        assert_eq!(tracker.observe_gold(&gold, &truth).unwrap(), 4);
        tracker.refit();
        // Worker 1: (4+1)/(4+2) from gold alone; worker 0: prior.
        assert!((tracker.accuracies()[1] - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(tracker.accuracies()[0], 0.5);
        let est = tracker.estimate(WorkerId(1)).unwrap();
        assert_eq!(est.source, EstimateSource::Gold);
        assert!(matches!(
            tracker.estimate(WorkerId(0)),
            Err(EstimateError::NoObservations { .. })
        ));
        assert!(matches!(
            tracker.estimate(WorkerId(2)),
            Err(EstimateError::WorkerOutOfRange { .. })
        ));
    }

    #[test]
    fn gold_and_em_blend_by_evidence() {
        let mut tracker = SkillTracker::new(5, TrackerConfig::default()).unwrap();
        tracker
            .observe_round(&round_labels(&THETA, 60, 500))
            .unwrap();
        let mut gold = LabelSet::new(2);
        gold.push(Observation {
            worker: WorkerId(0),
            task: TaskId(0),
            label: Label::Pos,
        });
        gold.push(Observation {
            worker: WorkerId(0),
            task: TaskId(1),
            label: Label::Pos,
        });
        tracker
            .observe_gold(&gold, &[Label::Pos, Label::Neg])
            .unwrap();
        tracker.refit();
        let est = tracker.estimate(WorkerId(0)).unwrap();
        assert_eq!(est.source, EstimateSource::Blended);
        // Blend sits strictly between the gold estimate (0.5) and the EM
        // estimate (near 0.95).
        assert!(est.accuracy > 0.5 && est.accuracy < 0.97);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(SkillTracker::new(
                1,
                TrackerConfig {
                    forgetting: bad,
                    ..TrackerConfig::default()
                }
            )
            .is_err());
        }
        assert!(SkillTracker::new(
            1,
            TrackerConfig {
                gold_weight: -1.0,
                ..TrackerConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn out_of_pool_observations_are_rejected() {
        let mut tracker = SkillTracker::new(1, TrackerConfig::default()).unwrap();
        let mut labels = LabelSet::new(1);
        labels.push(Observation {
            worker: WorkerId(3),
            task: TaskId(0),
            label: Label::Pos,
        });
        assert!(tracker.observe_round(&labels).is_err());
        assert!(tracker.observe_gold(&labels, &[Label::Pos]).is_err());
        // Dimension mismatch on gold truth.
        let ok = LabelSet::new(2);
        assert!(matches!(
            tracker.observe_gold(&ok, &[Label::Pos]),
            Err(McsError::DimensionMismatch { .. })
        ));
    }
}
