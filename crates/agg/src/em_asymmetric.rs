//! The full (two-parameter) Dawid–Skene model for binary labels.
//!
//! [`DawidSkene`](crate::DawidSkene) assumes each worker errs symmetrically;
//! real crowds often do not — a driver may reliably *confirm* potholes she
//! passes over (high sensitivity) but frequently miss ones she straddles
//! (low specificity). This estimator fits, per worker, a sensitivity
//! `α_i = Pr[report +1 | truth +1]` and specificity
//! `β_i = Pr[report −1 | truth −1]`, plus the class prior `π = Pr[+1]`,
//! by expectation–maximization — the original Dawid & Skene (1979)
//! confusion-matrix model restricted to two classes.

use mcs_types::WorkerId;

use crate::labels::{Label, LabelSet};

/// Configuration for the asymmetric EM fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsymmetricDawidSkene {
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the largest parameter change.
    pub tolerance: f64,
    /// Rates are clamped to `[clamp, 1 − clamp]`.
    pub clamp: f64,
}

impl Default for AsymmetricDawidSkene {
    fn default() -> Self {
        AsymmetricDawidSkene {
            max_iterations: 200,
            tolerance: 1e-6,
            clamp: 1e-3,
        }
    }
}

/// The fitted asymmetric model.
#[derive(Debug, Clone, PartialEq)]
pub struct AsymmetricFit {
    /// Per-worker sensitivity `Pr[report +1 | truth +1]`.
    pub sensitivities: Vec<f64>,
    /// Per-worker specificity `Pr[report −1 | truth −1]`.
    pub specificities: Vec<f64>,
    /// Estimated prior `Pr[truth = +1]`.
    pub prior_pos: f64,
    /// Posterior probability that each task's true label is `+1`.
    pub posterior_pos: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

impl AsymmetricFit {
    /// MAP labels from the posteriors (ties to `+1`).
    pub fn map_labels(&self) -> Vec<Label> {
        self.posterior_pos
            .iter()
            .map(|&p| Label::from_sign(p - 0.5 + f64::EPSILON))
            .collect()
    }

    /// The balanced accuracy `(α_i + β_i)/2` of one worker — the scalar
    /// summary comparable to the symmetric model's accuracy.
    pub fn balanced_accuracy(&self, worker: WorkerId) -> f64 {
        (self.sensitivities[worker.index()] + self.specificities[worker.index()]) / 2.0
    }
}

impl AsymmetricDawidSkene {
    /// Fits sensitivities, specificities and the class prior.
    ///
    /// Initialization: majority-vote posteriors, uniform prior. Each
    /// iteration runs the exact E/M updates of the two-class Dawid–Skene
    /// likelihood.
    ///
    /// # Panics
    ///
    /// Panics if an observation references `worker ≥ num_workers`.
    pub fn fit(&self, labels: &LabelSet, num_workers: usize) -> AsymmetricFit {
        let num_tasks = labels.num_tasks();
        let clamp = |v: f64| v.clamp(self.clamp, 1.0 - self.clamp);

        let mut posterior: Vec<f64> = (0..num_tasks)
            .map(|j| {
                let reports = labels.for_task(mcs_types::TaskId(j as u32));
                if reports.is_empty() {
                    return 0.5;
                }
                let pos = reports.iter().filter(|&&(_, l)| l == Label::Pos).count();
                clamp(pos as f64 / reports.len() as f64)
            })
            .collect();
        let mut alpha = vec![0.75; num_workers];
        let mut beta = vec![0.75; num_workers];
        let mut prior = 0.5;
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iterations {
            iterations += 1;

            // M-step: posterior-weighted confusion counts.
            let mut tp = vec![self.clamp; num_workers]; // report + | truth +
            let mut pos_mass = vec![2.0 * self.clamp; num_workers];
            let mut tn = vec![self.clamp; num_workers]; // report − | truth −
            let mut neg_mass = vec![2.0 * self.clamp; num_workers];
            let mut prior_mass = 0.0;
            let mut labelled_tasks = 0.0;
            for obs in labels.iter() {
                let w = obs.worker.index();
                assert!(w < num_workers, "observation references unknown worker");
                let p = posterior[obs.task.index()];
                pos_mass[w] += p;
                neg_mass[w] += 1.0 - p;
                match obs.label {
                    Label::Pos => tp[w] += p,
                    Label::Neg => tn[w] += 1.0 - p,
                }
            }
            for (j, &p) in posterior.iter().enumerate() {
                if !labels.for_task(mcs_types::TaskId(j as u32)).is_empty() {
                    prior_mass += p;
                    labelled_tasks += 1.0;
                }
            }
            let mut max_change: f64 = 0.0;
            for w in 0..num_workers {
                let a = clamp(tp[w] / pos_mass[w]);
                let b = clamp(tn[w] / neg_mass[w]);
                max_change = max_change.max((a - alpha[w]).abs());
                max_change = max_change.max((b - beta[w]).abs());
                alpha[w] = a;
                beta[w] = b;
            }
            let new_prior = if labelled_tasks > 0.0 {
                clamp(prior_mass / labelled_tasks)
            } else {
                0.5
            };
            max_change = max_change.max((new_prior - prior).abs());
            prior = new_prior;

            // E-step: per-task posteriors from the confusion model.
            for (j, post) in posterior.iter_mut().enumerate() {
                let reports = labels.for_task(mcs_types::TaskId(j as u32));
                if reports.is_empty() {
                    *post = prior;
                    continue;
                }
                let mut log_odds = (prior / (1.0 - prior)).ln();
                for &(w, l) in reports {
                    let (a, b) = (alpha[w.index()], beta[w.index()]);
                    log_odds += match l {
                        Label::Pos => (a / (1.0 - b)).ln(),
                        Label::Neg => ((1.0 - a) / b).ln(),
                    };
                }
                *post = 1.0 / (1.0 + (-log_odds).exp());
            }

            if max_change < self.tolerance {
                converged = true;
                break;
            }
        }

        AsymmetricFit {
            sensitivities: alpha,
            specificities: beta,
            prior_pos: prior,
            posterior_pos: posterior,
            iterations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::generate_labels;
    use mcs_num::rng;
    use mcs_types::{Bundle, SkillMatrix, TaskId};
    use rand::Rng;

    /// Generates labels under an explicitly asymmetric model.
    fn asymmetric_labels(
        alphas: &[f64],
        betas: &[f64],
        truth: &[Label],
        rng: &mut impl Rng,
    ) -> LabelSet {
        let mut set = LabelSet::new(truth.len());
        for (w, (&a, &b)) in alphas.iter().zip(betas).enumerate() {
            for (j, &t) in truth.iter().enumerate() {
                let correct_prob = if t == Label::Pos { a } else { b };
                let label = if rng.gen_bool(correct_prob) { t } else { -t };
                set.push(crate::Observation {
                    worker: WorkerId(w as u32),
                    task: TaskId(j as u32),
                    label,
                });
            }
        }
        set
    }

    #[test]
    fn recovers_asymmetric_rates() {
        let alphas = [0.95, 0.6, 0.9, 0.7, 0.85];
        let betas = [0.6, 0.95, 0.9, 0.85, 0.7];
        let k = 400usize;
        let mut r = rng::seeded(41);
        let truth: Vec<Label> = (0..k)
            .map(|_| {
                if r.gen_bool(0.35) {
                    Label::Pos
                } else {
                    Label::Neg
                }
            })
            .collect();
        let labels = asymmetric_labels(&alphas, &betas, &truth, &mut r);
        let fit = AsymmetricDawidSkene::default().fit(&labels, 5);
        assert!(fit.converged);
        for w in 0..5 {
            assert!(
                (fit.sensitivities[w] - alphas[w]).abs() < 0.08,
                "alpha[{w}] = {} vs {}",
                fit.sensitivities[w],
                alphas[w]
            );
            assert!(
                (fit.specificities[w] - betas[w]).abs() < 0.08,
                "beta[{w}] = {} vs {}",
                fit.specificities[w],
                betas[w]
            );
        }
        assert!(
            (fit.prior_pos - 0.35).abs() < 0.06,
            "prior {}",
            fit.prior_pos
        );
    }

    #[test]
    fn beats_symmetric_model_under_asymmetry() {
        // Workers with strong sensitivity but weak specificity: the
        // asymmetric model should label at least as well.
        let alphas = [0.95, 0.95, 0.9, 0.9];
        let betas = [0.55, 0.6, 0.55, 0.65];
        let k = 500usize;
        let mut r = rng::seeded(43);
        let truth: Vec<Label> = (0..k)
            .map(|_| {
                if r.gen_bool(0.5) {
                    Label::Pos
                } else {
                    Label::Neg
                }
            })
            .collect();
        let labels = asymmetric_labels(&alphas, &betas, &truth, &mut r);
        let asym = AsymmetricDawidSkene::default().fit(&labels, 4);
        let sym = crate::DawidSkene::default().fit(&labels, 4);
        let score = |ls: &[Label]| ls.iter().zip(&truth).filter(|(a, b)| a == b).count();
        let asym_correct = score(&asym.map_labels());
        let sym_correct = score(&sym.map_labels());
        assert!(
            asym_correct >= sym_correct,
            "asymmetric {asym_correct} < symmetric {sym_correct}"
        );
        assert!(asym_correct as f64 / k as f64 > 0.8);
    }

    #[test]
    fn reduces_to_symmetric_case() {
        // Symmetric workers: α ≈ β ≈ θ.
        let theta = 0.85;
        let k = 400usize;
        let skills = SkillMatrix::from_rows(vec![vec![theta; k]; 4]).unwrap();
        let mut r = rng::seeded(44);
        let truth: Vec<Label> = (0..k).map(|_| Label::random(&mut r)).collect();
        let all = Bundle::new((0..k as u32).map(TaskId).collect());
        let assignment: Vec<(WorkerId, Bundle)> =
            (0..4).map(|i| (WorkerId(i), all.clone())).collect();
        let labels = generate_labels(&skills, &truth, &assignment, &mut r);
        let fit = AsymmetricDawidSkene::default().fit(&labels, 4);
        for w in 0..4 {
            assert!((fit.sensitivities[w] - theta).abs() < 0.1);
            assert!((fit.specificities[w] - theta).abs() < 0.1);
            let bal = fit.balanced_accuracy(WorkerId(w as u32));
            assert!((bal - theta).abs() < 0.08);
        }
    }

    #[test]
    fn empty_input_returns_priors() {
        let fit = AsymmetricDawidSkene::default().fit(&LabelSet::new(2), 3);
        assert_eq!(fit.posterior_pos, vec![0.5, 0.5]);
        assert_eq!(fit.prior_pos, 0.5);
    }

    #[test]
    fn iteration_cap() {
        let mut r = rng::seeded(45);
        let truth: Vec<Label> = (0..20).map(|_| Label::random(&mut r)).collect();
        let labels = asymmetric_labels(&[0.8, 0.7], &[0.7, 0.8], &truth, &mut r);
        let fit = AsymmetricDawidSkene {
            max_iterations: 1,
            tolerance: 0.0,
            ..Default::default()
        }
        .fit(&labels, 2);
        assert_eq!(fit.iterations, 1);
        assert!(!fit.converged);
    }
}
