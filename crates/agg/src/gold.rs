//! Supervised skill estimation from gold (known-answer) tasks.

use mcs_types::{McsError, SkillMatrix, TaskId, WorkerId};

use crate::estimate::{EstimateError, EstimateSource, SkillEstimate};
use crate::labels::{Label, LabelSet};

/// Estimates a per-worker, per-task skill matrix from labels on gold tasks.
///
/// This is the "programmatic gold" strategy the paper cites (Oleson et al.,
/// HCOMP'11): the platform seeds tasks whose true labels it knows and
/// scores each worker's accuracy on them. Because real MCS platforms have
/// far fewer gold tasks than live tasks, the estimate is per-worker
/// (uniform across tasks) with add-one (Laplace) smoothing:
///
/// ```text
/// θ̂_i = (correct_i + 1) / (answered_i + 2)
/// ```
///
/// Workers who answered no gold tasks get the uninformative prior `0.5`.
/// The returned matrix repeats `θ̂_i` across all `num_tasks` columns.
///
/// # Errors
///
/// Returns [`McsError::DimensionMismatch`] if `gold_truth.len()` differs
/// from the label set's task count.
///
/// # Examples
///
/// ```
/// use mcs_agg::{estimate_skills_from_gold, Label, LabelSet, Observation};
/// use mcs_types::{TaskId, WorkerId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut labels = LabelSet::new(2);
/// labels.push(Observation { worker: WorkerId(0), task: TaskId(0), label: Label::Pos });
/// labels.push(Observation { worker: WorkerId(0), task: TaskId(1), label: Label::Pos });
/// let truth = vec![Label::Pos, Label::Neg]; // worker got 1 of 2 right
/// let skills = estimate_skills_from_gold(&labels, &truth, 1, 3)?;
/// // (1 + 1) / (2 + 2) = 0.5
/// assert_eq!(skills.theta(WorkerId(0), TaskId(2)), 0.5);
/// # Ok(())
/// # }
/// ```
pub fn estimate_skills_from_gold(
    gold_labels: &LabelSet,
    gold_truth: &[Label],
    num_workers: usize,
    num_tasks: usize,
) -> Result<SkillMatrix, McsError> {
    if gold_truth.len() != gold_labels.num_tasks() {
        return Err(McsError::DimensionMismatch {
            what: "gold truth vector",
            expected: gold_labels.num_tasks(),
            actual: gold_truth.len(),
        });
    }
    let mut correct = vec![0u64; num_workers];
    let mut answered = vec![0u64; num_workers];
    for obs in gold_labels.iter() {
        let w = obs.worker.index();
        if w >= num_workers {
            return Err(McsError::WorkerOutOfRange {
                worker: obs.worker,
                num_workers,
            });
        }
        answered[w] += 1;
        if obs.label == gold_truth[obs.task.index()] {
            correct[w] += 1;
        }
    }
    let rows: Vec<Vec<f64>> = (0..num_workers)
        .map(|w| {
            let theta = (correct[w] as f64 + 1.0) / (answered[w] as f64 + 2.0);
            vec![theta; num_tasks]
        })
        .collect();
    SkillMatrix::from_rows(rows)
}

/// Typed per-worker gold estimate in the shared [`SkillEstimate`] shape:
/// the Laplace-smoothed accuracy `(correct + 1) / (answered + 2)` with the
/// answered-count as its evidence.
///
/// This is the same number [`estimate_skills_from_gold`] spreads across a
/// full matrix row, but queryable per worker and honest about silence —
/// a worker who answered no gold tasks gets a typed error instead of a
/// smuggled-in `0.5`.
///
/// # Errors
///
/// [`EstimateError::NoObservations`] when the worker answered no gold
/// tasks.
pub fn gold_skill_estimate(
    gold_labels: &LabelSet,
    gold_truth: &[Label],
    worker: WorkerId,
) -> Result<SkillEstimate, EstimateError> {
    let mut correct = 0u64;
    let mut answered = 0u64;
    for obs in gold_labels.iter() {
        if obs.worker == worker && obs.task.index() < gold_truth.len() {
            answered += 1;
            if obs.label == gold_truth[obs.task.index()] {
                correct += 1;
            }
        }
    }
    if answered == 0 {
        return Err(EstimateError::NoObservations { worker });
    }
    let accuracy = (correct as f64 + 1.0) / (answered as f64 + 2.0);
    Ok(SkillEstimate::new(
        accuracy,
        answered as f64,
        EstimateSource::Gold,
    ))
}

/// Empirical accuracy of one worker on gold tasks, without smoothing.
///
/// Returns `None` when the worker answered no gold tasks.
pub fn raw_gold_accuracy(
    gold_labels: &LabelSet,
    gold_truth: &[Label],
    worker: WorkerId,
) -> Option<f64> {
    let mut correct = 0u64;
    let mut answered = 0u64;
    for (j, truth) in gold_truth.iter().enumerate().take(gold_labels.num_tasks()) {
        for &(w, l) in gold_labels.for_task(TaskId(j as u32)) {
            if w == worker {
                answered += 1;
                if l == *truth {
                    correct += 1;
                }
            }
        }
    }
    if answered == 0 {
        None
    } else {
        Some(correct as f64 / answered as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{generate_labels, Observation};
    use mcs_num::rng;
    use mcs_types::Bundle;

    #[test]
    fn smoothing_pulls_toward_half() {
        let mut labels = LabelSet::new(1);
        labels.push(Observation {
            worker: WorkerId(0),
            task: TaskId(0),
            label: Label::Pos,
        });
        let skills = estimate_skills_from_gold(&labels, &[Label::Pos], 1, 1).unwrap();
        // (1+1)/(1+2) = 2/3, not 1.0.
        assert!((skills.theta(WorkerId(0), TaskId(0)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unanswered_worker_gets_prior() {
        let labels = LabelSet::new(1);
        let skills = estimate_skills_from_gold(&labels, &[Label::Pos], 2, 4).unwrap();
        assert_eq!(skills.theta(WorkerId(1), TaskId(3)), 0.5);
        assert_eq!(skills.num_tasks(), 4);
    }

    #[test]
    fn truth_length_is_validated() {
        let labels = LabelSet::new(2);
        assert!(matches!(
            estimate_skills_from_gold(&labels, &[Label::Pos], 1, 1),
            Err(McsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn unknown_worker_is_rejected() {
        let mut labels = LabelSet::new(1);
        labels.push(Observation {
            worker: WorkerId(5),
            task: TaskId(0),
            label: Label::Pos,
        });
        assert!(matches!(
            estimate_skills_from_gold(&labels, &[Label::Pos], 1, 1),
            Err(McsError::WorkerOutOfRange { .. })
        ));
    }

    #[test]
    fn estimate_converges_with_many_gold_tasks() {
        let theta = 0.8;
        let k = 2000usize;
        let skills = SkillMatrix::from_rows(vec![vec![theta; k]]).unwrap();
        let mut r = rng::seeded(23);
        let truth: Vec<Label> = (0..k).map(|_| Label::random(&mut r)).collect();
        let bundle = Bundle::new((0..k as u32).map(TaskId).collect());
        let labels = generate_labels(&skills, &truth, &[(WorkerId(0), bundle)], &mut r);
        let est = estimate_skills_from_gold(&labels, &truth, 1, 1).unwrap();
        assert!((est.theta(WorkerId(0), TaskId(0)) - theta).abs() < 0.03);
        let raw = raw_gold_accuracy(&labels, &truth, WorkerId(0)).unwrap();
        assert!((raw - theta).abs() < 0.03);
    }

    #[test]
    fn raw_accuracy_none_when_silent() {
        let labels = LabelSet::new(1);
        assert_eq!(raw_gold_accuracy(&labels, &[Label::Pos], WorkerId(0)), None);
    }

    #[test]
    fn gold_estimate_matches_matrix_path() {
        let mut labels = LabelSet::new(2);
        labels.push(Observation {
            worker: WorkerId(0),
            task: TaskId(0),
            label: Label::Pos,
        });
        labels.push(Observation {
            worker: WorkerId(0),
            task: TaskId(1),
            label: Label::Pos,
        });
        let truth = vec![Label::Pos, Label::Neg];
        let est = gold_skill_estimate(&labels, &truth, WorkerId(0)).unwrap();
        let matrix = estimate_skills_from_gold(&labels, &truth, 1, 1).unwrap();
        assert_eq!(est.accuracy, matrix.theta(WorkerId(0), TaskId(0)));
        assert_eq!(est.observations, 2.0);
        assert_eq!(est.source, crate::EstimateSource::Gold);
        assert!(matches!(
            gold_skill_estimate(&labels, &truth, WorkerId(1)),
            Err(crate::EstimateError::NoObservations { .. })
        ));
    }
}
