//! Label aggregation substrate for binary crowd-sensing tasks.
//!
//! The paper's platform buys binary labels from workers and aggregates them
//! with the weighted rule of Lemma 1 (from Ho, Jabbari & Vaughan, ICML'13):
//!
//! ```text
//! l̂_j = sign( Σ_{i : w_i ∈ S, τ_j ∈ Γ_i} (2θ_ij − 1) · l_ij )
//! ```
//!
//! and guarantees `Pr[l̂_j ≠ l_j] ≤ δ_j` exactly when the selected winners
//! satisfy `Σ (2θ_ij − 1)² ≥ 2 ln(1/δ_j)` — the covering constraint that the
//! whole auction is built around.
//!
//! This crate provides everything around that pipeline:
//!
//! * [`Label`] / [`LabelSet`] — ±1 labels and per-task collections.
//! * [`generate_labels`] — the synthetic worker model (worker `i` labels
//!   task `j` correctly with probability `θ_ij`), used to exercise the
//!   platform end-to-end since the paper has no real trace.
//! * [`weighted_aggregate`] — the Lemma 1 rule; [`majority_vote`] as the
//!   unweighted baseline.
//! * [`DawidSkene`] — EM estimation of per-worker accuracies without
//!   ground truth (one way the platform can maintain its `θ` record);
//!   [`AsymmetricDawidSkene`] fits the full two-parameter confusion model
//!   (per-class error rates) and [`TruthDiscovery`] the CRH-style
//!   distance-weighted alternative.
//! * [`estimate_skills_from_gold`] — supervised skill estimation from gold
//!   tasks with Laplace smoothing.
//! * [`empirical_error_rate`] — Monte-Carlo verification that a winner
//!   set's aggregation error is within `δ_j`.
//!
//! # Examples
//!
//! ```
//! use mcs_agg::{generate_labels, weighted_aggregate, Label, LabelSet};
//! use mcs_types::{Bundle, SkillMatrix, TaskId, WorkerId};
//! use mcs_num::rng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let skills = SkillMatrix::from_rows(vec![vec![0.95], vec![0.9], vec![0.85]])?;
//! let truth = vec![Label::Pos];
//! let assignment = vec![
//!     (WorkerId(0), Bundle::new(vec![TaskId(0)])),
//!     (WorkerId(1), Bundle::new(vec![TaskId(0)])),
//!     (WorkerId(2), Bundle::new(vec![TaskId(0)])),
//! ];
//! let mut r = rng::seeded(1);
//! let labels = generate_labels(&skills, &truth, &assignment, &mut r);
//! let estimate = weighted_aggregate(&labels, &skills, 1);
//! assert_eq!(estimate[0], Some(Label::Pos));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Label paths feed the fault-tolerant round engine with partial, possibly
// empty per-task label sets; aggregation must surface typed errors (e.g.
// `McsError::EmptyLabelSet`), never unwrap. Tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod em;
mod em_asymmetric;
mod error_bound;
mod estimate;
mod gold;
mod labels;
mod tracker;
mod truth_discovery;
mod weighted;

pub use em::{DawidSkene, DawidSkeneFit};
pub use em_asymmetric::{AsymmetricDawidSkene, AsymmetricFit};
pub use error_bound::{empirical_error_rate, lemma1_threshold, ErrorRateReport};
pub use estimate::{EstimateError, EstimateSource, SkillEstimate};
pub use gold::{estimate_skills_from_gold, gold_skill_estimate, raw_gold_accuracy};
pub use labels::{generate_labels, Label, LabelSet, Observation};
pub use tracker::{RefitInfo, SkillTracker, TrackerConfig};
pub use truth_discovery::{TruthDiscovery, TruthDiscoveryFit};
pub use weighted::{
    achieved_coverage, majority_vote, weighted_aggregate, weighted_aggregate_strict,
};
