//! Aggregation rules: Lemma 1's weighted rule and majority vote.

use mcs_types::{McsError, SkillMatrix, TaskId, WorkerId};

use crate::labels::{Label, LabelSet};

/// Aggregates labels with the optimal weighting of Lemma 1:
/// `l̂_j = sign(Σ (2θ_ij − 1) · l_ij)`.
///
/// Returns one entry per task; `None` where no labels were collected.
/// Anti-experts (`θ < 0.5`) get negative weights, i.e. their labels are
/// flipped — that is what makes them as informative as experts with the
/// mirrored skill.
///
/// # Panics
///
/// Panics if an observation references a worker/task outside the skill
/// matrix, or `num_tasks` differs from the label set's task count.
pub fn weighted_aggregate(
    labels: &LabelSet,
    skills: &SkillMatrix,
    num_tasks: usize,
) -> Vec<Option<Label>> {
    assert_eq!(
        labels.num_tasks(),
        num_tasks,
        "label set task count must match num_tasks"
    );
    (0..num_tasks)
        .map(|j| {
            let task = TaskId(j as u32);
            let reports = labels.for_task(task);
            if reports.is_empty() {
                return None;
            }
            let score: f64 = reports
                .iter()
                .map(|&(w, l)| skills.alpha(w, task) * l.to_f64())
                .sum();
            Some(Label::from_sign(score))
        })
        .collect()
}

/// The strict variant of [`weighted_aggregate`]: every task must have at
/// least one label, and the result is a plain per-task label vector.
///
/// Use this on paths where a missing estimate is a *fault*, not an option —
/// e.g. asserting that a fault-free round produced a verdict for every
/// task. Fault-tolerant paths that expect gaps should keep using
/// [`weighted_aggregate`] and handle `None` per task.
///
/// # Errors
///
/// Returns [`McsError::EmptyLabelSet`] naming the first task with no
/// labels, and [`McsError::DimensionMismatch`] if `num_tasks` differs from
/// the label set's task count.
pub fn weighted_aggregate_strict(
    labels: &LabelSet,
    skills: &SkillMatrix,
    num_tasks: usize,
) -> Result<Vec<Label>, McsError> {
    if labels.num_tasks() != num_tasks {
        return Err(McsError::DimensionMismatch {
            what: "label set task count",
            expected: num_tasks,
            actual: labels.num_tasks(),
        });
    }
    weighted_aggregate(labels, skills, num_tasks)
        .into_iter()
        .enumerate()
        .map(|(j, estimate)| {
            estimate.ok_or(McsError::EmptyLabelSet {
                task: TaskId(j as u32),
            })
        })
        .collect()
}

/// Unweighted majority vote baseline; ties break to `+1`.
///
/// Returns `None` for tasks with no labels.
pub fn majority_vote(labels: &LabelSet, num_tasks: usize) -> Vec<Option<Label>> {
    (0..num_tasks)
        .map(|j| {
            let reports = labels.for_task(TaskId(j as u32));
            if reports.is_empty() {
                return None;
            }
            let score: f64 = reports.iter().map(|&(_, l)| l.to_f64()).sum();
            Some(Label::from_sign(score))
        })
        .collect()
}

/// The coverage a set of reports gives a task under Lemma 1:
/// `Σ (2θ_ij − 1)²` over the workers who labelled it.
///
/// Useful for asserting that a task's error-bound constraint was actually
/// met by the labels that arrived.
pub fn achieved_coverage(labels: &LabelSet, skills: &SkillMatrix, task: TaskId) -> f64 {
    labels
        .for_task(task)
        .iter()
        .map(|&(w, _): &(WorkerId, Label)| {
            let a = skills.alpha(w, task);
            a * a
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Observation;
    use mcs_types::SkillMatrix;

    fn obs(w: u32, t: u32, l: Label) -> Observation {
        Observation {
            worker: WorkerId(w),
            task: TaskId(t),
            label: l,
        }
    }

    #[test]
    fn expert_outvotes_crowd_of_guessers() {
        // Worker 0: θ = 0.99 (weight 0.98); workers 1–3: θ = 0.55
        // (weight 0.1 each). Expert says Neg, guessers say Pos.
        let skills =
            SkillMatrix::from_rows(vec![vec![0.99], vec![0.55], vec![0.55], vec![0.55]]).unwrap();
        let labels: LabelSet = [
            obs(0, 0, Label::Neg),
            obs(1, 0, Label::Pos),
            obs(2, 0, Label::Pos),
            obs(3, 0, Label::Pos),
        ]
        .into_iter()
        .collect();
        let weighted = weighted_aggregate(&labels, &skills, 1);
        assert_eq!(weighted[0], Some(Label::Neg));
        // Majority vote disagrees — the whole point of weighting.
        let majority = majority_vote(&labels, 1);
        assert_eq!(majority[0], Some(Label::Pos));
    }

    #[test]
    fn anti_expert_labels_are_flipped() {
        // θ = 0.1 → weight −0.8: a Neg report counts as strong Pos evidence.
        let skills = SkillMatrix::from_rows(vec![vec![0.1], vec![0.6]]).unwrap();
        let labels: LabelSet = [obs(0, 0, Label::Neg), obs(1, 0, Label::Neg)]
            .into_iter()
            .collect();
        let agg = weighted_aggregate(&labels, &skills, 1);
        // Scores: (−0.8)(−1) + (0.2)(−1) = 0.6 > 0.
        assert_eq!(agg[0], Some(Label::Pos));
    }

    #[test]
    fn unlabelled_tasks_are_none() {
        let skills = SkillMatrix::from_rows(vec![vec![0.9, 0.9]]).unwrap();
        let labels: LabelSet = LabelSet::new(2);
        let agg = weighted_aggregate(&labels, &skills, 2);
        assert_eq!(agg, vec![None, None]);
        assert_eq!(majority_vote(&labels, 2), vec![None, None]);
    }

    #[test]
    fn majority_tie_breaks_positive() {
        let labels: LabelSet = [obs(0, 0, Label::Pos), obs(1, 0, Label::Neg)]
            .into_iter()
            .collect();
        assert_eq!(majority_vote(&labels, 1)[0], Some(Label::Pos));
    }

    #[test]
    fn strict_aggregate_errors_on_uncovered_task() {
        let skills = SkillMatrix::from_rows(vec![vec![0.9, 0.9]]).unwrap();
        let mut labels = LabelSet::new(2);
        labels.push(obs(0, 0, Label::Pos));
        let err = weighted_aggregate_strict(&labels, &skills, 2).unwrap_err();
        assert_eq!(err, McsError::EmptyLabelSet { task: TaskId(1) });
        labels.push(obs(0, 1, Label::Neg));
        let full = weighted_aggregate_strict(&labels, &skills, 2).unwrap();
        assert_eq!(full, vec![Label::Pos, Label::Neg]);
        // Dimension mismatch is typed, not a panic.
        assert!(matches!(
            weighted_aggregate_strict(&labels, &skills, 3),
            Err(McsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn achieved_coverage_sums_squared_alphas() {
        let skills = SkillMatrix::from_rows(vec![vec![0.9], vec![0.5]]).unwrap();
        let labels: LabelSet = [obs(0, 0, Label::Pos), obs(1, 0, Label::Pos)]
            .into_iter()
            .collect();
        let cov = achieved_coverage(&labels, &skills, TaskId(0));
        assert!((cov - 0.64).abs() < 1e-12); // 0.8² + 0².
    }

    #[test]
    fn zero_information_worker_never_decides() {
        // θ = 0.5 worker alone: score 0 → sign convention gives Pos, and
        // coverage is 0, correctly signalling "no information".
        let skills = SkillMatrix::from_rows(vec![vec![0.5]]).unwrap();
        let labels: LabelSet = [obs(0, 0, Label::Neg)].into_iter().collect();
        assert_eq!(achieved_coverage(&labels, &skills, TaskId(0)), 0.0);
        assert_eq!(weighted_aggregate(&labels, &skills, 1)[0], Some(Label::Pos));
    }
}
