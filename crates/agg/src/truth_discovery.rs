//! Iterative truth discovery with distance-weighted source reliability.
//!
//! The CRH-style estimator the paper cites (Li et al., SIGMOD'14; Su et
//! al., RTSS'14): alternately (1) estimate each task's label as the
//! reliability-weighted vote and (2) re-score each worker's reliability
//! from her disagreement with the current estimates,
//! `ω_i = −ln(d_i / Σ_k d_k)` where `d_i` is worker `i`'s normalized
//! disagreement. Unlike [`DawidSkene`](crate::DawidSkene) this keeps hard
//! label estimates and purely distance-based weights — it is the second,
//! independent way the platform can maintain its skill record `θ`.

use mcs_types::WorkerId;

use crate::labels::{Label, LabelSet};

/// Configuration for the truth-discovery iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthDiscovery {
    /// Maximum alternations.
    pub max_iterations: usize,
    /// Stop when no estimated label changes between rounds.
    pub stop_on_fixpoint: bool,
    /// Smoothing added to disagreement counts so perfect workers keep
    /// finite weight.
    pub smoothing: f64,
}

impl Default for TruthDiscovery {
    fn default() -> Self {
        TruthDiscovery {
            max_iterations: 50,
            stop_on_fixpoint: true,
            smoothing: 0.5,
        }
    }
}

/// Result of a truth-discovery run.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthDiscoveryFit {
    /// Estimated label per task (`None` for unlabelled tasks).
    pub labels: Vec<Option<Label>>,
    /// Non-negative reliability weight per worker (0 for silent workers).
    pub weights: Vec<f64>,
    /// Estimated accuracy per worker (agreement rate with the final
    /// labels; `0.5` for silent workers).
    pub accuracies: Vec<f64>,
    /// Rounds executed.
    pub iterations: usize,
    /// Whether a fixpoint was reached before the cap.
    pub converged: bool,
}

impl TruthDiscovery {
    /// Runs the alternating estimation on a label set.
    ///
    /// Initialization is an unweighted majority vote; each round then
    /// recomputes weights from disagreements and labels from weighted
    /// votes. Ties in a vote resolve to `+1`.
    ///
    /// # Panics
    ///
    /// Panics if an observation references `worker ≥ num_workers`.
    pub fn fit(&self, labels: &LabelSet, num_workers: usize) -> TruthDiscoveryFit {
        let num_tasks = labels.num_tasks();
        let mut weights = vec![1.0f64; num_workers];
        let mut estimates: Vec<Option<Label>> = vec![None; num_tasks];

        // Initial majority vote.
        self.vote(labels, &weights, &mut estimates);

        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..self.max_iterations {
            iterations += 1;

            // Reliability from disagreement with current estimates.
            let mut disagree = vec![self.smoothing; num_workers];
            let mut counted = vec![self.smoothing * 2.0; num_workers];
            for obs in labels.iter() {
                let w = obs.worker.index();
                assert!(w < num_workers, "observation references unknown worker");
                if let Some(est) = estimates[obs.task.index()] {
                    counted[w] += 1.0;
                    if obs.label != est {
                        disagree[w] += 1.0;
                    }
                }
            }
            let total_rate: f64 = (0..num_workers)
                .map(|w| disagree[w] / counted[w])
                .sum::<f64>()
                .max(f64::MIN_POSITIVE);
            for w in 0..num_workers {
                let rate = disagree[w] / counted[w];
                // CRH weight: −ln of the normalized disagreement; clamp to
                // keep weights non-negative even for the single-source
                // degenerate case.
                weights[w] = (-(rate / total_rate).ln()).max(0.0);
            }

            // Weighted re-vote.
            let mut next = estimates.clone();
            self.vote(labels, &weights, &mut next);
            let changed = next != estimates;
            estimates = next;
            if self.stop_on_fixpoint && !changed {
                converged = true;
                break;
            }
        }

        // Final per-worker agreement rates as accuracy estimates.
        let mut agree = vec![0.0f64; num_workers];
        let mut counted = vec![0.0f64; num_workers];
        for obs in labels.iter() {
            if let Some(est) = estimates[obs.task.index()] {
                let w = obs.worker.index();
                counted[w] += 1.0;
                if obs.label == est {
                    agree[w] += 1.0;
                }
            }
        }
        let accuracies = (0..num_workers)
            .map(|w| {
                if counted[w] > 0.0 {
                    (agree[w] + 1.0) / (counted[w] + 2.0)
                } else {
                    0.5
                }
            })
            .collect();

        TruthDiscoveryFit {
            labels: estimates,
            weights,
            accuracies,
            iterations,
            converged,
        }
    }

    fn vote(&self, labels: &LabelSet, weights: &[f64], out: &mut [Option<Label>]) {
        for (j, slot) in out.iter_mut().enumerate() {
            let reports = labels.for_task(mcs_types::TaskId(j as u32));
            if reports.is_empty() {
                *slot = None;
                continue;
            }
            let score: f64 = reports
                .iter()
                .map(|&(w, l)| weights[w.index()] * l.to_f64())
                .sum();
            *slot = Some(Label::from_sign(score));
        }
    }
}

impl TruthDiscoveryFit {
    /// Estimated accuracy of one worker.
    pub fn accuracy(&self, worker: WorkerId) -> f64 {
        self.accuracies[worker.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{generate_labels, Observation};
    use mcs_num::rng;
    use mcs_types::{Bundle, SkillMatrix, TaskId};

    #[test]
    fn recovers_truth_with_reliable_majority() {
        let theta = [0.9, 0.9, 0.85, 0.6, 0.55];
        let k = 150usize;
        let skills = SkillMatrix::from_rows(theta.iter().map(|&t| vec![t; k]).collect()).unwrap();
        let mut r = rng::seeded(12);
        let truth: Vec<Label> = (0..k).map(|_| Label::random(&mut r)).collect();
        let all = Bundle::new((0..k as u32).map(TaskId).collect());
        let assignment: Vec<(WorkerId, Bundle)> =
            (0..5).map(|i| (WorkerId(i), all.clone())).collect();
        let labels = generate_labels(&skills, &truth, &assignment, &mut r);

        let fit = TruthDiscovery::default().fit(&labels, 5);
        let correct = fit
            .labels
            .iter()
            .zip(&truth)
            .filter(|(a, b)| **a == Some(**b))
            .count();
        assert!(
            correct as f64 / k as f64 > 0.95,
            "only {correct}/{k} recovered"
        );
        // Better workers earn larger weights.
        assert!(fit.weights[0] > fit.weights[4]);
        assert!(fit.accuracy(WorkerId(0)) > fit.accuracy(WorkerId(4)));
    }

    #[test]
    fn beats_plain_majority_when_experts_are_few() {
        // 2 experts vs 3 near-random workers; weighting should outperform
        // the unweighted vote.
        let theta = [0.95, 0.95, 0.52, 0.52, 0.52];
        let k = 300usize;
        let skills = SkillMatrix::from_rows(theta.iter().map(|&t| vec![t; k]).collect()).unwrap();
        let mut r = rng::seeded(32);
        let truth: Vec<Label> = (0..k).map(|_| Label::random(&mut r)).collect();
        let all = Bundle::new((0..k as u32).map(TaskId).collect());
        let assignment: Vec<(WorkerId, Bundle)> =
            (0..5).map(|i| (WorkerId(i), all.clone())).collect();
        let labels = generate_labels(&skills, &truth, &assignment, &mut r);

        let majority = crate::weighted::majority_vote(&labels, k);
        let majority_correct = majority
            .iter()
            .zip(&truth)
            .filter(|(a, b)| **a == Some(**b))
            .count();
        let fit = TruthDiscovery::default().fit(&labels, 5);
        let td_correct = fit
            .labels
            .iter()
            .zip(&truth)
            .filter(|(a, b)| **a == Some(**b))
            .count();
        assert!(
            td_correct > majority_correct,
            "truth discovery {td_correct} vs majority {majority_correct}"
        );
    }

    #[test]
    fn empty_input_is_handled() {
        let fit = TruthDiscovery::default().fit(&LabelSet::new(3), 2);
        assert_eq!(fit.labels, vec![None, None, None]);
        assert_eq!(fit.accuracies, vec![0.5, 0.5]);
    }

    #[test]
    fn silent_worker_keeps_prior() {
        let labels: LabelSet = [Observation {
            worker: WorkerId(0),
            task: TaskId(0),
            label: Label::Pos,
        }]
        .into_iter()
        .collect();
        let fit = TruthDiscovery::default().fit(&labels, 3);
        assert_eq!(fit.accuracies[1], 0.5);
        assert_eq!(fit.accuracies[2], 0.5);
        assert_eq!(fit.labels[0], Some(Label::Pos));
    }

    #[test]
    fn iteration_cap_respected() {
        let mut r = rng::seeded(8);
        let labels: LabelSet = (0..40u32)
            .map(|i| Observation {
                worker: WorkerId(i % 5),
                task: TaskId(i / 5),
                label: Label::random(&mut r),
            })
            .collect();
        let fit = TruthDiscovery {
            max_iterations: 1,
            stop_on_fixpoint: false,
            ..Default::default()
        }
        .fit(&labels, 5);
        assert_eq!(fit.iterations, 1);
        assert!(!fit.converged);
    }

    #[test]
    fn weights_are_finite_and_nonnegative() {
        let mut r = rng::seeded(9);
        let labels: LabelSet = (0..60u32)
            .map(|i| Observation {
                worker: WorkerId(i % 6),
                task: TaskId(i / 6),
                label: Label::random(&mut r),
            })
            .collect();
        let fit = TruthDiscovery::default().fit(&labels, 6);
        for &w in &fit.weights {
            assert!(w.is_finite() && w >= 0.0);
        }
    }
}
