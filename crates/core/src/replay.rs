//! Warm-started winner-sequence replay over a *growing* worker pool — the
//! online recompute path.
//!
//! The offline engines answer "what is the winner schedule of this fixed
//! pool?". Streaming workloads ask a different question at every arrival:
//! *given the workers seen so far, what is the cheapest uniform clearing
//! price on the grid, and who would win at it?* Rebuilding the residual
//! schedule from scratch per arrival costs a full greedy selection each
//! time. [`OnlinePricer`] instead maintains the answer incrementally with
//! the same replay machinery the ascending price sweep (PR 5) uses across
//! price intervals, applied across *time*:
//!
//! * Arrivals bidding **above** the current quote cannot move the covering
//!   prefix or join the candidate set — `O(log n)` bookkeeping, no
//!   selection work at all.
//! * Arrivals joining the candidate set replay the incumbent winner
//!   sequence against the single newcomer; when no step prefers the
//!   newcomer (rank-aware, so exact ties resolve exactly as the engine's
//!   CELF heap would), the sequence is confirmed unchanged.
//! * Only when the replay diverges — or the quote itself drops — does the
//!   greedy rerun, warm-seeded from cached initial gains.
//!
//! The maintained quote is **bit-identical** to
//! `ScheduleEngine::build_residual(instance, requirements, pool)`'s first
//! feasible grid price and winner set; `mcs-verify` checks this
//! differentially and the unit tests below pin it per arrival.

use mcs_types::{CoverageView, Instance, McsError, Price, PriceGrid, SparseCoverage, WorkerId};

use crate::schedule::{apply_winner, celf_sequence, marginal_gain, COVER_EPS};

/// The marginal coverage `Σ_j min(Q'_j, q_ij)` of one worker against a
/// residual requirement vector — the single shared implementation every
/// engine uses, re-exported for online consumers so streamed decisions are
/// bit-for-bit comparable with offline builds.
#[inline]
pub fn marginal_coverage(cover: &SparseCoverage, worker: WorkerId, residual: &[f64]) -> f64 {
    marginal_gain(cover, worker, residual)
}

/// Applies one accepted worker to a residual requirement vector,
/// decrementing the running total deficit — the same accumulation order as
/// the offline selectors.
#[inline]
pub fn apply_coverage(
    cover: &SparseCoverage,
    worker: WorkerId,
    residual: &mut [f64],
    remaining: &mut f64,
) {
    apply_winner(cover, worker, residual, remaining);
}

/// Selection-time marginal gains of a winner sequence: entry `i` is the
/// marginal coverage winner `i` had at the moment the greedy picked her.
/// The smallest entry divided by the clearing price is the density of the
/// least dense winner — the threshold online stage-sampling learns.
pub fn selection_gains(
    cover: &SparseCoverage,
    requirements: &[f64],
    sequence: &[WorkerId],
) -> Vec<f64> {
    let mut residual = requirements.to_vec();
    let mut remaining: f64 = residual.iter().map(|r| r.max(0.0)).sum();
    let mut gains = Vec::with_capacity(sequence.len());
    for &w in sequence {
        gains.push(marginal_gain(cover, w, &residual));
        apply_winner(cover, w, &mut residual, &mut remaining);
    }
    gains
}

/// The canonical greedy winner sequence over an arbitrary candidate pool:
/// candidates are ranked by `(bid price, worker id)` — the exact tie order
/// of the offline engines — and selected by largest marginal coverage until
/// `requirements` is met. This is the learning step of online stage
/// sampling: run it over the observed sample at a candidate threshold price
/// and the selection-time gains (via [`selection_gains`]) yield the density
/// threshold. Errs with a coverage shortfall when the pool cannot cover.
pub fn greedy_sequence(
    instance: &Instance,
    requirements: &[f64],
    candidates: &[WorkerId],
) -> Result<Vec<WorkerId>, McsError> {
    let cover = instance.sparse_coverage();
    let num_workers = instance.num_workers();
    for &w in candidates {
        if w.0 as usize >= num_workers {
            return Err(McsError::WorkerOutOfRange {
                worker: w,
                num_workers,
            });
        }
    }
    let mut ranked: Vec<WorkerId> = candidates.to_vec();
    ranked.sort_unstable_by_key(|&w| (instance.bids().bid(w).price(), w));
    ranked.dedup();
    let init: Vec<f64> = ranked
        .iter()
        .map(|&w| marginal_gain(&cover, w, requirements))
        .collect();
    celf_sequence(&ranked, &cover, &init, requirements)
}

/// Replay counters: how the pricer absorbed each arrival.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Arrivals absorbed with pool bookkeeping only (bid above the quote).
    pub skipped: u64,
    /// Arrivals where replaying the incumbent sequence confirmed it.
    pub confirmed: u64,
    /// Arrivals that forced a warm-started greedy rebuild.
    pub rebuilt: u64,
}

/// The pricer's current answer: the cheapest feasible grid price over the
/// arrived pool, with the winner set it clears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quote {
    /// Smallest grid price at which the arrived pool covers the
    /// requirements.
    pub price: Price,
    /// Size of the greedy winner set at that price.
    pub winners: usize,
}

impl Quote {
    /// The uniform-clearing payment `price × winners`.
    pub fn payment(&self) -> Price {
        Price::from_tenths(self.price.tenths() * self.winners as i64)
    }
}

/// Incremental hindsight pricing over a pool that grows one arrival at a
/// time (see the module docs for the replay strategy).
#[derive(Debug, Clone)]
pub struct OnlinePricer {
    cover: SparseCoverage,
    requirements: Vec<f64>,
    total_requirement: f64,
    grid: PriceGrid,
    bid_price: Vec<Price>,
    arrived: Vec<bool>,
    /// Arrived workers in the engine's canonical (price, id) order.
    pool: Vec<WorkerId>,
    /// Initial gains against the full requirements, aligned with `pool`.
    pool_init: Vec<f64>,
    /// Number of leading pool members bidding at most the quote price.
    prefix: usize,
    quote_price: Option<Price>,
    /// Winner sequence over `pool[..prefix]`, in selection order.
    sequence: Vec<WorkerId>,
    stats: ReplayStats,
}

impl OnlinePricer {
    /// A pricer over the instance's full coverage requirements with an
    /// empty arrived pool.
    pub fn new(instance: &Instance) -> OnlinePricer {
        let cover = instance.sparse_coverage();
        let requirements = cover.requirements().to_vec();
        Self::with_requirements(instance, requirements)
    }

    /// A pricer over caller-supplied (possibly residual) requirements;
    /// non-positive entries count as already satisfied.
    pub fn with_requirements(instance: &Instance, requirements: Vec<f64>) -> OnlinePricer {
        let cover = instance.sparse_coverage();
        let total_requirement = requirements.iter().map(|r| r.max(0.0)).sum();
        let bid_price = (0..instance.num_workers())
            .map(|i| instance.bids().bid(WorkerId(i as u32)).price())
            .collect();
        OnlinePricer {
            cover,
            requirements,
            total_requirement,
            grid: instance.price_grid().clone(),
            bid_price,
            arrived: vec![false; instance.num_workers()],
            pool: Vec::new(),
            pool_init: Vec::new(),
            prefix: 0,
            quote_price: None,
            sequence: Vec::new(),
            stats: ReplayStats::default(),
        }
    }

    /// Canonical rank of a worker: ascending bid price, ties by id — the
    /// order the engines sort candidates in.
    #[inline]
    fn rank(&self, w: WorkerId) -> (Price, WorkerId) {
        (self.bid_price[w.index()], w)
    }

    /// Absorbs one arrival and returns the updated quote (`None` while the
    /// arrived pool cannot cover the requirements within the grid).
    ///
    /// # Errors
    ///
    /// * [`McsError::WorkerOutOfRange`] — the worker is not part of the
    ///   instance, or has already arrived.
    pub fn push(&mut self, w: WorkerId) -> Result<Option<Quote>, McsError> {
        let slot = self.arrived.get_mut(w.index()).ok_or({
            McsError::WorkerOutOfRange {
                worker: w,
                num_workers: self.bid_price.len(),
            }
        })?;
        if *slot {
            return Err(McsError::WorkerOutOfRange {
                worker: w,
                num_workers: self.bid_price.len(),
            });
        }
        *slot = true;

        let rank = self.rank(w);
        let pos = self.pool.partition_point(|&other| self.rank(other) < rank);
        self.pool.insert(pos, w);
        self.pool_init
            .insert(pos, marginal_gain(&self.cover, w, &self.requirements));

        match self.quote_price {
            // A bid above the standing quote cannot shrink the covering
            // prefix or enter the candidate set: bookkeeping only.
            Some(q) if self.bid_price[w.index()] > q => {
                self.stats.skipped += 1;
                return Ok(self.quote());
            }
            _ => {}
        }

        let previous_quote = self.quote_price;
        self.quote_price = self.requote();
        let Some(q) = self.quote_price else {
            self.prefix = 0;
            self.sequence.clear();
            return Ok(None);
        };
        self.prefix = self
            .pool
            .partition_point(|&other| self.bid_price[other.index()] <= q);

        if previous_quote == Some(q) {
            // The pool grew by exactly this newcomer inside the candidate
            // prefix; replay the incumbents against her.
            if self.replay_confirms_newcomer(w) {
                self.stats.confirmed += 1;
                return Ok(self.quote());
            }
        }
        self.stats.rebuilt += 1;
        self.sequence = celf_sequence(
            &self.pool[..self.prefix],
            &self.cover,
            &self.pool_init[..self.prefix],
            &self.requirements,
        )?;
        Ok(self.quote())
    }

    /// Recomputes the cheapest feasible grid price by walking the arrived
    /// pool in price order until the requirements close.
    fn requote(&self) -> Option<Price> {
        if self.total_requirement <= COVER_EPS {
            return Some(self.grid.min());
        }
        let mut residual = self.requirements.clone();
        let mut remaining = self.total_requirement;
        for &w in &self.pool {
            apply_winner(&self.cover, w, &mut residual, &mut remaining);
            if remaining <= COVER_EPS {
                return self
                    .grid
                    .suffix_from(self.bid_price[w.index()])
                    .map(|g| g.min());
            }
        }
        None
    }

    /// Replays the incumbent winner sequence against a single newcomer.
    /// Confirms (returns `true`) iff at no step the newcomer's fresh gain
    /// strictly beats the incumbent's — or ties it with a better rank,
    /// which is exactly when the CELF heap would pop her first.
    fn replay_confirms_newcomer(&self, newcomer: WorkerId) -> bool {
        let new_rank = self.rank(newcomer);
        let mut residual = self.requirements.clone();
        let mut remaining = self.total_requirement;
        for &incumbent in &self.sequence {
            let held = marginal_gain(&self.cover, incumbent, &residual);
            let challenger = marginal_gain(&self.cover, newcomer, &residual);
            match challenger.total_cmp(&held) {
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal => {
                    if new_rank < self.rank(incumbent) {
                        return false;
                    }
                }
                std::cmp::Ordering::Less => {}
            }
            apply_winner(&self.cover, incumbent, &mut residual, &mut remaining);
        }
        true
    }

    /// The current quote, if the arrived pool covers within the grid.
    pub fn quote(&self) -> Option<Quote> {
        self.quote_price.map(|price| Quote {
            price,
            winners: self.sequence.len(),
        })
    }

    /// The winner sequence at the current quote, in selection order
    /// (empty while no quote exists).
    pub fn sequence(&self) -> &[WorkerId] {
        &self.sequence
    }

    /// The winner set at the current quote, ascending by id — the same
    /// presentation as [`crate::PriceSchedule::winners`].
    pub fn winners_sorted(&self) -> Vec<WorkerId> {
        let mut winners = self.sequence.clone();
        winners.sort_unstable();
        winners
    }

    /// Selection-time gains of the current winner sequence.
    pub fn sequence_gains(&self) -> Vec<f64> {
        selection_gains(&self.cover, &self.requirements, &self.sequence)
    }

    /// How arrivals have been absorbed so far.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// Workers arrived so far, in canonical (price, id) order.
    pub fn pool(&self) -> &[WorkerId] {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ScheduleEngine;
    use crate::schedule::SelectionRule;
    use mcs_types::{Bid, Bundle, Price, SkillMatrix, TaskId};
    use rand::seq::SliceRandom;
    use rand::Rng;

    fn random_instance(seed: u64, workers: usize, tasks: usize) -> Instance {
        let mut r = mcs_num::rng::seeded(seed);
        let bids: Vec<Bid> = (0..workers)
            .map(|_| {
                let mut bundle: Vec<TaskId> = (0..tasks)
                    .filter(|_| r.gen_bool(0.6))
                    .map(|j| TaskId(j as u32))
                    .collect();
                if bundle.is_empty() {
                    bundle.push(TaskId(r.gen_range(0..tasks) as u32));
                }
                Bid::new(
                    Bundle::new(bundle),
                    Price::from_f64(r.gen_range(10.0..20.0)),
                )
            })
            .collect();
        let skills = SkillMatrix::from_rows(
            (0..workers)
                .map(|_| (0..tasks).map(|_| r.gen_range(0.75..0.95)).collect())
                .collect(),
        )
        .unwrap();
        Instance::builder(tasks)
            .bids(bids)
            .skills(skills)
            .uniform_error_bound(0.3)
            .price_grid_f64(10.0, 22.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap()
    }

    /// After every arrival, the maintained quote must be bit-identical to
    /// the from-scratch residual build over the arrived pool.
    #[test]
    fn pricer_matches_from_scratch_residual_build_per_arrival() {
        for seed in 0..8u64 {
            let instance = random_instance(seed, 24, 5);
            let requirements = instance.sparse_coverage().requirements().to_vec();
            let mut pricer = OnlinePricer::new(&instance);
            let mut order: Vec<WorkerId> = (0..instance.num_workers())
                .map(|i| WorkerId(i as u32))
                .collect();
            order.shuffle(&mut mcs_num::rng::seeded(seed ^ 0xD00D));
            let mut arrived: Vec<WorkerId> = Vec::new();
            for &w in &order {
                arrived.push(w);
                let quote = pricer.push(w).expect("arrival in range");
                let scratch = ScheduleEngine::new(SelectionRule::MarginalCoverage).build_residual(
                    &instance,
                    &requirements,
                    &arrived,
                );
                match scratch {
                    Ok(schedule) => {
                        let quote = quote.expect("pool feasible, quote must exist");
                        assert_eq!(quote.price, schedule.prices()[0], "seed {seed}");
                        assert_eq!(
                            pricer.winners_sorted(),
                            schedule.winners(0),
                            "seed {seed}, pool size {}",
                            arrived.len()
                        );
                        assert_eq!(quote.payment(), schedule.total_payment(0), "seed {seed}");
                    }
                    Err(_) => assert!(quote.is_none(), "seed {seed}: quote on infeasible pool"),
                }
            }
            let stats = pricer.stats();
            // Every arrival after feasibility is classified exactly once;
            // arrivals before feasibility touch no counter.
            assert!(
                stats.skipped + stats.confirmed + stats.rebuilt <= instance.num_workers() as u64
            );
            assert!(
                stats.rebuilt >= 1,
                "seed {seed}: feasibility forces one build"
            );
        }
    }

    #[test]
    fn duplicate_and_out_of_range_arrivals_are_typed_errors() {
        let instance = random_instance(3, 6, 3);
        let mut pricer = OnlinePricer::new(&instance);
        pricer.push(WorkerId(0)).expect("first arrival");
        assert!(pricer.push(WorkerId(0)).is_err(), "duplicate arrival");
        assert!(pricer.push(WorkerId(99)).is_err(), "out of range");
    }

    #[test]
    fn satisfied_requirements_quote_the_grid_floor() {
        let instance = random_instance(5, 6, 3);
        let mut pricer =
            OnlinePricer::with_requirements(&instance, vec![0.0; instance.num_tasks()]);
        let quote = pricer.push(WorkerId(2)).expect("arrival").expect("quote");
        assert_eq!(quote.price, instance.price_grid().min());
        assert_eq!(quote.winners, 0);
    }

    #[test]
    fn selection_gains_replay_the_sequence() {
        let instance = random_instance(7, 20, 4);
        let mut pricer = OnlinePricer::new(&instance);
        for i in 0..instance.num_workers() {
            pricer.push(WorkerId(i as u32)).expect("arrival");
        }
        let gains = pricer.sequence_gains();
        assert_eq!(gains.len(), pricer.sequence().len());
        assert!(gains.iter().all(|&g| g > 0.0));
        // Greedy gains are non-increasing along the selection order.
        for pair in gains.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-12);
        }
    }
}
