//! The exact optimal single-price mechanism `R_OPT = min_p p·|S_OPT(p)|`.

use std::time::{Duration, Instant};

use mcs_ilp::{BnbOptions, CoveringIlp, IlpStatus};
use mcs_types::{CoverageView, Instance, McsError, Price, WorkerId};

use crate::outcome::AuctionOutcome;
use crate::schedule::workers_by_price;

/// The optimal total-payment benchmark of §VII-A.
///
/// For every candidate price `p ∈ P` it computes the true
/// minimum-cardinality winner set `S_OPT(p)` over the workers bidding at
/// most `p` — the paper uses GUROBI; we use the [`mcs_ilp`]
/// branch-and-bound — and reports the price minimizing `p·|S_OPT(p)|`.
/// Like Algorithm 1, it exploits that `S_OPT(p)` is constant between
/// consecutive bidding prices, so at most `N` ILPs are solved regardless
/// of `|P|`.
///
/// Solving each ILP is NP-hard (Theorem 1), which is the entire point of
/// Table II: this mechanism's runtime explodes with `N` and `K` while
/// DP-hSRC stays flat. A per-price time budget keeps large sweeps
/// terminating; timed-out solves fall back to the branch-and-bound
/// incumbent and are flagged.
#[derive(Debug, Clone, Default)]
pub struct OptimalMechanism {
    /// Optional wall-clock budget per per-price ILP solve.
    pub per_price_budget: Option<Duration>,
}

/// Diagnostics for one per-interval ILP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct PerPriceSolve {
    /// The cheapest grid price in the interval this solve covers.
    pub price: Price,
    /// `|S_OPT(p)|` (or the incumbent cardinality on timeout).
    pub cardinality: usize,
    /// A proven lower bound on `|S_OPT(p)|` (equals `cardinality` when
    /// `exact`).
    pub cardinality_lower_bound: usize,
    /// Whether optimality was proven.
    pub exact: bool,
    /// Time spent in branch-and-bound.
    pub elapsed: Duration,
    /// Nodes explored.
    pub nodes: u64,
}

/// The optimal mechanism's result.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalOutcome {
    /// The payment-minimizing price.
    pub price: Price,
    /// The minimum-cardinality winner set at that price.
    pub winners: Vec<WorkerId>,
    /// `true` iff every per-price solve proved optimality, making the
    /// reported `R_OPT` exact.
    pub exact: bool,
    /// A proven lower bound on `R_OPT`; equals [`OptimalOutcome::total_payment`]
    /// when `exact`, otherwise the true optimum lies in
    /// `[payment_lower_bound, total_payment()]`.
    pub payment_lower_bound: Price,
    /// One record per solved bidding-price interval.
    pub solves: Vec<PerPriceSolve>,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl OptimalOutcome {
    /// The optimal total payment `R_OPT = p·|S_OPT(p)|`.
    pub fn total_payment(&self) -> Price {
        self.price * self.winners.len()
    }

    /// Converts to a regular auction outcome.
    pub fn to_outcome(&self) -> AuctionOutcome {
        AuctionOutcome::new(self.price, self.winners.clone())
    }
}

impl OptimalMechanism {
    /// Creates the mechanism with no per-price time budget (fully exact).
    pub fn new() -> Self {
        OptimalMechanism::default()
    }

    /// Creates the mechanism with a per-price ILP budget.
    pub fn with_budget(per_price_budget: Duration) -> Self {
        OptimalMechanism {
            per_price_budget: Some(per_price_budget),
        }
    }

    /// Computes `R_OPT` for an instance.
    ///
    /// # Errors
    ///
    /// * [`McsError::Infeasible`] — the full pool cannot cover some task.
    /// * [`McsError::NoFeasiblePrice`] — coverage needs a price above the
    ///   grid.
    /// * [`McsError::Solver`] — the branch-and-bound stack failed.
    pub fn solve(&self, instance: &Instance) -> Result<OptimalOutcome, McsError> {
        let start = Instant::now();
        let cover = instance.sparse_coverage();
        cover.check_feasible()?;
        let sorted = workers_by_price(instance);
        let n = sorted.len();
        let k = cover.num_tasks();
        let requirements: Vec<f64> = cover.requirements().to_vec();

        // Minimal covering prefix (same walk as Algorithm 1).
        let mut running = vec![0.0f64; k];
        let mut first_cover = None;
        for (idx, &w) in sorted.iter().enumerate() {
            for (j, q) in cover.row(w.index()) {
                running[j] += q;
            }
            if running
                .iter()
                .zip(&requirements)
                .all(|(c, q)| *c >= *q - 1e-9)
            {
                first_cover = Some(idx);
                break;
            }
        }
        let first_cover = first_cover.expect("check_feasible guaranteed coverage");
        let rho_star = instance.bids().bid(sorted[first_cover]).price();
        let grid = instance.price_grid();
        let feasible = grid
            .suffix_from(rho_star)
            .ok_or(McsError::NoFeasiblePrice {
                required_price: rho_star,
                grid_max: grid.max(),
            })?;
        let prices = feasible.to_vec();

        let bnb = BnbOptions {
            time_limit: self.per_price_budget,
            ..Default::default()
        };

        let mut best: Option<(Price, Vec<WorkerId>)> = None;
        let mut best_lower: Option<Price> = None;
        let mut solves = Vec::new();
        let mut all_exact = true;
        let mut grid_idx = 0usize;
        for i in first_cover..n {
            let upper = if i + 1 < n {
                Some(instance.bids().bid(sorted[i + 1]).price())
            } else {
                None
            };
            let start_idx = grid_idx;
            while grid_idx < prices.len() && upper.is_none_or(|u| prices[grid_idx] < u) {
                grid_idx += 1;
            }
            if grid_idx == start_idx {
                continue;
            }
            // Cheapest grid price in this interval is the only one that
            // can attain the interval's minimum payment.
            let candidate_price = prices[start_idx];

            let pool = &sorted[..=i];
            let rows: Vec<Vec<(usize, f64)>> = pool
                .iter()
                .map(|&w| cover.row(w.index()).collect())
                .collect();
            let ilp = CoveringIlp::uniform_cost_sparse(k, rows, requirements.clone())
                .expect("validated instance data is non-negative");
            let result = ilp.solve(&bnb).map_err(|e| McsError::Solver {
                message: e.to_string(),
            })?;
            let selection = result
                .best
                .expect("prefix feasibility was established before solving");
            let exact = result.status == IlpStatus::Optimal;
            all_exact &= exact;
            let card_lb = if result.lower_bound.is_finite() {
                (result.lower_bound - 1e-6).ceil().max(0.0) as usize
            } else {
                selection.selected.len()
            };
            solves.push(PerPriceSolve {
                price: candidate_price,
                cardinality: selection.selected.len(),
                cardinality_lower_bound: card_lb.min(selection.selected.len()),
                exact,
                elapsed: result.elapsed,
                nodes: result.nodes_explored,
            });
            let lb_payment = candidate_price * card_lb.min(selection.selected.len());
            if best_lower.is_none_or(|p| lb_payment < p) {
                best_lower = Some(lb_payment);
            }
            let winners: Vec<WorkerId> = selection.selected.iter().map(|&ci| pool[ci]).collect();
            let payment = candidate_price * winners.len();
            if best.as_ref().is_none_or(|(p, w)| payment < *p * w.len()) {
                best = Some((candidate_price, winners));
            }
            if grid_idx == prices.len() {
                break;
            }
        }

        let (price, mut winners) = best.expect("at least one feasible interval exists");
        winners.sort_unstable();
        let total = price * winners.len();
        Ok(OptimalOutcome {
            price,
            winners,
            exact: all_exact,
            payment_lower_bound: best_lower.unwrap_or(total).min(total),
            solves,
            elapsed: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaselineAuction, DpHsrcAuction, ScheduledMechanism};
    use mcs_types::{Bid, Bundle, SkillMatrix, TaskId};

    fn instance() -> Instance {
        let all = |t: &[u32]| Bundle::new(t.iter().copied().map(TaskId).collect());
        let bids = vec![
            Bid::new(all(&[0, 1, 2]), Price::from_f64(10.0)),
            Bid::new(all(&[0]), Price::from_f64(10.5)),
            Bid::new(all(&[1]), Price::from_f64(10.5)),
            Bid::new(all(&[2]), Price::from_f64(10.5)),
            Bid::new(all(&[3]), Price::from_f64(11.0)),
            Bid::new(all(&[4]), Price::from_f64(11.0)),
            Bid::new(all(&[3, 4]), Price::from_f64(11.5)),
        ];
        let skills = SkillMatrix::from_rows(vec![
            vec![0.95, 0.95, 0.95, 0.5, 0.5],
            vec![0.95, 0.5, 0.5, 0.5, 0.5],
            vec![0.5, 0.95, 0.5, 0.5, 0.5],
            vec![0.5, 0.5, 0.95, 0.5, 0.5],
            vec![0.5, 0.5, 0.5, 0.95, 0.5],
            vec![0.5, 0.5, 0.5, 0.5, 0.95],
            vec![0.5, 0.5, 0.5, 0.9, 0.9],
        ])
        .unwrap();
        Instance::builder(5)
            .bids(bids)
            .skills(skills)
            .uniform_error_bound(0.7)
            .price_grid_f64(10.0, 15.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(15.0))
            .build()
            .unwrap()
    }

    #[test]
    fn optimal_is_exact_and_feasible() {
        let inst = instance();
        let opt = OptimalMechanism::new().solve(&inst).unwrap();
        assert!(opt.exact);
        let cover = inst.coverage_problem();
        assert!(cover.is_satisfied_by(opt.winners.iter().copied()));
        for &w in &opt.winners {
            assert!(inst.bids().bid(w).price() <= opt.price);
        }
        // Optimal at p = 11: S = {w0, w4, w5} → payment 33.
        assert_eq!(opt.price, Price::from_f64(11.0));
        assert_eq!(opt.winners.len(), 3);
        assert_eq!(opt.total_payment(), Price::from_f64(33.0));
    }

    #[test]
    fn optimal_lower_bounds_every_schedule_price() {
        let inst = instance();
        let opt = OptimalMechanism::new().solve(&inst).unwrap();
        let dp = DpHsrcAuction::new(0.1).unwrap().schedule(&inst).unwrap();
        let base = BaselineAuction::new(0.1).unwrap().schedule(&inst).unwrap();
        for s in [&dp, &base] {
            assert!(opt.total_payment() <= s.min_total_payment().unwrap());
        }
    }

    #[test]
    fn solve_records_per_interval_diagnostics() {
        let inst = instance();
        let opt = OptimalMechanism::new().solve(&inst).unwrap();
        assert!(!opt.solves.is_empty());
        // Candidate prices ascend and cardinalities never increase.
        for w in opt.solves.windows(2) {
            assert!(w[0].price < w[1].price);
            assert!(w[0].cardinality >= w[1].cardinality);
        }
        assert!(opt.solves.iter().all(|s| s.exact));
    }

    #[test]
    fn budgeted_solve_brackets_r_opt() {
        let inst = instance();
        let exact = OptimalMechanism::new().solve(&inst).unwrap();
        assert!(exact.exact);
        assert_eq!(exact.payment_lower_bound, exact.total_payment());
        // Zero budget: everything runs on incumbents.
        let budgeted = OptimalMechanism::with_budget(Duration::ZERO)
            .solve(&inst)
            .unwrap();
        assert!(!budgeted.exact);
        assert!(budgeted.payment_lower_bound <= budgeted.total_payment());
        // The true R_OPT lies inside the reported bracket.
        assert!(budgeted.payment_lower_bound <= exact.total_payment());
        assert!(exact.total_payment() <= budgeted.total_payment());
        // Per-solve lower bounds are consistent too.
        for s in &budgeted.solves {
            assert!(s.cardinality_lower_bound <= s.cardinality);
        }
    }

    #[test]
    fn infeasible_instance_is_reported() {
        let inst = Instance::builder(1)
            .bids(vec![Bid::new(
                Bundle::new(vec![TaskId(0)]),
                Price::from_f64(10.0),
            )])
            .skills(SkillMatrix::from_rows(vec![vec![0.6]]).unwrap())
            .uniform_error_bound(0.1)
            .price_grid_f64(10.0, 15.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(15.0))
            .build()
            .unwrap();
        assert!(matches!(
            OptimalMechanism::new().solve(&inst),
            Err(McsError::Infeasible { .. })
        ));
    }

    #[test]
    fn to_outcome_roundtrip() {
        let inst = instance();
        let opt = OptimalMechanism::new().solve(&inst).unwrap();
        let o = opt.to_outcome();
        assert_eq!(o.price(), opt.price);
        assert_eq!(o.total_payment(), opt.total_payment());
    }
}
