//! The DP-hSRC auction (Algorithm 1), end to end.

use rand::Rng;

use mcs_types::{Instance, McsError};

use crate::exponential::ExponentialMechanism;
use crate::outcome::AuctionOutcome;
use crate::schedule::{build_schedule, PricePmf, PriceSchedule, SelectionRule};

/// The paper's differentially private hSRC auction.
///
/// One value of ε configures the whole mechanism; everything else comes
/// from the [`Instance`]. Use [`DpHsrcAuction::run`] to execute one
/// randomized auction, or [`DpHsrcAuction::pmf`] to obtain the *exact*
/// output distribution — the object that the privacy (Theorem 2),
/// truthfulness (Theorem 3) and payment (Theorem 6) analyses all quantify
/// over.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpHsrcAuction {
    epsilon: f64,
}

impl DpHsrcAuction {
    /// Creates the auction with privacy budget ε.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not strictly positive and finite.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive and finite"
        );
        DpHsrcAuction { epsilon }
    }

    /// The privacy budget ε.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Computes the per-price winner schedule (Algorithm 1, lines 1–15).
    ///
    /// # Errors
    ///
    /// [`McsError::Infeasible`] or [`McsError::NoFeasiblePrice`] when the
    /// error-bound constraints cannot be met at any grid price.
    pub fn schedule(&self, instance: &Instance) -> Result<PriceSchedule, McsError> {
        build_schedule(instance, SelectionRule::MarginalCoverage)
    }

    /// The exact output distribution over feasible prices (Eq. 11).
    ///
    /// # Errors
    ///
    /// Same as [`DpHsrcAuction::schedule`].
    pub fn pmf(&self, instance: &Instance) -> Result<PricePmf, McsError> {
        let schedule = self.schedule(instance)?;
        Ok(ExponentialMechanism::for_instance(self.epsilon, instance).pmf(schedule))
    }

    /// Runs the auction once: builds the schedule, samples a price from the
    /// exponential mechanism, and returns the price with its winner set
    /// (Algorithm 1, lines 16–18).
    ///
    /// # Errors
    ///
    /// Same as [`DpHsrcAuction::schedule`].
    pub fn run<R: Rng + ?Sized>(
        &self,
        instance: &Instance,
        rng: &mut R,
    ) -> Result<AuctionOutcome, McsError> {
        Ok(self.pmf(instance)?.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_num::rng;
    use mcs_types::{Bid, Bundle, Price, SkillMatrix, TaskId, TrueType};

    fn instance() -> Instance {
        let bids = vec![
            Bid::new(
                Bundle::new(vec![TaskId(0), TaskId(1)]),
                Price::from_f64(12.0),
            ),
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(11.0)),
            Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(14.0)),
            Bid::new(
                Bundle::new(vec![TaskId(0), TaskId(1)]),
                Price::from_f64(18.0),
            ),
        ];
        let skills = SkillMatrix::from_rows(vec![
            vec![0.9, 0.9],
            vec![0.9, 0.5],
            vec![0.5, 0.95],
            vec![0.9, 0.9],
        ])
        .unwrap();
        Instance::builder(2)
            .bids(bids)
            .skills(skills)
            .uniform_error_bound(0.4)
            .price_grid_f64(10.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap()
    }

    #[test]
    fn run_produces_feasible_outcome() {
        let auction = DpHsrcAuction::new(0.1);
        let inst = instance();
        let mut r = rng::seeded(1);
        let outcome = auction.run(&inst, &mut r).unwrap();
        assert!(inst.price_grid().contains(outcome.price()));
        let cover = inst.coverage_problem();
        assert!(cover.is_satisfied_by(outcome.winners().iter().copied()));
        // Every winner bid at most the clearing price.
        for &w in outcome.winners() {
            assert!(inst.bids().bid(w).price() <= outcome.price());
        }
    }

    #[test]
    fn individual_rationality_under_truthful_bids() {
        let inst = instance();
        // Truthful types: bids equal true types.
        let types: Vec<TrueType> = inst
            .bids()
            .iter()
            .map(|(_, b)| TrueType::new(b.bundle().clone(), b.price()))
            .collect();
        let auction = DpHsrcAuction::new(0.5);
        let mut r = rng::seeded(9);
        for _ in 0..200 {
            let o = auction.run(&inst, &mut r).unwrap();
            assert!(o.is_individually_rational(&types));
        }
    }

    #[test]
    fn sampling_matches_exact_pmf() {
        let inst = instance();
        let auction = DpHsrcAuction::new(2.0);
        let pmf = auction.pmf(&inst).unwrap();
        let mut hist = mcs_num::Histogram::new(pmf.schedule().len());
        let mut r = rng::seeded(4);
        let trials = 50_000;
        for _ in 0..trials {
            let o = pmf.sample(&mut r);
            let idx = pmf
                .schedule()
                .prices()
                .iter()
                .position(|&p| p == o.price())
                .unwrap();
            hist.record(idx);
        }
        // L∞ deviation well within Monte-Carlo noise for 50k samples.
        assert!(hist.max_deviation_from(pmf.probs()) < 0.01);
    }

    #[test]
    fn epsilon_controls_concentration() {
        let inst = instance();
        let loose = DpHsrcAuction::new(0.01).pmf(&inst).unwrap();
        let tight = DpHsrcAuction::new(50.0).pmf(&inst).unwrap();
        // Higher ε concentrates on cheaper prices → lower expected payment.
        assert!(tight.expected_total_payment() <= loose.expected_total_payment() + 1e-9);
        // And strictly so in this instance where payments differ.
        assert!(tight.expected_total_payment() < loose.expected_total_payment());
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = instance();
        let auction = DpHsrcAuction::new(0.1);
        let a = auction.run(&inst, &mut rng::seeded(7)).unwrap();
        let b = auction.run(&inst, &mut rng::seeded(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn negative_epsilon_rejected() {
        let _ = DpHsrcAuction::new(-0.1);
    }
}
