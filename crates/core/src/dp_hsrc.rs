//! The DP-hSRC auction (Algorithm 1), end to end.

use rand::Rng;

use mcs_types::{Instance, McsError};

use crate::engine::{ScheduleEngine, Strategy};
use crate::mechanism::{run_scheduled, Mechanism, ScheduledMechanism};
use crate::outcome::AuctionOutcome;
use crate::schedule::SelectionRule;

/// The paper's differentially private hSRC auction.
///
/// One value of ε configures the whole mechanism; everything else comes
/// from the [`Instance`]. The mechanism surface lives on the
/// [`Mechanism`]/[`ScheduledMechanism`] traits: use
/// [`Mechanism::run`] to execute one randomized auction, or
/// [`ScheduledMechanism::pmf`] to obtain the *exact* output distribution —
/// the object that the privacy (Theorem 2), truthfulness (Theorem 3) and
/// payment (Theorem 6) analyses all quantify over.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpHsrcAuction {
    epsilon: f64,
    strategy: Strategy,
}

impl DpHsrcAuction {
    /// Creates the auction with privacy budget ε.
    ///
    /// # Errors
    ///
    /// Returns [`McsError::InvalidEpsilon`] if `epsilon` is not strictly
    /// positive and finite.
    pub fn new(epsilon: f64) -> Result<Self, McsError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(McsError::InvalidEpsilon { value: epsilon });
        }
        Ok(DpHsrcAuction {
            epsilon,
            strategy: Strategy::Auto,
        })
    }

    /// Selects the winner-determination strategy the auction's schedules
    /// are built with. Every strategy produces the identical mechanism
    /// output; this only changes the cost profile (e.g.
    /// [`Strategy::Indexed`] for very large worker pools).
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The privacy budget ε.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The configured winner-determination strategy.
    #[inline]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }
}

impl Mechanism for DpHsrcAuction {
    type Input = Instance;
    type Output = AuctionOutcome;

    /// Runs the auction once: builds the schedule, samples a price from the
    /// exponential mechanism, and returns the price with its winner set
    /// (Algorithm 1, lines 16–18).
    fn run<R: Rng + ?Sized>(
        &self,
        instance: &Instance,
        rng: &mut R,
    ) -> Result<AuctionOutcome, McsError> {
        run_scheduled(self, instance, rng)
    }
}

impl ScheduledMechanism for DpHsrcAuction {
    /// Algorithm 1's residual-aware greedy.
    fn selection_rule(&self) -> SelectionRule {
        SelectionRule::MarginalCoverage
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn engine(&self) -> ScheduleEngine {
        ScheduleEngine::new(self.selection_rule()).strategy(self.strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_num::rng;
    use mcs_types::{Bid, Bundle, Price, SkillMatrix, TaskId, TrueType};

    fn instance() -> Instance {
        let bids = vec![
            Bid::new(
                Bundle::new(vec![TaskId(0), TaskId(1)]),
                Price::from_f64(12.0),
            ),
            Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(11.0)),
            Bid::new(Bundle::new(vec![TaskId(1)]), Price::from_f64(14.0)),
            Bid::new(
                Bundle::new(vec![TaskId(0), TaskId(1)]),
                Price::from_f64(18.0),
            ),
        ];
        let skills = SkillMatrix::from_rows(vec![
            vec![0.9, 0.9],
            vec![0.9, 0.5],
            vec![0.5, 0.95],
            vec![0.9, 0.9],
        ])
        .unwrap();
        Instance::builder(2)
            .bids(bids)
            .skills(skills)
            .uniform_error_bound(0.4)
            .price_grid_f64(10.0, 20.0, 0.5)
            .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
            .build()
            .unwrap()
    }

    #[test]
    fn run_produces_feasible_outcome() {
        let auction = DpHsrcAuction::new(0.1).unwrap();
        let inst = instance();
        let mut r = rng::seeded(1);
        let outcome = auction.run(&inst, &mut r).unwrap();
        assert!(inst.price_grid().contains(outcome.price()));
        let cover = inst.coverage_problem();
        assert!(cover.is_satisfied_by(outcome.winners().iter().copied()));
        // Every winner bid at most the clearing price.
        for &w in outcome.winners() {
            assert!(inst.bids().bid(w).price() <= outcome.price());
        }
    }

    #[test]
    fn individual_rationality_under_truthful_bids() {
        let inst = instance();
        // Truthful types: bids equal true types.
        let types: Vec<TrueType> = inst
            .bids()
            .iter()
            .map(|(_, b)| TrueType::new(b.bundle().clone(), b.price()))
            .collect();
        let auction = DpHsrcAuction::new(0.5).unwrap();
        let mut r = rng::seeded(9);
        for _ in 0..200 {
            let o = auction.run(&inst, &mut r).unwrap();
            assert!(o.is_individually_rational(&types));
        }
    }

    #[test]
    fn sampling_matches_exact_pmf() {
        let inst = instance();
        let auction = DpHsrcAuction::new(2.0).unwrap();
        let pmf = auction.pmf(&inst).unwrap();
        let mut hist = mcs_num::Histogram::new(pmf.schedule().len());
        let mut r = rng::seeded(4);
        let trials = 50_000;
        for _ in 0..trials {
            let o = pmf.sample(&mut r);
            let idx = pmf
                .schedule()
                .prices()
                .iter()
                .position(|&p| p == o.price())
                .unwrap();
            hist.record(idx);
        }
        // L∞ deviation well within Monte-Carlo noise for 50k samples.
        assert!(hist.max_deviation_from(pmf.probs()) < 0.01);
    }

    #[test]
    fn epsilon_controls_concentration() {
        let inst = instance();
        let loose = DpHsrcAuction::new(0.01).unwrap().pmf(&inst).unwrap();
        let tight = DpHsrcAuction::new(50.0).unwrap().pmf(&inst).unwrap();
        // Higher ε concentrates on cheaper prices → lower expected payment.
        assert!(tight.expected_total_payment() <= loose.expected_total_payment() + 1e-9);
        // And strictly so in this instance where payments differ.
        assert!(tight.expected_total_payment() < loose.expected_total_payment());
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = instance();
        let auction = DpHsrcAuction::new(0.1).unwrap();
        let a = auction.run(&inst, &mut rng::seeded(7)).unwrap();
        let b = auction.run(&inst, &mut rng::seeded(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn strategy_override_does_not_change_the_mechanism() {
        let inst = instance();
        let reference = DpHsrcAuction::new(0.5).unwrap().pmf(&inst).unwrap();
        for strategy in Strategy::ALL {
            let pmf = DpHsrcAuction::new(0.5)
                .unwrap()
                .with_strategy(strategy)
                .pmf(&inst)
                .unwrap();
            assert_eq!(pmf.probs(), reference.probs(), "{strategy:?}");
            assert_eq!(
                pmf.schedule().prices(),
                reference.schedule().prices(),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn invalid_epsilons_are_reported_not_panicked() {
        for bad in [-0.1, 0.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                DpHsrcAuction::new(bad),
                Err(McsError::InvalidEpsilon { .. })
            ));
        }
    }
}
