//! The unified schedule-engine API: one builder, enumerable strategies.
//!
//! Historically every winner-determination engine was its own free
//! function (`build_schedule`, `build_schedule_eager`, …), which made the
//! engine choice a *function name* — impossible to put in a config file,
//! cycle through in the differential checker, or thread through the
//! service without one code path per engine. [`ScheduleEngine`] replaces
//! the whole family: a [`SelectionRule`] plus a [`Strategy`] (plain data,
//! `Strategy::ALL`-enumerable) plus an optional price-grid
//! [`Coarsening`] knob, built fluently:
//!
//! ```
//! use mcs_auction::{ScheduleEngine, SelectionRule, Strategy};
//! # use mcs_types::{Bid, Bundle, Instance, Price, SkillMatrix, TaskId};
//! # fn main() -> Result<(), mcs_types::McsError> {
//! # let instance = Instance::builder(1)
//! #     .bids(vec![
//! #         Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(10.0)),
//! #         Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(11.0)),
//! #         Bid::new(Bundle::new(vec![TaskId(0)]), Price::from_f64(12.0)),
//! #     ])
//! #     .skills(SkillMatrix::from_rows(vec![vec![0.9]; 3])?)
//! #     .uniform_error_bound(0.4)
//! #     .price_grid_f64(10.0, 20.0, 0.5)
//! #     .cost_range(Price::from_f64(10.0), Price::from_f64(20.0))
//! #     .build()?;
//! let schedule = ScheduleEngine::new(SelectionRule::MarginalCoverage)
//!     .strategy(Strategy::Indexed)
//!     .build(&instance)?;
//! assert!(!schedule.is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! All strategies produce the identical schedule (with coarsening off);
//! they differ only in cost. [`Strategy::Indexed`] is the worker-axis
//! engine: a per-price [`CandidateIndex`](mcs_types::CandidateIndex),
//! one-time initial gains, and a lazily re-evaluated challenger heap make
//! its per-interval cost nearly independent of the worker count `N` —
//! the engine of choice from `N ≈ 10⁴` up (see DESIGN.md §5f).

use mcs_types::{Instance, McsError, WorkerId};

use crate::schedule::{build_dispatch, build_residual_dispatch, PriceSchedule, SelectionRule};

/// Which engine evaluates the per-interval winner sets.
///
/// Every strategy yields the identical [`PriceSchedule`] when
/// [`Coarsening::Off`] — the differential checker enforces this — so the
/// choice is purely a cost model:
///
/// | Strategy | Cost profile |
/// |----------|--------------|
/// | [`Auto`](Strategy::Auto) | [`Lazy`](Strategy::Lazy), fanned over rayon with the `parallel` feature |
/// | [`Lazy`](Strategy::Lazy) | CELF heap per interval; init gains recomputed per interval |
/// | [`Eager`](Strategy::Eager) | full candidate rescan per selection round (reference) |
/// | [`Incremental`](Strategy::Incremental) | ascending sweep, previous winners replayed against newcomers |
/// | [`Dense`](Strategy::Dense) | materializes the dense `N×K` matrix first (pre-CSR data path) |
/// | [`Naive`](Strategy::Naive) | recomputes every grid price independently (reference) |
/// | [`Indexed`](Strategy::Indexed) | price-bucketed candidate index + one-time gains + lazy challenger heap |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The default: lazy CELF, parallel over intervals when the
    /// `parallel` feature is enabled.
    Auto,
    /// CELF lazy evaluation, always serial over intervals.
    Lazy,
    /// Full rescan per selection round — the pre-lazy reference.
    Eager,
    /// Serial ascending sweep sharing residual state across intervals.
    Incremental,
    /// The pre-CSR data path: dense `N×K` materialization, then sparse.
    Dense,
    /// Per-grid-price recomputation — the interval-compression reference.
    Naive,
    /// The worker-axis engine: candidate index, one-time initial gains,
    /// lazy challenger-heap replays (see DESIGN.md §5f).
    Indexed,
}

impl Strategy {
    /// Every strategy, in a fixed order (checkers cycle through this).
    pub const ALL: [Strategy; 7] = [
        Strategy::Auto,
        Strategy::Lazy,
        Strategy::Eager,
        Strategy::Incremental,
        Strategy::Dense,
        Strategy::Naive,
        Strategy::Indexed,
    ];

    /// The strategies whose cost stays polynomial in `nnz` rather than in
    /// `N·K` or `N²K` — the only ones safe to run on instances with tens
    /// of thousands of workers or tasks.
    pub const SCALABLE: [Strategy; 4] = [
        Strategy::Auto,
        Strategy::Lazy,
        Strategy::Incremental,
        Strategy::Indexed,
    ];

    /// Stable lowercase name (config files, CLI flags, reports).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Auto => "auto",
            Strategy::Lazy => "lazy",
            Strategy::Eager => "eager",
            Strategy::Incremental => "incremental",
            Strategy::Dense => "dense",
            Strategy::Naive => "naive",
            Strategy::Indexed => "indexed",
        }
    }

    /// Parses a [`Strategy::name`] back into the strategy.
    pub fn by_name(name: &str) -> Option<Strategy> {
        Strategy::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// The price-grid coarsening knob.
///
/// With `Stride(c)`, only every `c`-th bidding-price interval (plus
/// always the first and the last) runs winner selection; each skipped
/// interval reuses the winner set `S(r)` of the nearest evaluated price
/// `r` at or below it. The resulting schedule is **feasible everywhere**
/// (winners bidding at most `r` also bid at most `p ≥ r`) and
/// **bit-identical to the exact schedule at every evaluated price**, and
/// its payments obey the documented bound
///
/// ```text
/// R_coarse(p) = p·|S(r)| = (p/r)·R_exact(r) ≤ (1 + λ)·R_exact(r),
/// ```
///
/// where `λ = max (p − r)/r` over the skipped grid prices — so
/// `min_total_payment` of the coarse schedule equals the minimum of the
/// *exact* payments over the evaluated prices, never below the exact
/// minimum. There is deliberately **no** pointwise guarantee against the
/// exact winner set at a *skipped* price: greedy cardinality is not
/// monotone in the candidate pool, so `|S(p)|` may be smaller or larger
/// than `|S(r)|` (DESIGN.md §5f spells this out).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coarsening {
    /// Evaluate every interval — the exact schedule.
    Off,
    /// Evaluate every `c`-th interval (plus the first and last);
    /// `Stride(0)` and `Stride(1)` are equivalent to [`Coarsening::Off`].
    Stride(usize),
}

impl Coarsening {
    /// The effective stride: `1` means every interval is evaluated.
    #[inline]
    pub fn stride(self) -> usize {
        match self {
            Coarsening::Off => 1,
            Coarsening::Stride(c) => c.max(1),
        }
    }

    /// Whether this knob actually skips intervals.
    #[inline]
    pub fn is_active(self) -> bool {
        self.stride() > 1
    }
}

/// The unified builder for per-price winner schedules (Algorithm 1,
/// lines 1–15) — see the [module docs](self) for the full picture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEngine {
    rule: SelectionRule,
    strategy: Strategy,
    coarsening: Coarsening,
}

impl ScheduleEngine {
    /// An engine with the given selection rule, [`Strategy::Auto`], and
    /// coarsening off.
    pub fn new(rule: SelectionRule) -> ScheduleEngine {
        ScheduleEngine {
            rule,
            strategy: Strategy::Auto,
            coarsening: Coarsening::Off,
        }
    }

    /// Selects the winner-determination strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> ScheduleEngine {
        self.strategy = strategy;
        self
    }

    /// Sets the price-grid coarsening knob. Ignored by
    /// [`Strategy::Naive`], which has no interval structure to coarsen.
    #[must_use]
    pub fn coarsening(mut self, coarsening: Coarsening) -> ScheduleEngine {
        self.coarsening = coarsening;
        self
    }

    /// The configured selection rule.
    #[inline]
    pub fn rule(&self) -> SelectionRule {
        self.rule
    }

    /// The configured strategy.
    #[inline]
    pub fn configured_strategy(&self) -> Strategy {
        self.strategy
    }

    /// The configured coarsening knob.
    #[inline]
    pub fn configured_coarsening(&self) -> Coarsening {
        self.coarsening
    }

    /// Builds the per-price winner schedule for a full instance.
    ///
    /// # Errors
    ///
    /// * [`McsError::Infeasible`] — even the full pool cannot satisfy some
    ///   task's error-bound constraint.
    /// * [`McsError::NoFeasiblePrice`] — coverage is possible but only
    ///   above the top of the price grid.
    pub fn build(&self, instance: &Instance) -> Result<PriceSchedule, McsError> {
        build_dispatch(instance, self.rule, self.strategy, self.coarsening.stride())
    }

    /// Builds the schedule for a *residual* covering problem: only
    /// `eligible` workers may win and each task needs only the leftover
    /// coverage `requirements[j]` (non-positive entries mean already
    /// satisfied).
    ///
    /// The residual problem is always materialized sparsely, so
    /// [`Strategy::Dense`] falls back to [`Strategy::Auto`] and
    /// [`Strategy::Naive`] to [`Strategy::Eager`] here.
    ///
    /// # Errors
    ///
    /// * [`McsError::DimensionMismatch`] — `requirements` is not one entry
    ///   per task.
    /// * [`McsError::WorkerOutOfRange`] — an eligible id is out of range.
    /// * [`McsError::CoverageShortfall`] — the eligible pool cannot close
    ///   some task's residual requirement.
    /// * [`McsError::NoFeasiblePrice`] — the eligible pool covers, but
    ///   only at a price above the top of the grid.
    pub fn build_residual(
        &self,
        instance: &Instance,
        requirements: &[f64],
        eligible: &[WorkerId],
    ) -> Result<PriceSchedule, McsError> {
        build_residual_dispatch(
            instance,
            self.rule,
            self.strategy,
            self.coarsening.stride(),
            requirements,
            eligible,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_round_trip() {
        for strategy in Strategy::ALL {
            assert_eq!(Strategy::by_name(strategy.name()), Some(strategy));
        }
        assert_eq!(Strategy::by_name("no-such-strategy"), None);
    }

    #[test]
    fn scalable_strategies_are_a_subset() {
        for s in Strategy::SCALABLE {
            assert!(Strategy::ALL.contains(&s));
        }
        assert!(!Strategy::SCALABLE.contains(&Strategy::Dense));
        assert!(!Strategy::SCALABLE.contains(&Strategy::Naive));
        assert!(!Strategy::SCALABLE.contains(&Strategy::Eager));
    }

    #[test]
    fn coarsening_stride_normalizes() {
        assert_eq!(Coarsening::Off.stride(), 1);
        assert_eq!(Coarsening::Stride(0).stride(), 1);
        assert_eq!(Coarsening::Stride(1).stride(), 1);
        assert_eq!(Coarsening::Stride(4).stride(), 4);
        assert!(!Coarsening::Stride(1).is_active());
        assert!(Coarsening::Stride(2).is_active());
    }

    #[test]
    fn builder_accessors_reflect_configuration() {
        let engine = ScheduleEngine::new(SelectionRule::StaticTotal)
            .strategy(Strategy::Indexed)
            .coarsening(Coarsening::Stride(3));
        assert_eq!(engine.rule(), SelectionRule::StaticTotal);
        assert_eq!(engine.configured_strategy(), Strategy::Indexed);
        assert_eq!(engine.configured_coarsening(), Coarsening::Stride(3));
    }
}
